#!/usr/bin/env python
"""Quickstart: train a model with GuanYu on a synthetic task in under a minute.

This example builds the smallest meaningful GuanYu deployment — 4 replicated
parameter servers and 6 workers, none declared Byzantine — and trains a
linear classifier on a Gaussian-blobs task over the simulated asynchronous
network.  It then repeats the run with Byzantine nodes declared *and*
actively attacking, to show that accuracy is preserved.

Run with::

    python examples/quickstart.py
"""

from repro import ClusterConfig, GuanYuTrainer
from repro.byzantine import EquivocationAttack, RandomGradientAttack
from repro.data import make_blobs_dataset
from repro.nn import build_model
from repro.nn.schedules import ConstantSchedule


def print_history(title, history):
    print(f"\n=== {title} ===")
    print(f"{'step':>6} {'sim time (s)':>14} {'loss':>8} {'accuracy':>9}")
    for record in history.records:
        if record.test_accuracy is None:
            continue
        print(f"{record.step:>6} {record.simulated_time:>14.3f} "
              f"{record.train_loss:>8.3f} {record.test_accuracy:>9.3f}")
    print(f"final accuracy: {history.final_accuracy():.3f}   "
          f"total simulated time: {history.total_time():.2f}s")


def main():
    # A small, learnable classification task (stand-in for CIFAR-10).
    dataset = make_blobs_dataset(num_samples=1200, num_classes=4, num_features=8,
                                 cluster_std=1.0, seed=7)
    train, test = dataset.split(0.85, seed=7)

    # Every node builds the same model from the same seed (GuanYu's θ_0).
    model_fn = lambda: build_model("softmax", in_features=8, num_classes=4, seed=7)
    schedule = ConstantSchedule(0.05)

    # ---------------------------------------------------------------- #
    # 1. A non-Byzantine deployment: 4 servers, 6 workers.
    # ---------------------------------------------------------------- #
    config = ClusterConfig(num_servers=4, num_workers=6)
    trainer = GuanYuTrainer(config=config, model_fn=model_fn, train_dataset=train,
                            test_dataset=test, batch_size=32, schedule=schedule,
                            seed=7, label="guanyu-clean")
    history = trainer.run(num_steps=80, eval_every=10)
    print_history("GuanYu, no Byzantine nodes", history)

    # ---------------------------------------------------------------- #
    # 2. The same task with Byzantine workers AND a Byzantine server.
    # ---------------------------------------------------------------- #
    config = ClusterConfig(num_servers=6, num_workers=9,
                           num_byzantine_servers=1, num_byzantine_workers=2)
    trainer = GuanYuTrainer(
        config=config, model_fn=model_fn, train_dataset=train, test_dataset=test,
        batch_size=32, schedule=schedule, seed=7, label="guanyu-attacked",
        worker_attack=RandomGradientAttack(scale=100.0), num_attacking_workers=2,
        server_attack=EquivocationAttack(magnitude=50.0), num_attacking_servers=1)
    attacked = trainer.run(num_steps=80, eval_every=10)
    print_history("GuanYu, 2 Byzantine workers + 1 Byzantine server", attacked)

    print("\nDespite the attack, accuracy stays within "
          f"{abs(history.final_accuracy() - attacked.final_accuracy()):.3f} "
          "of the clean run.")


if __name__ == "__main__":
    main()
