#!/usr/bin/env python
"""Figure 4 story: vanilla averaging collapses under attack, GuanYu does not.

Three systems are trained on the same synthetic image-classification task:

1. a vanilla single-server deployment with no Byzantine node,
2. the same deployment with ONE Byzantine worker sending corrupted gradients,
3. GuanYu with Byzantine workers and an equivocating Byzantine server.

Run with::

    python examples/byzantine_attack_demo.py
"""

from repro.byzantine import EquivocationAttack, RandomGradientAttack
from repro.experiments import ExperimentScale, run_figure4


def ascii_curve(history, width=48):
    """Render an accuracy-vs-updates curve as a one-line ASCII sparkline."""
    points = [(r.step, r.test_accuracy) for r in history.records
              if r.test_accuracy is not None]
    if not points:
        return "(no evaluations)"
    levels = " .:-=+*#%@"
    chars = []
    for _, accuracy in points[:width]:
        index = min(int(accuracy * (len(levels) - 1) + 0.5), len(levels) - 1)
        chars.append(levels[index])
    return "".join(chars)


def main():
    scale = ExperimentScale.small()
    scale.dataset = "images"       # CIFAR-10-shaped synthetic images
    scale.model = "mlp"
    scale.dataset_size = 1500
    scale.num_steps = 80
    scale.eval_every = 5

    result = run_figure4(
        scale=scale,
        worker_attack=RandomGradientAttack(scale=100.0),
        server_attack=EquivocationAttack(magnitude=50.0),
    )

    print("Figure 4 reproduction — impact of Byzantine players on convergence\n")
    print(f"{'system':<24} {'final accuracy':>15}   accuracy-over-updates")
    for name, history in result.histories.items():
        print(f"{name:<24} {history.final_accuracy():>15.3f}   {ascii_curve(history)}")

    accuracies = result.final_accuracies()
    print("\nObservations (compare with the paper's Figure 4):")
    print(f"  * vanilla TF reaches {accuracies['vanilla_tf']:.2f} accuracy "
          "without Byzantine nodes;")
    print(f"  * a single Byzantine worker drags vanilla TF down to "
          f"{accuracies['vanilla_tf_byzantine']:.2f};")
    print(f"  * GuanYu under worker AND server attacks still reaches "
          f"{accuracies['guanyu_byzantine']:.2f}.")


if __name__ == "__main__":
    main()
