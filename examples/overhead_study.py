#!/usr/bin/env python
"""Figure 3 / Section 5.3 story: what does Byzantine resilience cost?

Runs the five systems of the paper's Figure 3 (vanilla TF, vanilla GuanYu,
and three GuanYu deployments with increasing declared Byzantine counts) in a
non-Byzantine environment, then prints the throughput table and the two
overhead percentages of Section 5.3.

Run with::

    python examples/overhead_study.py [batch_size]
"""

import sys

from repro.experiments import ExperimentScale, overhead_report, run_figure3


def main():
    batch_size = int(sys.argv[1]) if len(sys.argv) > 1 else 128

    scale = ExperimentScale.small()
    scale.dataset_size = 2400      # every shard holds a full batch
    scale.num_steps = 60
    scale.eval_every = 10

    print(f"Running the Figure 3 comparison with mini-batch size {batch_size} ...")
    result = run_figure3(scale=scale, batch_size=batch_size)

    print(f"\n{'system':<24} {'final acc':>10} {'sim time (s)':>14} "
          f"{'updates/s':>11} {'time to target':>15}")
    for row in result.accuracy_summary():
        time_to_target = row["time_to_target"]
        rendered = f"{time_to_target:.2f}s" if time_to_target is not None else "never"
        print(f"{row['system']:<24} {row['final_accuracy']:>10.3f} "
              f"{row['total_time']:>14.2f} {row['throughput']:>11.2f} "
              f"{rendered:>15}")

    report = overhead_report(result=result)
    print("\nSection 5.3 overhead breakdown "
          "(paper: ~65 % runtime, up to ~33 % Byzantine resilience):")
    print(f"  overhead of leaving the optimised runtime : "
          f"{report.runtime_overhead_percent:6.1f} %")
    print(f"  overhead of Byzantine resilience          : "
          f"{report.byzantine_overhead_percent:6.1f} %")
    print("\nNote: absolute times come from the simulated clock (the model is "
          "billed at the paper's 1.75 M parameters); only the relative shape "
          "is meaningful.")


if __name__ == "__main__":
    main()
