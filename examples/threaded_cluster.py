#!/usr/bin/env python
"""Run GuanYu with real threads: one thread per server and per worker.

The other examples drive the protocol over the deterministic network
simulator; this one uses the thread-based runtime, where delivery order is
decided by genuine scheduling non-determinism plus random jitter — the
closest offline analogue of the paper's gRPC deployment.  A straggler worker
and fully Byzantine nodes are thrown in to show that quorums keep the system
live and safe.

Run with::

    python examples/threaded_cluster.py
"""

import time

from repro.byzantine import CorruptedModelAttack, RandomGradientAttack
from repro.core import ClusterConfig
from repro.data import make_blobs_dataset
from repro.metrics import evaluate_accuracy
from repro.nn import build_model
from repro.nn.schedules import ConstantSchedule
from repro.runtime.threads import ThreadedClusterRuntime


def main():
    dataset = make_blobs_dataset(num_samples=1200, num_classes=4, num_features=8,
                                 cluster_std=1.0, seed=3)
    train, test = dataset.split(0.85, seed=3)
    model_fn = lambda: build_model("softmax", in_features=8, num_classes=4, seed=3)

    config = ClusterConfig(num_servers=6, num_workers=9,
                           num_byzantine_servers=1, num_byzantine_workers=2)
    print("Cluster:", config.as_dict())
    print("Launching one thread per node "
          f"({config.num_servers} servers + {config.num_workers} workers), "
          "with 2 attacking workers, 1 attacking server and 1 straggler ...")

    runtime = ThreadedClusterRuntime(
        config=config,
        model_fn=model_fn,
        train_dataset=train,
        batch_size=32,
        schedule=ConstantSchedule(0.05),
        worker_attack=RandomGradientAttack(scale=100.0), num_attacking_workers=2,
        server_attack=CorruptedModelAttack(noise_scale=100.0),
        num_attacking_servers=1,
        jitter=0.002,                       # up to 2 ms random delivery delay
        straggler_sleep={"worker/0": 0.01},  # worker/0 is 10 ms slow per step
        seed=3,
    )

    started = time.perf_counter()
    history = runtime.run(num_steps=40)
    elapsed = time.perf_counter() - started

    model = model_fn()
    model.set_flat_parameters(runtime.global_parameters())
    accuracy = evaluate_accuracy(model, test)

    print(f"\nRan {len(history)} steps in {elapsed:.2f}s of real wall-clock time "
          f"({runtime.transport.messages_sent} messages exchanged).")
    print(f"Final test accuracy (median of correct servers): {accuracy:.3f}")
    final_spread = history.records[-1].max_server_spread
    print(f"Final spread between correct server replicas:    {final_spread:.4f}")
    print("\nDespite real concurrency, a straggler and active Byzantine nodes, the "
          "correct replicas converge and agree — the contraction property at work.")


if __name__ == "__main__":
    main()
