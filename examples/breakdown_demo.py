"""Empirical breakdown points: where each GAR actually stops working.

Runs the bisection search of :mod:`repro.experiments.breakdown` on a tiny
workload and prints the resilience-boundary table: for each aggregation
rule, the largest number of colluding attackers it survives under the
omniscient worst-case adversary and under plain gradient reversal, against
the ``n̄ ≥ 3f̄ + 3`` admissibility ceiling of the cluster arithmetic.

Run from the repository root::

    PYTHONPATH=src python examples/breakdown_demo.py
"""

from repro.experiments.breakdown import breakdown_table, run_breakdown_search
from repro.experiments.common import ExperimentScale
from repro.plotting import format_table


def main() -> None:
    scale = ExperimentScale.small()
    scale.num_steps = 15

    print("Searching breakdown points (bisection over the attacker count;"
          " every cell is one small GuanYu training run)...\n")
    results = run_breakdown_search(
        scale=scale,
        gars=("mean", "median", "multi_krum"),
        adversaries=("omniscient_descent", "reversed_gradient"))

    print(format_table(breakdown_table(results), float_format="{:.4f}"))
    print()
    for result in results:
        losses = ", ".join(f"f={count}: {loss:.3f}"
                           for count, loss in result.losses.items())
        print(f"  {result.gradient_rule:<11} vs {result.adversary:<19} "
              f"final losses — {losses}")
    print("\nReading the table: plain averaging breaks at the first "
          "omniscient attacker\n(breakdown_f = 0) while the "
          "Byzantine-resilient rules hold to the admissible\nmaximum — "
          "the boundary the paper proves.")


if __name__ == "__main__":
    main()
