#!/usr/bin/env python
"""The stable API end to end: run scenarios, query the indexed store,
submit a campaign to an in-process scheduler daemon.

Everything imports straight from the package root — the blessed surface
(see ``docs/store.md``).  The walkthrough:

1. execute two scenarios through :func:`repro.run`, caching into a
   :class:`repro.ResultStore`;
2. query the store through its sidecar index (flat, dotted and meta
   filters — no entry payload is opened);
3. start a :class:`CampaignScheduler` + HTTP listener, submit a
   campaign that overlaps the cached results, and watch the dedupe;
4. finish with ``fsck`` — the store verifies itself.

Run with::

    python examples/store_service.py
"""

import json
import tempfile
import time
import urllib.request

from repro import CampaignSpec, ResultStore, ScenarioSpec, run
from repro.campaign import CampaignScheduler
from repro.obs import MetricsServer


def tiny(seed):
    return ScenarioSpec(name=f"demo-{seed}", num_workers=6, num_servers=3,
                        declared_byzantine_workers=1,
                        declared_byzantine_servers=0, num_steps=4,
                        eval_every=2, dataset_size=300, seed=seed)


def main():
    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)

        # 1. the front door: validate, execute, persist
        for seed in (0, 1):
            result = run(tiny(seed), store=store)
            print(f"ran {result.spec.name}: status={result.status} "
                  f"accuracy={result.history.final_accuracy():.3f}")
        rerun = run(tiny(0), store=store)
        print(f"re-ran demo-0: status={rerun.status} (content-address hit)")

        # 2. index-backed queries: no payload opens, lazy histories
        hits = store.query(seed=1, status="ran")
        print(f"query(seed=1, status='ran') -> "
              f"{[r.spec.name for r in hits]} "
              f"(payload reads so far: {store.payload_reads})")

        # 3. the same store as a service
        with CampaignScheduler(store) as scheduler, \
                MetricsServer(0, status=scheduler.status,
                              routes=scheduler.handle_route) as server:
            campaign = CampaignSpec(name="night", base=tiny(0),
                                    grid={"seed": [0, 1, 2]})
            request = urllib.request.Request(
                server.url + "/campaigns",
                data=json.dumps({"campaign": campaign.to_dict()}).encode(),
                headers={"Content-Type": "application/json"}, method="POST")
            with urllib.request.urlopen(request, timeout=10) as reply:
                job = json.load(reply)
            print(f"submitted {job['id']}: {job['total']} scenario(s), "
                  f"{job['cached_at_submit']} already in the store")
            while job["state"] not in ("done", "failed"):
                time.sleep(0.2)
                with urllib.request.urlopen(
                        f"{server.url}/campaigns/{job['id']}",
                        timeout=10) as reply:
                    job = json.load(reply)
            print(f"job finished: {job['state']} — counts {job['counts']}")

        # 4. hygiene: the store checks itself
        report = store.fsck()
        print(f"fsck: {report.entries} entries, "
              f"{'ok' if report.ok else report.issues}")


if __name__ == "__main__":
    main()
