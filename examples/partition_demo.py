#!/usr/bin/env python
"""A network partition opens mid-training, heals, and the quorums survive.

One parameter server (``ps/0``) is cut away from the rest of the cluster a
third of the way through training and reconnected later.  While the
partition is active the isolated replica stalls with stale parameters and
the inter-server spread grows; the moment it heals, the phase-3
coordinate-wise median pulls the stale replica back — the contraction the
paper's safety argument rests on, now visible step by step.

The same declarative schedule drives the simulated runtime here; swap the
trainer for ``guanyu_threaded`` in a campaign spec to replay it under real
threads (see docs/faults.md).

Run with::

    PYTHONPATH=src python examples/partition_demo.py
"""

from repro.core import ClusterConfig, GuanYuTrainer
from repro.data import make_blobs_dataset
from repro.faults import FaultSchedule
from repro.metrics import evaluate_accuracy
from repro.nn import build_model
from repro.nn.schedules import ConstantSchedule

NUM_STEPS = 30
PARTITION_STEP = 10
HEAL_STEP = 20


def main():
    dataset = make_blobs_dataset(num_samples=1200, num_classes=4,
                                 num_features=8, cluster_std=1.0, seed=3)
    train, test = dataset.split(0.85, seed=3)
    model_fn = lambda: build_model("softmax", in_features=8, num_classes=4,
                                   seed=3)

    config = ClusterConfig(num_servers=6, num_workers=9,
                           num_byzantine_servers=1, num_byzantine_workers=2)
    isolated = "ps/0"
    rest = [node for node in config.server_ids() + config.worker_ids()
            if node != isolated]
    schedule = FaultSchedule.partition_window(
        groups=[[isolated], rest],
        partition_step=PARTITION_STEP, heal_step=HEAL_STEP)

    print(f"Cluster: {config.as_dict()}")
    print(f"Partition: {isolated} cut off during steps "
          f"[{PARTITION_STEP}, {HEAL_STEP}), quorums q={config.model_quorum} "
          f"keep the other {config.num_servers - 1} servers live.\n")

    trainer = GuanYuTrainer(
        config=config, model_fn=model_fn, train_dataset=train,
        test_dataset=test, batch_size=32, schedule=ConstantSchedule(0.05),
        seed=3, fault_schedule=schedule)
    history = trainer.run(num_steps=NUM_STEPS, eval_every=10)

    print("step | spread   | phase")
    print("-----+----------+---------------------------")
    for record in history.records:
        if record.step < PARTITION_STEP:
            phase = "healthy"
        elif record.step < HEAL_STEP:
            phase = "PARTITIONED (replica stalls)"
        else:
            phase = "healed (median re-contracts)"
        print(f"{record.step:4d} | {record.max_server_spread:8.4f} | {phase}")

    model = model_fn()
    model.set_flat_parameters(trainer.global_parameters())
    accuracy = evaluate_accuracy(model, test)
    stats = trainer.network.stats
    print(f"\nmessages blocked by the partition: {stats.messages_blocked}")
    print(f"final inter-server spread: "
          f"{history.records[-1].max_server_spread:.4f}")
    print(f"final top-1 accuracy: {accuracy:.3f}")
    assert accuracy > 0.8, "training should survive the partition"
    print("\nThe partition slowed nothing but the isolated replica: "
          "quorums kept the remaining servers live, and the phase-3 median "
          "absorbed the stale model on reconnection.")


if __name__ == "__main__":
    main()
