#!/usr/bin/env python
"""Compare gradient aggregation rules on synthetic gradient clouds under attack.

The distributed protocol aside, the heart of Byzantine-resilient SGD is the
choice of gradient aggregation rule (GAR).  This example builds a cloud of
"honest" gradients plus a configurable number of adversarial ones, feeds it
to every registered GAR, and reports how far each output strays from the
honest mean — the practical meaning of the (α, f)-resilience definitions.

Run with::

    python examples/aggregation_playground.py
"""

import numpy as np

from repro.aggregation import available_rules, byzantine_resilience_report, get_rule
from repro.byzantine import LittleIsEnoughAttack, RandomGradientAttack
from repro.byzantine.base import AttackContext


def build_attacked_cloud(attack, num_correct=13, num_byzantine=5, dimension=1000,
                         seed=0):
    """Honest gradients plus `num_byzantine` adversarial copies."""
    rng = np.random.default_rng(seed)
    honest = rng.normal(0.1, 1.0, size=(num_correct, dimension))
    byzantine = []
    for _ in range(num_byzantine):
        context = AttackContext(step=0, honest_value=honest.mean(axis=0),
                                peer_values=list(honest), rng=rng)
        byzantine.append(attack.corrupt_gradient(context))
    return honest, np.stack(byzantine)


def main():
    scenarios = {
        "corrupted gradients (scale=100)": RandomGradientAttack(scale=100.0),
        "a-little-is-enough (z=1.5)": LittleIsEnoughAttack(z_factor=1.5),
    }
    num_byzantine = 5

    for title, attack in scenarios.items():
        honest, byzantine = build_attacked_cloud(attack, num_byzantine=num_byzantine)
        print(f"\n=== {title} — 13 honest + {num_byzantine} Byzantine gradients ===")
        print(f"{'rule':<18} {'deviation from honest mean':>27} "
              f"{'inside honest box':>18}")
        for name in available_rules():
            rule = get_rule(name, num_byzantine=num_byzantine)
            try:
                report = byzantine_resilience_report(rule, honest, byzantine)
            except ValueError as error:
                print(f"{name:<18} {'(needs more inputs: ' + str(error) + ')':>27}")
                continue
            print(f"{name:<18} {report.deviation_from_correct_mean:>27.3f} "
                  f"{str(report.within_correct_hull):>18}")

    print("\nReading the table: the arithmetic mean is dragged arbitrarily far by "
          "the attackers, while the robust rules (median, Multi-Krum, Bulyan, ...) "
          "stay within — or very close to — the honest gradients' range.  GuanYu "
          "uses the coordinate-wise median for models and Multi-Krum for gradients.")


if __name__ == "__main__":
    main()
