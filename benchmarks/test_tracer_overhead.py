"""Tracer overhead — the "<5 % on the batched runtime" budget.

The batched runtime is the hottest loop in the repo (R replicas advance per
step), so it is where tracing overhead would show first.  The same R=16
seed sweep runs untraced and traced (spans on, decision gate off, as in a
``repro --trace`` sweep) and the traced best-of must stay within 5 % of
the untraced one.  The two variants are timed **interleaved** — untraced,
traced, untraced, traced, ... — and each takes its best-of over the
rounds: back-to-back blocks would let a background-load swing on the CI
machine masquerade as tracer overhead (or hide it).
"""

import time

from repro.batch import run_batched_scenarios
from repro.campaign.spec import ScenarioSpec
from repro.obs import Tracer, use_tracer

REPLICAS = 16
REPEATS = 7


def _specs():
    return [ScenarioSpec(name=f"ovh{seed}", seed=seed, num_steps=20,
                         eval_every=10, dataset_size=600,
                         max_eval_samples=64)
            for seed in range(REPLICAS)]


def _traced_run(specs):
    with use_tracer(Tracer()):
        return run_batched_scenarios(specs)


def _interleaved_best_of(specs):
    untraced_seconds = traced_seconds = float("inf")
    baseline = traced = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = run_batched_scenarios(specs)
        elapsed = time.perf_counter() - started
        if elapsed < untraced_seconds:
            untraced_seconds, baseline = elapsed, result

        started = time.perf_counter()
        result = _traced_run(specs)
        elapsed = time.perf_counter() - started
        if elapsed < traced_seconds:
            traced_seconds, traced = elapsed, result
    return untraced_seconds, baseline, traced_seconds, traced


def test_tracer_overhead_below_five_percent(benchmark):
    specs = _specs()
    run_batched_scenarios(specs)  # warm caches (dataset synthesis)

    untraced_seconds, baseline, traced_seconds, traced = benchmark.pedantic(
        lambda: _interleaved_best_of(specs), rounds=1, iterations=1)

    overhead = traced_seconds / untraced_seconds
    print(f"\ntracer overhead — R={REPLICAS} batched, best of {REPEATS}: "
          f"untraced {untraced_seconds:.4f}s, traced {traced_seconds:.4f}s "
          f"({overhead:.3f}x)")

    # Zero perturbation first, budget second.
    for traced_history, untraced_history in zip(traced, baseline):
        assert traced_history.to_dict() == untraced_history.to_dict()
    assert overhead < 1.05, (
        f"tracing cost {overhead:.3f}x on the batched runtime "
        f"(budget: 1.05x)")
