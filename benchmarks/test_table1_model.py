"""Table 1 — the CNN model (kernel sizes, strides, ~1.75 M parameters)."""

import numpy as np

from repro.experiments import table1_report
from repro.nn import PaperCNN
from repro.tensor import Tensor


def test_table1_architecture(benchmark):
    """Regenerate Table 1: layer inventory and total parameter count."""
    report = benchmark.pedantic(table1_report, rounds=1, iterations=1)

    print("\nTable 1 — CNN model parameters")
    for layer in report["layers"]:
        print("  ", layer)
    print("   total parameters:", report["total_parameters"],
          "(paper: ~%d)" % report["paper_total_parameters"])

    assert abs(report["total_parameters"] - report["paper_total_parameters"]) < 2e4
    names = [layer["layer"] for layer in report["layers"]]
    assert names == ["Input", "Conv1", "Pool1", "Conv2", "Pool2", "FC1", "FC2", "FC3"]


def test_table1_forward_backward_pass(benchmark):
    """One forward/backward pass of the Table 1 CNN on a CIFAR-sized batch."""
    model = PaperCNN()
    batch = Tensor(np.random.default_rng(0).normal(size=(4, 3, 32, 32)))

    def step():
        model.zero_grad()
        out = model(batch)
        out.sum().backward()
        return out

    out = benchmark.pedantic(step, rounds=1, iterations=1)
    assert out.shape == (4, 10)
    assert np.any(model.get_flat_gradient() != 0.0)
