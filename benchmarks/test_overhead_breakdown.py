"""Section 5.3 — the overhead breakdown (65 % runtime / ~30 % Byzantine)."""

import pytest

from repro.experiments import overhead_report, run_figure3


@pytest.fixture(scope="module")
def breakdown(bench_scale):
    result = run_figure3(scale=bench_scale, batch_size=128,
                         systems=["vanilla_tf", "guanyu_vanilla",
                                  "guanyu_f_workers_s1"])
    return overhead_report(result=result)


def test_overhead_breakdown_rows(benchmark, breakdown):
    """Regenerate the two §5.3 percentages from time-to-accuracy measurements."""
    report = benchmark.pedantic(lambda: breakdown, rounds=1, iterations=1)

    print("\nSection 5.3 — overhead breakdown (paper: ~65 % / up to ~33 %)")
    for key, value in report.as_rows().items():
        print(f"  {key:28s} {value:10.3f}")

    # Shape: leaving the optimised runtime costs the most; Byzantine
    # resilience adds a smaller, second overhead on top.
    assert report.time_vanilla_tf < report.time_guanyu_vanilla
    assert report.time_guanyu_vanilla < report.time_guanyu_byzantine
    assert 30.0 < report.runtime_overhead_percent < 130.0
    assert 5.0 < report.byzantine_overhead_percent < 80.0
    assert report.byzantine_overhead_percent < report.runtime_overhead_percent


def test_overhead_throughput_ordering(benchmark, bench_scale):
    """Throughput (updates/s) ordering mirrors the time overheads."""
    from repro.metrics import throughput_updates_per_second

    result = benchmark.pedantic(
        run_figure3, rounds=1, iterations=1,
        kwargs=dict(scale=bench_scale, batch_size=128,
                    systems=["vanilla_tf", "guanyu_vanilla", "guanyu_f_workers_s1"]))
    throughput = {name: throughput_updates_per_second(history)
                  for name, history in result.histories.items()}
    print("\nThroughput (model updates per simulated second)")
    for name, value in throughput.items():
        print(f"  {name:22s} {value:8.2f}")
    assert throughput["vanilla_tf"] > throughput["guanyu_vanilla"]
    assert throughput["guanyu_vanilla"] > throughput["guanyu_f_workers_s1"]
