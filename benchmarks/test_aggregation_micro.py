"""Micro-benchmarks — cost of the aggregation rules at paper dimension.

The paper attributes part of the Byzantine-resilience overhead to running a
robust aggregation rule (Multi-Krum, coordinate-wise median) instead of a
plain average.  These micro-benchmarks measure the rules on vectors of the
Table 1 model's dimensionality and check the expected cost ordering.
"""

import numpy as np
import pytest

from repro.aggregation import ArithmeticMean, CoordinateWiseMedian, MultiKrum

#: the paper's gradient-quorum size and (reduced) parameter dimension
NUM_INPUTS = 13
DIMENSION = 175_000  # 1/10th of the Table 1 model to keep the benchmark quick


@pytest.fixture(scope="module")
def gradient_cloud():
    rng = np.random.default_rng(0)
    return rng.normal(size=(NUM_INPUTS, DIMENSION))


def test_mean_aggregation_speed(benchmark, gradient_cloud):
    rule = ArithmeticMean()
    out = benchmark(rule, gradient_cloud)
    assert out.shape == (DIMENSION,)


def test_median_aggregation_speed(benchmark, gradient_cloud):
    rule = CoordinateWiseMedian(num_byzantine=1)
    out = benchmark(rule, gradient_cloud)
    assert out.shape == (DIMENSION,)


def test_multi_krum_aggregation_speed(benchmark, gradient_cloud):
    rule = MultiKrum(num_byzantine=5)
    out = benchmark(rule, gradient_cloud)
    assert out.shape == (DIMENSION,)
