"""Micro-benchmarks — cost of the aggregation rules at paper dimension.

The paper attributes part of the Byzantine-resilience overhead to running a
robust aggregation rule (Multi-Krum, coordinate-wise median) instead of a
plain average.  These micro-benchmarks measure the rules on vectors of the
Table 1 model's dimensionality and check the expected cost ordering.
"""

import numpy as np
import pytest

from repro.aggregation import (
    ArithmeticMean,
    CoordinateWiseMedian,
    GeometricMedian,
    MultiKrum,
)
from repro.aggregation.krum import pairwise_squared_distances
from repro.core.nodes import max_pairwise_distance

#: the paper's gradient-quorum size and (reduced) parameter dimension
NUM_INPUTS = 13
DIMENSION = 175_000  # 1/10th of the Table 1 model to keep the benchmark quick


@pytest.fixture(scope="module")
def gradient_cloud():
    rng = np.random.default_rng(0)
    return rng.normal(size=(NUM_INPUTS, DIMENSION))


def test_mean_aggregation_speed(benchmark, gradient_cloud):
    rule = ArithmeticMean()
    out = benchmark(rule, gradient_cloud)
    assert out.shape == (DIMENSION,)


def test_median_aggregation_speed(benchmark, gradient_cloud):
    rule = CoordinateWiseMedian(num_byzantine=1)
    out = benchmark(rule, gradient_cloud)
    assert out.shape == (DIMENSION,)


def test_multi_krum_aggregation_speed(benchmark, gradient_cloud):
    rule = MultiKrum(num_byzantine=5)
    out = benchmark(rule, gradient_cloud)
    assert out.shape == (DIMENSION,)


def test_geometric_median_aggregation_speed(benchmark, gradient_cloud):
    """The iterative rule's overhead is only comparable at equal accuracy.

    The ``converged``/``iterations`` diagnostics guarantee the timing below
    measures a *converged* Weiszfeld run — an unconverged rule would look
    artificially fast and poison the overhead comparison.
    """
    rule = GeometricMedian(num_byzantine=1)
    out = benchmark(rule, gradient_cloud)
    assert out.shape == (DIMENSION,)
    assert rule.converged is True
    assert 0 < rule.iterations <= rule.max_iterations


# --------------------------------------------------------------------------- #
# Pairwise distances (Gram-matrix path shared by Krum/Multi-Krum/Bulyan and
# the server-spread metric)
# --------------------------------------------------------------------------- #
def _naive_max_pairwise_distance(cloud: np.ndarray) -> float:
    """Reference O(n²) Python-loop implementation (pre-vectorisation)."""
    best = 0.0
    for i in range(cloud.shape[0]):
        for j in range(i + 1, cloud.shape[0]):
            best = max(best, float(np.linalg.norm(cloud[i] - cloud[j])))
    return best


def test_pairwise_squared_distances_match_direct_norms(gradient_cloud):
    squared = pairwise_squared_distances(gradient_cloud)
    assert squared.shape == (NUM_INPUTS, NUM_INPUTS)
    assert np.allclose(squared, squared.T)
    assert np.all(np.diag(squared) == 0.0)
    assert np.all(squared >= 0.0)
    for i, j in ((0, 1), (3, 7), (12, 4)):
        direct = float(np.sum((gradient_cloud[i] - gradient_cloud[j]) ** 2))
        assert squared[i, j] == pytest.approx(direct, rel=1e-9)


def test_max_pairwise_distance_speed(benchmark, gradient_cloud):
    """The vectorised server-spread metric must match the naive loop."""
    expected = _naive_max_pairwise_distance(gradient_cloud)
    result = benchmark(max_pairwise_distance, list(gradient_cloud))
    assert result == pytest.approx(expected, rel=1e-9)
