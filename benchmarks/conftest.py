"""Shared fixtures for the benchmark suite.

Every benchmark reproduces one table or figure of the paper on a scaled-down
workload (see ``DESIGN.md`` §4 and ``EXPERIMENTS.md``).  The benchmarks use
``benchmark.pedantic(..., rounds=1)`` because each "iteration" is a complete
multi-node training experiment; pytest-benchmark still records the wall time
and the assertions check the *shape* of the paper's result (who wins, by
roughly what factor).
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """The workload scale shared by the experiment benchmarks."""
    scale = ExperimentScale.small()
    # Enough data that every worker shard holds a full 128-sample batch.
    scale.dataset_size = 2400
    scale.num_steps = 60
    scale.eval_every = 10
    return scale


@pytest.fixture(scope="session")
def paper_like_scale() -> ExperimentScale:
    """The paper's 18-worker / 6-server cluster shape (still a small model)."""
    scale = ExperimentScale.paper_like()
    scale.num_steps = 40
    scale.eval_every = 10
    scale.dataset_size = 1500
    scale.dataset = "blobs"
    scale.model = "softmax"
    return scale


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
