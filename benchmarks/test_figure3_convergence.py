"""Figure 3 — overhead of GuanYu in a non-Byzantine environment.

Four panels: accuracy vs. model updates and accuracy vs. time, for
mini-batch sizes 128 (a, b) and 32 (c, d).  The assertions check the shape
reported by the paper:

* per *update*, every system converges at a comparable rate and declaring
  Byzantine nodes costs nothing (Fig. 3a/3c);
* per unit of *time*, vanilla TF is fastest, vanilla GuanYu pays the
  external-communication overhead, and the Byzantine-declared deployments
  pay an additional resilience overhead (Fig. 3b/3d).
"""

import pytest

from repro.experiments import run_figure3
from repro.metrics import time_to_accuracy
from repro.metrics.throughput import steps_to_accuracy


def _print_summary(result, panel):
    print(f"\nFigure 3({panel}) — batch size {result.batch_size}")
    for row in result.accuracy_summary():
        print("  {system:22s} final_acc={final_accuracy:.3f} "
              "time={total_time:8.2f}s throughput={throughput:6.2f} upd/s".format(**row))


@pytest.fixture(scope="module")
def figure3_batch128(bench_scale):
    return run_figure3(scale=bench_scale, batch_size=128)


@pytest.fixture(scope="module")
def figure3_batch32(bench_scale):
    return run_figure3(scale=bench_scale, batch_size=32)


class TestFigure3Batch128:
    def test_fig3a_accuracy_vs_updates(self, benchmark, figure3_batch128):
        """Fig. 3a: all systems reach comparable accuracy per model update."""
        result = benchmark.pedantic(lambda: figure3_batch128, rounds=1, iterations=1)
        _print_summary(result, "a")
        accuracies = {name: h.final_accuracy() for name, h in result.histories.items()}
        best = max(accuracies.values())
        assert best > 0.9
        # Byzantine-declared GuanYu keeps the same per-update convergence.
        assert accuracies["guanyu_f_workers_s1"] > best - 0.1
        target = result.reference_accuracy()
        steps_vanilla = steps_to_accuracy(result.histories["vanilla_tf"], target)
        steps_guanyu = steps_to_accuracy(result.histories["guanyu_f_workers_s1"], target)
        assert steps_guanyu is not None and steps_vanilla is not None
        assert steps_guanyu <= 3 * steps_vanilla

    def test_fig3b_accuracy_vs_time(self, benchmark, figure3_batch128):
        """Fig. 3b: vanilla TF fastest, then vanilla GuanYu, then Byzantine GuanYu."""
        result = benchmark.pedantic(lambda: figure3_batch128, rounds=1, iterations=1)
        _print_summary(result, "b")
        target = result.reference_accuracy()
        t_tf = time_to_accuracy(result.histories["vanilla_tf"], target)
        t_vanilla_guanyu = time_to_accuracy(result.histories["guanyu_vanilla"], target)
        t_byzantine = time_to_accuracy(result.histories["guanyu_f_workers_s1"], target)
        assert t_tf < t_vanilla_guanyu < t_byzantine
        # Paper: ~65 % runtime overhead, up to ~33 % Byzantine-resilience cost.
        runtime_overhead = (t_vanilla_guanyu - t_tf) / t_tf
        byzantine_overhead = (t_byzantine - t_vanilla_guanyu) / t_vanilla_guanyu
        assert 0.3 < runtime_overhead < 1.3
        assert 0.05 < byzantine_overhead < 0.8


class TestFigure3Batch32:
    def test_fig3c_accuracy_vs_updates(self, benchmark, figure3_batch32):
        """Fig. 3c: same per-update story with the smaller mini-batch."""
        result = benchmark.pedantic(lambda: figure3_batch32, rounds=1, iterations=1)
        _print_summary(result, "c")
        accuracies = {name: h.final_accuracy() for name, h in result.histories.items()}
        assert max(accuracies.values()) > 0.9
        assert accuracies["guanyu_f_workers_s1"] > max(accuracies.values()) - 0.1

    def test_fig3d_accuracy_vs_time(self, benchmark, figure3_batch32):
        """Fig. 3d: the smaller batch makes the communication overheads starker."""
        result = benchmark.pedantic(lambda: figure3_batch32, rounds=1, iterations=1)
        _print_summary(result, "d")
        target = result.reference_accuracy()
        t_tf = time_to_accuracy(result.histories["vanilla_tf"], target)
        t_vanilla_guanyu = time_to_accuracy(result.histories["guanyu_vanilla"], target)
        t_byzantine = time_to_accuracy(result.histories["guanyu_f_workers_s1"], target)
        assert t_tf < t_vanilla_guanyu < t_byzantine

    def test_fig3d_overheads_larger_than_batch128(self, benchmark, figure3_batch32,
                                                  figure3_batch128):
        """The relative overhead grows when gradient computation shrinks."""
        def ratio(result):
            target = result.reference_accuracy()
            t_tf = time_to_accuracy(result.histories["vanilla_tf"], target)
            t_guanyu = time_to_accuracy(result.histories["guanyu_vanilla"], target)
            return t_guanyu / t_tf

        ratios = benchmark.pedantic(
            lambda: (ratio(figure3_batch32), ratio(figure3_batch128)),
            rounds=1, iterations=1)
        assert ratios[0] > ratios[1]
