"""Supplementary material — contraction and breakdown-point checks.

Reproduces the numerical backing of the proof: the coordinate-wise median's
contraction coefficient (Lemma 9.2.3), including the "dimension plays
against the adversary" observation, Multi-Krum's bounded deviation
(Lemma 9.2.2), and the 1/3 asynchronous breakdown point (Section 3.5).
"""

import numpy as np

from repro.theory import (
    estimate_contraction,
    max_byzantine_servers,
    max_byzantine_workers,
    multi_krum_deviation_ratio,
    optimal_asynchronous_breakdown,
)


def test_contraction_coefficient_vs_dimension(benchmark):
    """m < 1 for every dimension, shrinking as the dimension grows."""
    dimensions = (2, 10, 50, 200)

    def sweep():
        return {d: estimate_contraction(num_correct=7, num_byzantine=2,
                                        dimension=d, num_trials=80, seed=0)
                for d in dimensions}

    coefficients = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nMedian contraction coefficient m (Lemma 9.2.3)")
    for dimension, value in coefficients.items():
        print(f"  d={dimension:4d}   m={value:.4f}")
    assert all(0.0 <= m < 1.0 for m in coefficients.values())
    assert coefficients[200] <= coefficients[2] + 0.05


def test_multi_krum_bounded_deviation(benchmark):
    """Lemma 9.2.2: deviation bounded regardless of the attack magnitude."""
    rng = np.random.default_rng(0)
    correct = rng.normal(size=(13, 40))

    def sweep():
        return {scale: multi_krum_deviation_ratio(
                    correct, rng.normal(0.0, scale, size=(5, 40)), num_byzantine=5)
                for scale in (1.0, 1e2, 1e4, 1e6)}

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nMulti-Krum deviation ratio vs. attack magnitude (Lemma 9.2.2)")
    for scale, ratio in ratios.items():
        print(f"  scale={scale:10.0f}   ratio={ratio:.4f}")
    values = np.array(list(ratios.values()))
    assert np.all(values < 20.0)
    # The bound is magnitude-independent: huge attacks do not inflate it.
    assert values.max() < 10 * values.min() + 1.0


def test_breakdown_point_arithmetic(benchmark):
    """Section 3.5: 1/3 optimal asynchronous breakdown, n >= 3f + 3."""
    def compute():
        return {
            "breakdown": optimal_asynchronous_breakdown(),
            "max_f_servers_6": max_byzantine_servers(6),
            "max_f_workers_18": max_byzantine_workers(18),
        }

    values = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\nBreakdown-point arithmetic:", values)
    assert values["breakdown"] == 1.0 / 3.0
    assert values["max_f_servers_6"] == 1    # paper: 1 Byzantine server of 6
    assert values["max_f_workers_18"] == 5   # paper: 5 Byzantine workers of 18
