"""Ablation — gradient aggregation rule at the parameter servers.

GuanYu uses Multi-Krum for phase 2; this ablation swaps in the median, the
trimmed mean and the (vulnerable) arithmetic mean under a worker attack.
"""

import dataclasses


from repro.experiments import run_gar_ablation, run_quorum_ablation
from repro.metrics import throughput_updates_per_second


def test_gar_ablation_robust_rules_survive_attack(benchmark, bench_scale):
    """Robust GARs converge under attack; the arithmetic mean does not."""
    histories = benchmark.pedantic(run_gar_ablation, rounds=1, iterations=1,
                                   kwargs=dict(scale=bench_scale))
    print("\nGAR ablation — final accuracy under a corrupted-gradient attack")
    for rule, history in histories.items():
        print(f"  {rule:15s} {history.final_accuracy():.3f}")

    robust = {rule: h.final_accuracy() for rule, h in histories.items()
              if rule != "mean"}
    assert all(accuracy > 0.85 for accuracy in robust.values())
    assert histories["mean"].final_accuracy() < min(robust.values()) - 0.2


def test_quorum_ablation_tradeoff(benchmark, bench_scale):
    """Section 5.3: larger quorums cost throughput but never per-update quality."""
    # Use a cluster shape whose admissible quorum range [2f̄+3, n̄−f̄] is wide.
    scale = dataclasses.replace(bench_scale, num_workers=12,
                                declared_byzantine_workers=1)
    histories = benchmark.pedantic(run_quorum_ablation, rounds=1, iterations=1,
                                   kwargs=dict(scale=scale))
    print("\nQuorum ablation — throughput vs. gradient quorum")
    for quorum, history in sorted(histories.items()):
        print(f"  q̄={quorum:2d}  throughput={throughput_updates_per_second(history):7.2f}"
              f"  final_acc={history.final_accuracy():.3f}")
    quorums = sorted(histories)
    small, large = quorums[0], quorums[-1]
    assert small < large
    assert (throughput_updates_per_second(histories[small])
            > throughput_updates_per_second(histories[large]))
    assert histories[large].final_accuracy() >= histories[small].final_accuracy() - 0.05
