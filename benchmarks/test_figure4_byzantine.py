"""Figure 4 — impact of Byzantine players on convergence.

The paper shows that vanilla TensorFlow cannot tolerate a single Byzantine
participant while GuanYu (fwrk=5, fps=1) keeps converging under simultaneous
worker and server attacks.
"""

import pytest

from repro.byzantine import CorruptedModelAttack, ReversedGradientAttack
from repro.experiments import run_figure4


@pytest.fixture(scope="module")
def figure4(bench_scale):
    return run_figure4(scale=bench_scale)


def _print_result(result):
    print("\nFigure 4 — final accuracies under attack")
    for name, accuracy in result.final_accuracies().items():
        print(f"  {name:22s} {accuracy:.3f}")


def test_figure4_vanilla_collapses_guanyu_survives(benchmark, figure4):
    """The headline claim: one Byzantine worker breaks vanilla, not GuanYu."""
    result = benchmark.pedantic(lambda: figure4, rounds=1, iterations=1)
    _print_result(result)
    accuracies = result.final_accuracies()
    clean = accuracies["vanilla_tf"]
    attacked_vanilla = accuracies["vanilla_tf_byzantine"]
    attacked_guanyu = accuracies["guanyu_byzantine"]

    assert clean > 0.9
    # Vanilla averaging under a corrupted-gradient attack loses most of its
    # accuracy; GuanYu stays within a few points of the clean run.
    assert attacked_vanilla < clean - 0.3
    assert attacked_guanyu > clean - 0.1
    assert attacked_guanyu > attacked_vanilla + 0.3


def test_figure4_alternative_attack_pair(benchmark, bench_scale):
    """The paper reports similar results for other Byzantine behaviours."""
    result = benchmark.pedantic(
        run_figure4, rounds=1, iterations=1,
        kwargs=dict(scale=bench_scale,
                    worker_attack=ReversedGradientAttack(factor=10.0),
                    server_attack=CorruptedModelAttack(noise_scale=100.0)))
    _print_result(result)
    accuracies = result.final_accuracies()
    assert accuracies["guanyu_byzantine"] > 0.85
    assert accuracies["vanilla_tf_byzantine"] < accuracies["guanyu_byzantine"]
