"""Telemetry overhead — the "<5 % on the batched runtime" budget.

Mirror of ``test_tracer_overhead.py`` for the metrics registry: the same
R=16 seed sweep runs with telemetry off (the ``NullRegistry`` default) and
with a live :class:`MetricsRegistry` installed, interleaved — off, on,
off, on, ... — and each variant takes its best-of over the rounds so a
background-load swing on the CI machine cannot masquerade as telemetry
overhead (or hide it).  Bit-identity is asserted before the budget: a
fast-but-perturbing registry would be a worse bug than a slow one.
"""

import time

from repro.batch import run_batched_scenarios
from repro.campaign.spec import ScenarioSpec
from repro.obs import MetricsRegistry, use_registry

REPLICAS = 16
REPEATS = 7


def _specs():
    return [ScenarioSpec(name=f"tel{seed}", seed=seed, num_steps=20,
                         eval_every=10, dataset_size=600,
                         max_eval_samples=64)
            for seed in range(REPLICAS)]


def _telemetry_run(specs):
    with use_registry(MetricsRegistry()):
        return run_batched_scenarios(specs)


def _interleaved_best_of(specs):
    off_seconds = on_seconds = float("inf")
    baseline = measured = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = run_batched_scenarios(specs)
        elapsed = time.perf_counter() - started
        if elapsed < off_seconds:
            off_seconds, baseline = elapsed, result

        started = time.perf_counter()
        result = _telemetry_run(specs)
        elapsed = time.perf_counter() - started
        if elapsed < on_seconds:
            on_seconds, measured = elapsed, result
    return off_seconds, baseline, on_seconds, measured


def test_telemetry_overhead_below_five_percent(benchmark):
    specs = _specs()
    run_batched_scenarios(specs)  # warm caches (dataset synthesis)

    off_seconds, baseline, on_seconds, measured = benchmark.pedantic(
        lambda: _interleaved_best_of(specs), rounds=1, iterations=1)

    overhead = on_seconds / off_seconds
    print(f"\ntelemetry overhead — R={REPLICAS} batched, best of {REPEATS}: "
          f"off {off_seconds:.4f}s, on {on_seconds:.4f}s "
          f"({overhead:.3f}x)")

    # Zero perturbation first, budget second.
    for measured_history, untouched_history in zip(measured, baseline):
        assert measured_history.to_dict() == untouched_history.to_dict()
    assert overhead < 1.05, (
        f"telemetry cost {overhead:.3f}x on the batched runtime "
        f"(budget: 1.05x)")
