"""Where does a GuanYu step spend its time? (§5.3 overhead attribution)

The paper attributes the Byzantine-resilience overhead to (1) server
replication and quorum waiting, (2) robust aggregation at the servers, and
(3) the extra server-to-server exchange at the end of each step.  This
benchmark reports the simulated time spent in each of the three protocol
phases and checks the expected ordering.
"""

from repro.experiments import run_figure3


def test_phase_time_breakdown(benchmark, bench_scale):
    result = benchmark.pedantic(
        run_figure3, rounds=1, iterations=1,
        kwargs=dict(scale=bench_scale, batch_size=128,
                    systems=["guanyu_f_workers_s1"]))
    history = result.histories["guanyu_f_workers_s1"]
    breakdown = history.mean_phase_durations()

    print("\nPer-phase time breakdown of one GuanYu step (simulated seconds)")
    total = sum(breakdown.values())
    for phase, duration in breakdown.items():
        print(f"  {phase:32s} {duration:8.4f}s  ({100 * duration / total:5.1f} %)")

    assert set(breakdown) == {"phase1_models_and_gradients",
                              "phase2_server_update",
                              "phase3_server_exchange"}
    assert all(duration > 0 for duration in breakdown.values())
    # Phase 1 carries the gradient computation, so it dominates; the final
    # server-to-server exchange is the cheapest of the three.
    assert breakdown["phase1_models_and_gradients"] > \
        breakdown["phase3_server_exchange"]
    # The sum of the phase means tracks the per-step time (loose bound: the
    # phases are measured on node-average clocks, the step on the max clock).
    mean_step_time = history.total_time() / history.total_steps()
    assert 0.5 * mean_step_time < total < 1.5 * mean_step_time
