"""Ablation — GuanYu against the full attack suite.

The paper states "we tested different possible Byzantine behaviors (on both
ends: workers and parameter servers) and we got approximately similar
results"; this sweep reproduces that claim across eight attacks.
"""

from repro.experiments import run_attack_sweep


def test_attack_sweep_guanyu_converges_under_every_attack(benchmark, bench_scale):
    histories = benchmark.pedantic(run_attack_sweep, rounds=1, iterations=1,
                                   kwargs=dict(scale=bench_scale))
    print("\nAttack sweep — GuanYu final accuracy per attack")
    for attack, history in histories.items():
        print(f"  {attack:20s} {history.final_accuracy():.3f}")

    assert len(histories) >= 8
    for attack, history in histories.items():
        assert history.final_accuracy() > 0.8, f"GuanYu failed under {attack}"
