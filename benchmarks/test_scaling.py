"""Scaling study — cluster size vs. throughput (extension benchmark).

Not a paper figure, but the natural systems question for a replicated
parameter-server design: how does throughput evolve as workers are added
(and the declared Byzantine headroom with them)?
"""

from repro.experiments import run_scaling_study


def test_scaling_with_worker_count(benchmark, bench_scale):
    rows = benchmark.pedantic(run_scaling_study, rounds=1, iterations=1,
                              kwargs=dict(scale=bench_scale,
                                          worker_counts=(6, 9, 12, 18),
                                          num_steps=15))
    print("\nScaling study — workers vs. throughput")
    for row in rows:
        print("  workers={num_workers:3d}  f̄={declared_byzantine_workers}  "
              "throughput={throughput:7.2f} upd/s  acc={final_accuracy:.3f}"
              .format(**row))

    assert len(rows) == 4
    assert all(row["throughput"] > 0 for row in rows)
    # Quorums are sized from the declared f̄, so adding workers (and headroom)
    # never brings the system to a halt: throughput stays within one order of
    # magnitude across a 3x change in cluster size.
    throughputs = [row["throughput"] for row in rows]
    assert max(throughputs) < 10 * min(throughputs)
