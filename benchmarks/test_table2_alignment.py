"""Table 2 — alignment of the parameter-difference vectors (Assumption 2).

The paper records, every 20 steps late in training, the two largest norms of
parameter-difference vectors between correct servers and cos(φ) between
those two difference vectors, finding values close to 1.
"""

import numpy as np

from repro.experiments import run_table2


def _print_rows(samples):
    print("\nTable 2 — parameter-vector alignment")
    print("  step   cos(phi)   max diff1   max diff2")
    for sample in samples:
        print(f"  {sample.step:5d}   {sample.cos_phi:8.4f}   "
              f"{sample.max_diff_1:9.5f}   {sample.max_diff_2:9.5f}")


def test_table2_alignment_close_to_one(benchmark, bench_scale):
    """cos(φ) between the two largest difference vectors stays close to 1."""
    samples = benchmark.pedantic(run_table2, rounds=1, iterations=1,
                                 kwargs=dict(scale=bench_scale, interval=10))
    _print_rows(samples)
    assert len(samples) >= 3
    cosines = np.array([s.cos_phi for s in samples if not np.isnan(s.cos_phi)])
    assert cosines.size >= 3
    # The paper's Table 2 reports values around 0.98-0.99.
    assert np.median(cosines) > 0.8
    assert cosines[-1] > 0.8


def test_table2_alignment_survives_server_attack(benchmark, bench_scale):
    """The alignment measurement also holds with an attacking Byzantine server."""
    samples = benchmark.pedantic(
        run_table2, rounds=1, iterations=1,
        kwargs=dict(scale=bench_scale, interval=10, attack_servers=True))
    _print_rows(samples)
    norms = np.array([s.max_diff_1 for s in samples])
    # The Byzantine server cannot blow the correct servers apart.
    assert np.all(norms < 10.0)
