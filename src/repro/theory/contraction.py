"""Contraction properties of the coordinate-wise median and Multi-Krum.

These are the executable versions of the supplementary material's
Lemmas 9.2.2 and 9.2.3: rather than proving the existence of constants
``c`` and ``m``, they *measure* them on concrete vector clouds, which is
what the property-based tests and the theory benchmark exercise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aggregation.krum import MultiKrum
from repro.aggregation.median import CoordinateWiseMedian


def _max_pairwise_distance(points: np.ndarray) -> float:
    """``max_{i,j} ||x_i − x_j||`` for an ``(n, d)`` cloud."""
    best = 0.0
    for index in range(points.shape[0]):
        distances = np.linalg.norm(points - points[index], axis=1)
        best = max(best, float(distances.max()))
    return best


def median_contraction_coefficient(correct_a: np.ndarray, correct_b: np.ndarray,
                                   byzantine_a: Optional[np.ndarray] = None,
                                   byzantine_b: Optional[np.ndarray] = None) -> float:
    """Measured contraction ratio of the coordinate-wise median (Lemma 9.2.3).

    Two different quorums (``correct_a`` plus ``byzantine_a`` on one side,
    ``correct_b`` plus ``byzantine_b`` on the other) are aggregated with the
    coordinate-wise median; the function returns

    ``||M(A) − M(B)|| / max_{i,j} ||x_i − x_j||``

    where the max runs over all *correct* vectors.  Values below 1 mean the
    two medians ended up closer together than the worst pair of correct
    replicas — the contraction the proof relies on.
    """
    correct_a = np.atleast_2d(correct_a)
    correct_b = np.atleast_2d(correct_b)
    median = CoordinateWiseMedian()

    inputs_a = correct_a if byzantine_a is None else np.concatenate(
        [correct_a, np.atleast_2d(byzantine_a)])
    inputs_b = correct_b if byzantine_b is None else np.concatenate(
        [correct_b, np.atleast_2d(byzantine_b)])

    y = median(inputs_a)
    z = median(inputs_b)
    all_correct = np.concatenate([correct_a, correct_b])
    spread = _max_pairwise_distance(all_correct)
    if spread <= 0:
        return 0.0
    return float(np.linalg.norm(y - z)) / spread


def estimate_contraction(num_correct: int, num_byzantine: int, dimension: int,
                         quorum: Optional[int] = None, num_trials: int = 200,
                         alignment: float = 1.0, misalignment: float = 0.1,
                         byzantine_scale: float = 100.0, seed: int = 0) -> float:
    """Monte-Carlo estimate of the expected contraction coefficient ``m``.

    Replicates the setting of Lemma 9.2.3: correct replicas are generated as
    ``x_i = a_i · u + b_i`` with ``a_i ~ N(0, alignment)`` along a shared
    direction ``u`` and an isotropic misalignment term ``b_i``; the
    Byzantine vectors are adversarial (far away, at ``byzantine_scale``).
    Two random quorums of size ``quorum`` are drawn per trial and the mean
    measured ratio is returned.

    The paper's argument needs this expectation to be strictly below 1; the
    theory benchmark reports it as a function of dimension, showing that
    "the dimension plays against the adversary".
    """
    if quorum is None:
        quorum = num_correct
    quorum = min(quorum, num_correct)
    rng = np.random.default_rng(seed)
    ratios = []
    for _ in range(num_trials):
        direction = rng.normal(size=dimension)
        direction /= max(np.linalg.norm(direction), 1e-12)
        offset = rng.normal(size=dimension)
        scales = rng.normal(0.0, alignment, size=num_correct)
        noise = rng.normal(0.0, misalignment, size=(num_correct, dimension))
        correct = scales[:, None] * direction[None, :] + offset[None, :] + noise

        byzantine = rng.normal(0.0, byzantine_scale, size=(num_byzantine, dimension)) \
            if num_byzantine else None

        indices_a = rng.choice(num_correct, size=quorum, replace=False)
        indices_b = rng.choice(num_correct, size=quorum, replace=False)
        ratio = median_contraction_coefficient(
            correct[indices_a], correct[indices_b],
            byzantine_a=byzantine, byzantine_b=byzantine)
        ratios.append(ratio)
    return float(np.mean(ratios))


def multi_krum_deviation_ratio(correct: np.ndarray, byzantine: np.ndarray,
                               num_byzantine: Optional[int] = None) -> float:
    """Measured Multi-Krum deviation constant (Lemma 9.2.2).

    Returns ``||F(correct ∪ byzantine) − mean(correct)|| / spread(correct)``
    where ``spread`` is the maximum pairwise distance between correct
    vectors.  Lemma 9.2.2 states this ratio is bounded by a constant ``c``
    independent of the Byzantine inputs; the property tests assert it stays
    bounded even for adversarial inputs orders of magnitude larger than the
    correct ones.
    """
    correct = np.atleast_2d(correct)
    byzantine = np.atleast_2d(byzantine) if byzantine is not None and len(byzantine) else None
    f = num_byzantine if num_byzantine is not None else (
        0 if byzantine is None else byzantine.shape[0])
    rule = MultiKrum(num_byzantine=f)
    inputs = correct if byzantine is None else np.concatenate([correct, byzantine])
    aggregate = rule(inputs)
    spread = _max_pairwise_distance(correct)
    if spread <= 0:
        spread = 1e-12
    return float(np.linalg.norm(aggregate - correct.mean(axis=0))) / spread
