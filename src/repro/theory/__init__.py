"""Numerical companions to the paper's convergence proof.

The supplementary material of the paper rests on three technical pieces,
each of which has an executable counterpart here:

* **Lemma 9.2.1** — ``lim_n Σ_i k^{n-i} η_i = 0`` for ``k ∈ [0,1)`` and
  ``η_i → 0`` (:func:`geometric_learning_rate_sum`);
* **Lemma 9.2.2** — Multi-Krum's output deviates from the honest majority by
  at most a constant times the honest spread
  (:func:`multi_krum_deviation_ratio`);
* **Lemma 9.2.3** — the coordinate-wise median contracts a cloud of roughly
  aligned replicas (:func:`median_contraction_coefficient`,
  :func:`estimate_contraction`);
* **Section 9.4 / Table 2** — alignment of parameter-difference vectors,
  measured as ``cos(φ)`` between the two largest difference vectors
  (:func:`alignment_cosine`, :class:`AlignmentProbe`).

The breakdown-point arithmetic of Section 3.5 (1/2 synchronous, 1/3
asynchronous) lives in :mod:`repro.theory.bounds`.
"""

from repro.theory.contraction import (
    estimate_contraction,
    median_contraction_coefficient,
    multi_krum_deviation_ratio,
)
from repro.theory.alignment import AlignmentProbe, AlignmentSample, alignment_cosine
from repro.theory.bounds import (
    geometric_learning_rate_sum,
    max_byzantine_servers,
    max_byzantine_workers,
    optimal_asynchronous_breakdown,
)

__all__ = [
    "median_contraction_coefficient",
    "estimate_contraction",
    "multi_krum_deviation_ratio",
    "alignment_cosine",
    "AlignmentProbe",
    "AlignmentSample",
    "geometric_learning_rate_sum",
    "optimal_asynchronous_breakdown",
    "max_byzantine_servers",
    "max_byzantine_workers",
]
