"""Breakdown-point arithmetic and the learning-rate lemma (Sections 3.5, 9.2.1)."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def geometric_learning_rate_sum(learning_rates: Sequence[float], k: float) -> float:
    """Compute ``Σ_{i=0}^{n} k^{n−i} η_i`` for the given learning-rate prefix.

    Lemma 9.2.1 of the supplementary material shows this quantity converges
    to 0 whenever ``k ∈ [0, 1)`` and ``η_i → 0``; the theory tests verify the
    numeric decay for representative schedules.
    """
    if not 0.0 <= k < 1.0:
        raise ValueError("k must lie in [0, 1)")
    learning_rates = np.asarray(list(learning_rates), dtype=np.float64)
    n = learning_rates.size - 1
    if n < 0:
        return 0.0
    powers = k ** (n - np.arange(n + 1))
    return float(np.sum(powers * learning_rates))


def optimal_asynchronous_breakdown() -> float:
    """The 1/3 optimal Byzantine fraction in asynchronous networks.

    Section 3.5: synchronous robust aggregation has a breakdown point of
    1/2 (Rousseeuw, 1985); asynchrony makes slow correct nodes
    indistinguishable from silent Byzantine ones, forcing one extra correct
    node per Byzantine node, hence ``(1/2) / (3/2) = 1/3``.
    """
    synchronous_breakdown = 0.5
    overprovisioning = 1.0 + synchronous_breakdown
    return synchronous_breakdown / overprovisioning


def max_byzantine_servers(num_servers: int) -> int:
    """Largest ``f`` with ``n ≥ 3f + 3`` for a given number of servers."""
    if num_servers < 3:
        raise ValueError("GuanYu needs at least 3 parameter servers")
    return (num_servers - 3) // 3


def max_byzantine_workers(num_workers: int) -> int:
    """Largest ``f̄`` with ``n̄ ≥ 3f̄ + 3`` for a given number of workers."""
    if num_workers < 3:
        raise ValueError("GuanYu needs at least 3 workers")
    return (num_workers - 3) // 3


def krum_kappa(num_workers: int, num_byzantine: int) -> float:
    """The constant κ of Assumption 9 in the convergence conditions.

    ``κ = k · sqrt(2 (n − f + f(n − f − 2) + f²(n − f − 1)) / (n − 2f − 2))``
    with ``k > 1``; returned here with ``k = 1`` as the tight value, used by
    the theory tests to check monotonicity in ``f``.
    """
    n, f = num_workers, num_byzantine
    denominator = n - 2 * f - 2
    if denominator <= 0:
        raise ValueError("Krum's condition n >= 2f + 3 is violated")
    numerator = 2 * (n - f + f * (n - f - 2) + f ** 2 * (n - f - 1))
    return float(np.sqrt(numerator / denominator))
