"""Parameter-vector alignment measurements (paper Section 9.4, Table 2).

Assumption 2 of the convergence proof states that, after some step, the
correct parameter vectors are roughly aligned along a common direction.
The authors validate it empirically by recording, every 20 steps, the two
largest norms among all pairwise parameter-difference vectors and the cosine
of the angle between those two difference vectors (their Table 2 shows
values close to 1).  :class:`AlignmentProbe` performs exactly that
measurement on a running :class:`~repro.core.trainer.GuanYuTrainer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


def alignment_cosine(parameter_vectors: Sequence[np.ndarray],
                     top_k: int = 2) -> Tuple[float, List[float]]:
    """Cosine between the two largest parameter-difference vectors.

    Parameters
    ----------
    parameter_vectors:
        The correct servers' parameter vectors θ^(i) at some step.
    top_k:
        How many of the largest-norm difference vectors to report.

    Returns
    -------
    (cos_phi, norms):
        ``cos_phi`` is ``a·b / (||a|| ||b||)`` for the two largest-norm
        difference vectors ``a`` and ``b`` (``nan`` when fewer than two
        distinct differences exist); ``norms`` lists the ``top_k`` largest
        difference norms, matching Table 2's "max diff" columns.
    """
    vectors = [np.asarray(v, dtype=np.float64) for v in parameter_vectors]
    differences = []
    for i in range(len(vectors)):
        for j in range(i + 1, len(vectors)):
            differences.append(vectors[i] - vectors[j])
    norms = np.array([np.linalg.norm(diff) for diff in differences])
    order = np.argsort(norms)[::-1]
    top_norms = [float(norms[k]) for k in order[:top_k]]

    if len(order) < 2 or norms[order[0]] <= 0 or norms[order[1]] <= 0:
        return float("nan"), top_norms
    a = differences[order[0]]
    b = differences[order[1]]
    cos_phi = float(np.dot(a, b) / (np.linalg.norm(a) * np.linalg.norm(b)))
    # Difference vectors are defined up to sign (θ_i − θ_j vs θ_j − θ_i);
    # alignment is about the spanned direction, so report |cos|.
    return abs(cos_phi), top_norms


@dataclass
class AlignmentSample:
    """One row of the Table 2 reproduction."""

    step: int
    cos_phi: float
    max_diff_1: float
    max_diff_2: float


class AlignmentProbe:
    """Record alignment samples from a GuanYu trainer every ``interval`` steps."""

    def __init__(self, interval: int = 20) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.samples: List[AlignmentSample] = []

    def maybe_record(self, step: int, parameter_vectors: Sequence[np.ndarray]) -> None:
        """Record a sample when ``step`` falls on the probe's interval."""
        if step % self.interval != 0:
            return
        cos_phi, norms = alignment_cosine(parameter_vectors, top_k=2)
        norms = norms + [float("nan")] * (2 - len(norms))
        self.samples.append(AlignmentSample(step=step, cos_phi=cos_phi,
                                            max_diff_1=norms[0], max_diff_2=norms[1]))

    def as_rows(self) -> List[Tuple[int, float, float, float]]:
        """Rows ``(step, cos_phi, max_diff1, max_diff2)`` — Table 2's format."""
        return [(s.step, s.cos_phi, s.max_diff_1, s.max_diff_2) for s in self.samples]
