"""Content-addressed on-disk store for campaign results.

Layout (all JSON, human-greppable)::

    <root>/
      ab/
        ab3f...e1.json     # key = ScenarioSpec.spec_hash()
        index.jsonl        # sidecar index (see repro.campaign.index)
      c0/
        c04d...92.json
        index.jsonl

Each entry holds the full scenario spec, the serialised
:class:`~repro.metrics.tracker.TrainingHistory` and run metadata, so a store
is self-describing: results can be compared across campaigns (and machines)
without the producing code.  Writes go through a temp file + ``os.replace``
so interrupted campaigns never leave half-written entries — which is what
makes resume safe.

Reads scale through the sidecar index: ``keys()``, ``query()`` and
``summary_rows()`` answer from the per-shard ``index.jsonl`` (flattened
spec + meta + summary per entry) without opening any entry payload, and
the index rebuilds itself from the payloads whenever it is missing or
disagrees with the directory listing.  ``load_all()`` remains the slow
path that parses every payload.  Hygiene lives here too: :meth:`ResultStore.fsck`
verifies entries against their content addresses and the index against
the entries; :meth:`ResultStore.gc` drops failed entries and compacts
the index (``repro store fsck`` / ``repro store gc`` from the CLI).
"""

from __future__ import annotations

import dataclasses
import difflib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.campaign.index import INDEX_FILENAME, StoreIndex, summary_from_history
from repro.campaign.spec import ScenarioSpec
from repro.obs.history import TrainingHistory
from repro.obs.telemetry import get_registry
from repro.obs.tracer import get_tracer

STORE_VERSION = 1

#: meta keys accepted as bare ``query()`` filters (``status="ran"``);
#: anything under meta is reachable with a dotted ``meta.<path>`` filter.
META_FIELDS = ("status", "duration_seconds", "created_at")

_MISSING = object()


class StoredResult:
    """One cached scenario result.

    Results returned by the index-backed ``query()``/``summary_rows()``
    carry the spec, meta and a per-entry summary out of the index; the
    :class:`~repro.obs.history.TrainingHistory` payload is read from disk
    only when :attr:`history` is first accessed.  Results from
    :meth:`ResultStore.get` arrive fully loaded.
    """

    def __init__(self, key: str, spec: ScenarioSpec,
                 history: Optional[TrainingHistory] = None,
                 meta: Optional[Dict] = None, *,
                 summary: Optional[Dict] = None,
                 loader: Optional[Callable[[], TrainingHistory]] = None
                 ) -> None:
        self.key = key
        self.spec = spec
        self.meta = {} if meta is None else meta
        self._history = history
        self._summary = summary
        self._loader = loader

    @property
    def history(self) -> TrainingHistory:
        """The training history (loaded from the entry payload on demand)."""
        if self._history is None:
            if self._loader is None:
                raise ValueError(
                    f"stored result {self.key[:10]} has no history attached")
            self._history = self._loader()
        return self._history

    @property
    def history_loaded(self) -> bool:
        """Whether accessing :attr:`history` already paid the payload read."""
        return self._history is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StoredResult):
            return NotImplemented
        return (self.key == other.key and self.spec == other.spec
                and self.meta == other.meta)

    def __repr__(self) -> str:
        loaded = "loaded" if self.history_loaded else "lazy"
        return (f"StoredResult(key={self.key[:10]!r}, "
                f"scenario={self.spec.name!r}, history={loaded})")

    def summary_row(self) -> Dict[str, object]:
        """Row for :func:`repro.plotting.format_table` comparisons."""
        spec = self.spec
        if self._summary is not None and not self.history_loaded:
            final_accuracy = self._summary.get("final_accuracy")
            sim_time = self._summary.get("sim_time_s", 0.0)
        else:
            final_accuracy = self.history.final_accuracy()
            sim_time = self.history.total_time()
        return {
            "scenario": spec.name,
            "trainer": spec.trainer,
            "gradient_rule": spec.gradient_rule,
            "worker_attack": spec.worker_attack.name if spec.worker_attack else None,
            "server_attack": spec.server_attack.name if spec.server_attack else None,
            "adversary": spec.adversary.name if spec.adversary else None,
            "workers": spec.num_workers,
            "seed": spec.seed,
            "fault_events": len(spec.faults.events) if spec.faults else 0,
            "hetero": spec.hetero.partition if spec.hetero else None,
            "final_accuracy": final_accuracy,
            "sim_time_s": sim_time,
            "key": self.key[:10],
        }


@dataclass
class FsckIssue:
    """One integrity problem ``fsck`` found."""

    kind: str
    detail: str
    key: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "detail": self.detail, "key": self.key}


@dataclass
class FsckReport:
    """What :meth:`ResultStore.fsck` verified and what it found."""

    entries: int = 0
    shards: int = 0
    stale_temps: int = 0
    issues: List[FsckIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "entries": self.entries,
            "shards": self.shards,
            "stale_temps": self.stale_temps,
            "issues": [issue.to_dict() for issue in self.issues],
        }


class ResultStore:
    """Content-addressed result cache keyed by :meth:`ScenarioSpec.spec_hash`."""

    #: temp files older than this are orphans from a killed writer
    STALE_TEMP_SECONDS = 3600.0

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.index = StoreIndex(self.root)
        self._payload_reads = 0
        self._sweep_stale_temp_files()
        registry = get_registry()
        if registry.enabled:
            # One scan at open; put()/delete() adjust from here, so the
            # gauge stays accurate without a per-write glob.
            registry.set_gauge("repro_store_entries", len(self.keys()))

    @property
    def payload_reads(self) -> int:
        """Entry payload files opened through this handle.

        The observable behind the index's core promise: ``query()`` and
        ``summary_rows()`` leave this untouched however many entries the
        store holds.
        """
        return self._payload_reads + self.index.payload_reads

    def _sweep_stale_temp_files(self) -> int:
        """Remove temp litter left by killed writers.

        Only files comfortably older than any plausible in-flight write are
        touched, so a concurrent campaign's active temp files are safe.
        """
        removed = 0
        cutoff = time.time() - self.STALE_TEMP_SECONDS
        for temp_path in self.root.glob("??/.*.tmp"):
            try:
                if temp_path.stat().st_mtime < cutoff:
                    temp_path.unlink()
                    removed += 1
            except OSError:
                pass  # already promoted or removed by its writer
        return removed

    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def keys(self) -> List[str]:
        return sorted(row["key"] for row in self.index.iter_entries())

    def __len__(self) -> int:
        return len(self.keys())

    # ------------------------------------------------------------------ #
    def put(self, spec: ScenarioSpec, history: TrainingHistory, *,
            status: str = "ran", duration_seconds: Optional[float] = None,
            extra_meta: Optional[Dict] = None) -> str:
        """Persist one result; returns its content-address key."""
        started = time.perf_counter()
        key = spec.spec_hash()
        path = self.path_for(key)
        existed = path.is_file()
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": STORE_VERSION,
            "key": key,
            "spec": spec.to_dict(),
            "history": history.to_dict(),
            "meta": {
                "status": status,
                "duration_seconds": duration_seconds,
                "created_at": time.time(),
                **(extra_meta or {}),
            },
        }
        # Unique temp name per writer: concurrent campaigns sharing a store
        # may race on the same key, and a shared ".tmp" would interleave.
        descriptor, temp_name = tempfile.mkstemp(prefix=f".{path.name}.",
                                                 suffix=".tmp",
                                                 dir=path.parent)
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(temp_name, path)
        # Entry first, index row second: a writer killed between the two
        # leaves a key-set mismatch the next reader detects and rebuilds.
        self.index.append_put(key, payload["spec"], payload["meta"],
                              summary_from_history(payload["history"]))
        get_tracer().count("store.put")
        registry = get_registry()
        if registry.enabled:
            registry.inc("repro_store_ops_total", op="put")
            registry.observe("repro_store_op_seconds",
                             time.perf_counter() - started, op="put")
            if not existed:
                registry.add_gauge("repro_store_entries", 1)
        return key

    def get(self, key: str) -> StoredResult:
        started = time.perf_counter()
        path = self.path_for(key)
        if not path.is_file():
            raise KeyError(f"no stored result for key '{key}'")
        self._payload_reads += 1
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        get_tracer().count("store.get")
        registry = get_registry()
        if registry.enabled:
            registry.inc("repro_store_ops_total", op="get")
            registry.observe("repro_store_op_seconds",
                             time.perf_counter() - started, op="get")
        return StoredResult(
            key=payload["key"],
            spec=ScenarioSpec.from_dict(payload["spec"]),
            history=TrainingHistory.from_dict(payload["history"]),
            meta=payload.get("meta", {}),
        )

    def delete(self, key: str) -> bool:
        path = self.path_for(key)
        if not path.is_file():
            return False
        path.unlink()
        self.index.append_delete(key)
        get_tracer().count("store.delete")
        registry = get_registry()
        if registry.enabled:
            registry.inc("repro_store_ops_total", op="delete")
            registry.add_gauge("repro_store_entries", -1)
        return True

    def _load_history(self, key: str) -> TrainingHistory:
        """Payload read behind a lazy :attr:`StoredResult.history`."""
        path = self.path_for(key)
        self._payload_reads += 1
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return TrainingHistory.from_dict(payload["history"])

    # ------------------------------------------------------------------ #
    # Cross-campaign queries (index-backed; no payload opens)
    # ------------------------------------------------------------------ #
    def load_all(self) -> Iterator[StoredResult]:
        """Fully-loaded results for every entry — the *slow path*.

        Opens and parses every payload file.  Prefer :meth:`query` /
        :meth:`summary_rows`, which answer from the sidecar index, and
        reach for this only when every history is genuinely needed.
        """
        for key in self.keys():
            yield self.get(key)

    def query(self, **filters) -> List[StoredResult]:
        """Stored results whose spec fields match every filter.

        Answered entirely from the sidecar index — no entry payloads are
        opened; returned results load their history lazily on first
        ``.history`` access.  Three filter shapes compose:

        * top-level spec fields — ``query(gradient_rule="median")``;
          attack/adversary values match on the *name*, so
          ``query(worker_attack="sign_flip")`` works;
        * dotted nested paths — ``query(**{"hetero.partition":
          "dirichlet"})`` or ``query(**{"meta.trace_summary.events": 0})``;
          a path absent from an entry simply doesn't match (no error);
        * meta fields — ``query(status="ran")`` (see :data:`META_FIELDS`).

        Unknown field names raise :class:`KeyError` naming the nearest
        valid fields.
        """
        spec_fields = {f.name for f in dataclasses.fields(ScenarioSpec)}
        self._validate_filter_names(filters, spec_fields)
        matches = []
        for row in self.index.iter_entries():
            if self._row_matches(row, filters, spec_fields):
                matches.append(self._result_from_row(row))
        return matches

    @staticmethod
    def _validate_filter_names(filters: Dict[str, Any],
                               spec_fields: set) -> None:
        valid = sorted(spec_fields) + list(META_FIELDS)
        unknown = []
        for name in filters:
            root = name.split(".", 1)[0]
            if root in spec_fields or root == "meta" or name in META_FIELDS:
                continue
            unknown.append(name)
        if unknown:
            message = f"unknown scenario fields: {sorted(unknown)}"
            suggestions: List[str] = []
            for name in sorted(unknown):
                for match in difflib.get_close_matches(name, valid, n=2):
                    if match not in suggestions:
                        suggestions.append(match)
            if suggestions:
                message += f"; nearest valid fields: {suggestions}"
            raise KeyError(message)

    @staticmethod
    def _row_matches(row: Dict, filters: Dict[str, Any],
                     spec_fields: set) -> bool:
        spec_dict = row.get("spec") or {}
        meta = row.get("meta") or {}
        for name, wanted in filters.items():
            if "." in name:
                root, rest = name.split(".", 1)
                scope = meta if root == "meta" else spec_dict.get(root)
                value = _navigate(scope, rest.split("."))
            elif name in spec_fields:
                value = spec_dict.get(name, _MISSING)
                if isinstance(value, dict) and "name" in value:
                    value = value["name"]
            else:
                value = meta.get(name, _MISSING)
            if value is _MISSING or value != wanted:
                return False
        return True

    def _result_from_row(self, row: Dict) -> StoredResult:
        key = row["key"]
        return StoredResult(
            key=key,
            spec=ScenarioSpec.from_dict(row.get("spec") or {}),
            meta=dict(row.get("meta") or {}),
            summary=row.get("summary"),
            loader=lambda key=key: self._load_history(key),
        )

    def summary_rows(self, results: Optional[List[StoredResult]] = None
                     ) -> List[Dict[str, object]]:
        """Comparison rows for every (or the given) stored result.

        The no-argument form is index-backed: rows come straight from the
        per-entry summaries without opening any payload.
        """
        if results is None:
            results = [self._result_from_row(row)
                       for row in self.index.iter_entries()]
        return [result.summary_row() for result in results]

    # ------------------------------------------------------------------ #
    # Hygiene: fsck / gc  (``repro store fsck`` / ``repro store gc``)
    # ------------------------------------------------------------------ #
    def fsck(self) -> FsckReport:
        """Verify entries and index against each other (read-only).

        Checks, per shard: entry payloads parse as JSON, deserialise to a
        spec, and hash back to their filename; entries sit in the shard
        their key names; the *raw* index (no auto-rebuild — deliberate
        corruption must stay visible) parses line by line, carries no row
        for a missing entry, no entry without a row, and no row whose
        spec/meta disagree with the payload.  When telemetry is active
        the ``repro_store_entries`` gauge is compared against the actual
        entry count.
        """
        report = FsckReport()
        cutoff = time.time() - self.STALE_TEMP_SECONDS
        for temp_path in self.root.glob("??/.*.tmp"):
            try:
                if temp_path.stat().st_mtime < cutoff:
                    report.stale_temps += 1
            except OSError:
                pass
        for prefix in self.index.shard_prefixes():
            report.shards += 1
            shard = self.root / prefix
            payloads: Dict[str, Dict] = {}
            unreadable: set = set()
            for path in sorted(shard.glob("*.json")):
                report.entries += 1
                self._payload_reads += 1
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        payload = json.load(handle)
                    if not isinstance(payload, dict):
                        raise json.JSONDecodeError("not an object", "", 0)
                except (OSError, json.JSONDecodeError):
                    report.issues.append(FsckIssue(
                        "corrupt_entry",
                        f"{path}: unreadable or truncated JSON",
                        key=path.stem))
                    unreadable.add(path.stem)
                    continue
                if path.stem[:2] != prefix:
                    report.issues.append(FsckIssue(
                        "misplaced_entry",
                        f"{path}: key belongs in shard {path.stem[:2]}/",
                        key=path.stem))
                try:
                    recomputed = ScenarioSpec.from_dict(
                        payload["spec"]).spec_hash()
                except Exception:
                    report.issues.append(FsckIssue(
                        "corrupt_entry",
                        f"{path}: spec does not deserialise",
                        key=path.stem))
                    unreadable.add(path.stem)
                    continue
                if recomputed != path.stem:
                    report.issues.append(FsckIssue(
                        "hash_mismatch",
                        f"{path}: content hashes to {recomputed[:10]}..., "
                        f"filename claims {path.stem[:10]}...",
                        key=path.stem))
                payloads[path.stem] = payload
            rows, line_errors = self.index.read_raw(prefix)
            for detail in line_errors:
                report.issues.append(FsckIssue("corrupt_index_line", detail))
            folded = StoreIndex.fold(rows)
            for key in sorted(folded):
                if key in unreadable:
                    continue  # already reported as corrupt_entry
                if key not in payloads:
                    report.issues.append(FsckIssue(
                        "orphan_index_row",
                        f"{prefix}/{INDEX_FILENAME}: row for entry "
                        f"{key[:10]}... which does not exist",
                        key=key))
                    continue
                payload = payloads[key]
                row = folded[key]
                if (row.get("spec") != payload.get("spec")
                        or row.get("meta") != payload.get("meta", {})):
                    report.issues.append(FsckIssue(
                        "stale_index_row",
                        f"{prefix}/{INDEX_FILENAME}: row for {key[:10]}... "
                        f"disagrees with the entry payload",
                        key=key))
            for key in sorted(payloads):
                if key not in folded:
                    report.issues.append(FsckIssue(
                        "missing_index_row",
                        f"{prefix}: entry {key[:10]}... has no index row",
                        key=key))
        registry = get_registry()
        if registry.enabled:
            gauge = registry.gauge("repro_store_entries").value()
            if gauge is not None and int(gauge) != report.entries - len(
                    {i.key for i in report.issues
                     if i.kind == "corrupt_entry"}):
                report.issues.append(FsckIssue(
                    "gauge_drift",
                    f"repro_store_entries gauge reads {int(gauge)}, "
                    f"store holds {report.entries} entries"))
        return report

    def gc(self, *, dry_run: bool = False) -> Dict[str, int]:
        """Collect garbage: failed entries, orphan index rows, stale temps.

        * entries whose meta status is ``"failed"`` are deleted (their
          spec hash is unchanged, so a later campaign simply re-runs them);
        * unreadable (corrupt/truncated) entries are deleted — they can
          never be served, and while present they keep the shard index
          permanently stale;
        * every shard index is compacted to one fresh row per live entry,
          which also drops superseded rows (older puts for a key) and
          orphan rows pointing at entries that no longer exist;
        * temp files older than :attr:`STALE_TEMP_SECONDS` are removed.

        With ``dry_run=True`` nothing changes; the report shows what a
        real pass would do.
        """
        removed_failed = 0
        removed_corrupt = 0
        orphan_rows = 0
        shards = self.index.shard_prefixes()
        for prefix in shards:
            folded = self.index.fold_raw(prefix)
            for key in sorted(folded):
                if not self.contains(key):
                    orphan_rows += 1
                    continue
                meta = folded[key].get("meta") or {}
                if meta.get("status") == "failed":
                    removed_failed += 1
                    if not dry_run:
                        self.delete(key)
            for path in sorted((self.root / prefix).glob("*.json")):
                self._payload_reads += 1
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        json.load(handle)
                except (OSError, json.JSONDecodeError):
                    removed_corrupt += 1
                    if not dry_run:
                        self.delete(path.stem)
        stale_temps = 0
        cutoff = time.time() - self.STALE_TEMP_SECONDS
        for temp_path in self.root.glob("??/.*.tmp"):
            try:
                if temp_path.stat().st_mtime < cutoff:
                    stale_temps += 1
                    if not dry_run:
                        temp_path.unlink()
            except OSError:
                pass
        if not dry_run:
            for prefix in shards:
                self.index.compact(prefix)
        return {
            "removed_failed": removed_failed,
            "removed_corrupt": removed_corrupt,
            "orphan_rows_dropped": orphan_rows,
            "stale_temps_removed": stale_temps,
            "shards_compacted": 0 if dry_run else len(shards),
            "entries": len(self),
        }


def _navigate(scope: Any, parts: List[str]) -> Any:
    """Walk ``parts`` through nested dicts; ``_MISSING`` when absent."""
    value = scope
    for part in parts:
        if not isinstance(value, dict) or part not in value:
            return _MISSING
        value = value[part]
    return value
