"""Content-addressed on-disk store for campaign results.

Layout (all JSON, human-greppable)::

    <root>/
      ab/
        ab3f...e1.json     # key = ScenarioSpec.spec_hash()
      c0/
        c04d...92.json

Each entry holds the full scenario spec, the serialised
:class:`~repro.metrics.tracker.TrainingHistory` and run metadata, so a store
is self-describing: results can be compared across campaigns (and machines)
without the producing code.  Writes go through a temp file + ``os.replace``
so interrupted campaigns never leave half-written entries — which is what
makes resume safe.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.campaign.spec import ScenarioSpec
from repro.obs.history import TrainingHistory
from repro.obs.telemetry import get_registry
from repro.obs.tracer import get_tracer

STORE_VERSION = 1


@dataclass
class StoredResult:
    """One cached scenario result."""

    key: str
    spec: ScenarioSpec
    history: TrainingHistory
    meta: Dict

    def summary_row(self) -> Dict[str, object]:
        """Row for :func:`repro.plotting.format_table` comparisons."""
        spec = self.spec
        return {
            "scenario": spec.name,
            "trainer": spec.trainer,
            "gradient_rule": spec.gradient_rule,
            "worker_attack": spec.worker_attack.name if spec.worker_attack else None,
            "server_attack": spec.server_attack.name if spec.server_attack else None,
            "adversary": spec.adversary.name if spec.adversary else None,
            "workers": spec.num_workers,
            "seed": spec.seed,
            "fault_events": len(spec.faults.events) if spec.faults else 0,
            "hetero": spec.hetero.partition if spec.hetero else None,
            "final_accuracy": self.history.final_accuracy(),
            "sim_time_s": self.history.total_time(),
            "key": self.key[:10],
        }


class ResultStore:
    """Content-addressed result cache keyed by :meth:`ScenarioSpec.spec_hash`."""

    #: temp files older than this are orphans from a killed writer
    STALE_TEMP_SECONDS = 3600.0

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_stale_temp_files()
        registry = get_registry()
        if registry.enabled:
            # One scan at open; put() increments from here, so the gauge
            # stays accurate without a per-write glob.
            registry.set_gauge("repro_store_entries", len(self.keys()))

    def _sweep_stale_temp_files(self) -> None:
        """Remove temp litter left by killed writers.

        Only files comfortably older than any plausible in-flight write are
        touched, so a concurrent campaign's active temp files are safe.
        """
        cutoff = time.time() - self.STALE_TEMP_SECONDS
        for temp_path in self.root.glob("??/.*.tmp"):
            try:
                if temp_path.stat().st_mtime < cutoff:
                    temp_path.unlink()
            except OSError:
                pass  # already promoted or removed by its writer

    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def keys(self) -> List[str]:
        return sorted(path.stem for path in self.root.glob("??/*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    # ------------------------------------------------------------------ #
    def put(self, spec: ScenarioSpec, history: TrainingHistory, *,
            status: str = "ran", duration_seconds: Optional[float] = None,
            extra_meta: Optional[Dict] = None) -> str:
        """Persist one result; returns its content-address key."""
        started = time.perf_counter()
        key = spec.spec_hash()
        path = self.path_for(key)
        existed = path.is_file()
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": STORE_VERSION,
            "key": key,
            "spec": spec.to_dict(),
            "history": history.to_dict(),
            "meta": {
                "status": status,
                "duration_seconds": duration_seconds,
                "created_at": time.time(),
                **(extra_meta or {}),
            },
        }
        # Unique temp name per writer: concurrent campaigns sharing a store
        # may race on the same key, and a shared ".tmp" would interleave.
        descriptor, temp_name = tempfile.mkstemp(prefix=f".{path.name}.",
                                                 suffix=".tmp",
                                                 dir=path.parent)
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(temp_name, path)
        get_tracer().count("store.put")
        registry = get_registry()
        if registry.enabled:
            registry.inc("repro_store_ops_total", op="put")
            registry.observe("repro_store_op_seconds",
                             time.perf_counter() - started, op="put")
            if not existed:
                registry.add_gauge("repro_store_entries", 1)
        return key

    def get(self, key: str) -> StoredResult:
        started = time.perf_counter()
        path = self.path_for(key)
        if not path.is_file():
            raise KeyError(f"no stored result for key '{key}'")
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        get_tracer().count("store.get")
        registry = get_registry()
        if registry.enabled:
            registry.inc("repro_store_ops_total", op="get")
            registry.observe("repro_store_op_seconds",
                             time.perf_counter() - started, op="get")
        return StoredResult(
            key=payload["key"],
            spec=ScenarioSpec.from_dict(payload["spec"]),
            history=TrainingHistory.from_dict(payload["history"]),
            meta=payload.get("meta", {}),
        )

    def delete(self, key: str) -> bool:
        path = self.path_for(key)
        if path.is_file():
            path.unlink()
            return True
        return False

    # ------------------------------------------------------------------ #
    # Cross-campaign queries
    # ------------------------------------------------------------------ #
    def load_all(self) -> Iterator[StoredResult]:
        for key in self.keys():
            yield self.get(key)

    def query(self, **filters) -> List[StoredResult]:
        """Stored results whose spec fields match every filter.

        Attack fields match on the attack *name*, so
        ``query(worker_attack="sign_flip", gradient_rule="median")`` works.
        """
        known = {field.name for field in dataclasses.fields(ScenarioSpec)}
        unknown = set(filters) - known
        if unknown:
            raise KeyError(f"unknown scenario fields: {sorted(unknown)}")
        matches = []
        for result in self.load_all():
            spec_dict = result.spec.to_dict()
            for key, wanted in filters.items():
                value = spec_dict[key]
                if isinstance(value, dict) and "name" in value:
                    value = value["name"]
                if value != wanted:
                    break
            else:
                matches.append(result)
        return matches

    def summary_rows(self, results: Optional[List[StoredResult]] = None
                     ) -> List[Dict[str, object]]:
        """Comparison rows for every (or the given) stored result."""
        results = list(self.load_all()) if results is None else results
        return [result.summary_row() for result in results]
