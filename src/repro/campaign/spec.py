"""Declarative scenario and campaign specifications.

A :class:`ScenarioSpec` fully describes one training run — trainer kind,
aggregation rules, cluster shape, attacks, delay and cost models, workload
and seed — as plain JSON-serialisable data.  Its canonical-JSON SHA-256
(:meth:`ScenarioSpec.spec_hash`) is the content address under which the
:class:`repro.campaign.store.ResultStore` caches results.

A :class:`CampaignSpec` describes *many* runs: either an explicit scenario
list, or a base scenario plus grid/zip axes that are expanded into the
cartesian product (grid) or element-wise bundles (zip) of their values.

NOTE: this module must not import :mod:`repro.experiments` at module level —
the experiment harnesses are themselves campaign definitions, so the imports
would be circular.  ``ExperimentScale`` conversions import lazily.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.adversary.base import Adversary
from repro.adversary.registry import available_adversaries, get_adversary
from repro.aggregation import available_rules, get_rule
from repro.byzantine.base import ServerAttack, WorkerAttack
from repro.byzantine.registry import available_attacks, get_attack
from repro.core.config import ClusterConfig
from repro.faults import FaultSchedule
from repro.hetero import HeteroSpec
from repro.network.delays import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LogNormalDelay,
    UniformDelay,
)
from repro.runtime.cost import GRID5000_LIKE, INSTANT, CostModel

_TRAINERS = ("guanyu", "vanilla", "single_server_krum", "guanyu_threaded")
_DELAY_MODELS = {
    "constant": ConstantDelay,
    "uniform": UniformDelay,
    "exponential": ExponentialDelay,
    "lognormal": LogNormalDelay,
}
_COST_MODELS = {"grid5000": GRID5000_LIKE, "instant": INSTANT}
_DATASETS = ("blobs", "images")
_MODELS = ("softmax", "mlp", "small_cnn", "paper_cnn")


def available_trainers() -> List[str]:
    """Trainer kinds a scenario can request."""
    return list(_TRAINERS)


def available_delay_models() -> List[str]:
    """Delay-model names a scenario can request."""
    return sorted(_DELAY_MODELS)


def available_cost_models() -> List[str]:
    """Cost-model names a scenario can request."""
    return sorted(_COST_MODELS)


# --------------------------------------------------------------------------- #
# Attack specification
# --------------------------------------------------------------------------- #
@dataclass
class AttackSpec:
    """A registered attack by name plus its constructor keyword arguments."""

    name: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> Union[WorkerAttack, ServerAttack]:
        """Instantiate the attack from the Byzantine registry.

        Raises ``ValueError`` (not ``TypeError``) on bad keyword arguments so
        spec validation, ``expand(on_invalid="skip")`` and the CLI error
        path all treat a misspelled kwarg like any other invalid spec.
        """
        try:
            return get_attack(self.name, **self.kwargs)
        except TypeError as exc:
            raise ValueError(
                f"invalid kwargs for attack '{self.name}': {exc}") from exc

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AttackSpec":
        return cls(name=payload["name"], kwargs=dict(payload.get("kwargs", {})))

    @classmethod
    def from_attack(cls, attack: Union[WorkerAttack, ServerAttack]) -> "AttackSpec":
        """Reconstruct a spec from a live attack instance.

        Attack classes store their constructor arguments as same-named public
        attributes, so the public scalar attributes round-trip through the
        registry (private/derived state is dropped).  Raises ``ValueError``
        for attacks that cannot be described declaratively — unregistered
        classes, or instances carrying non-scalar public state.
        """
        if attack.name not in available_attacks():
            raise ValueError(
                f"attack '{attack.name}' is not in the Byzantine registry; "
                f"campaign specs can only describe registered attacks")

        def public_scalars(obj) -> Dict[str, Any]:
            return {key: value for key, value in vars(obj).items()
                    if not key.startswith("_")
                    and (value is None or isinstance(value, (bool, int, float, str)))}

        dropped = {key for key in vars(attack)
                   if not key.startswith("_") and key not in public_scalars(attack)}
        if dropped:
            raise ValueError(
                f"attack '{attack.name}' carries non-scalar attributes "
                f"{sorted(dropped)} that cannot round-trip through a spec")
        kwargs = {key: value for key, value in public_scalars(attack).items()
                  if value is not None}
        spec = cls(name=attack.name, kwargs=kwargs)
        if public_scalars(spec.build()) != public_scalars(attack):
            raise ValueError(
                f"attack '{attack.name}' does not round-trip through its "
                f"constructor keyword arguments")
        return spec


@dataclass
class AdversarySpec:
    """A registered adversary by name plus constructor keyword arguments.

    Names resolve through :func:`repro.adversary.registry.get_adversary`:
    the native stateful adversaries first, then any legacy attack name
    (wrapped on the fly into a stateless adversary), so
    ``AdversarySpec("sign_flip")`` describes the same run as the legacy
    ``worker_attack`` field.  ``kwargs`` must stay JSON-serialisable —
    nested references (e.g. the sleeper's inner strategy) are plain
    name/kwargs dictionaries.
    """

    name: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> Adversary:
        """Instantiate a fresh single-run adversary.

        Raises ``ValueError`` (not ``TypeError``) on bad keyword arguments,
        matching :meth:`AttackSpec.build` so spec validation and the CLI
        error paths treat a misspelled kwarg like any other invalid spec.
        """
        try:
            return get_adversary(self.name, **self.kwargs)
        except TypeError as exc:
            raise ValueError(
                f"invalid kwargs for adversary '{self.name}': {exc}") from exc

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AdversarySpec":
        return cls(name=payload["name"], kwargs=dict(payload.get("kwargs", {})))


def _coerce_adversary(value: Union[None, str, Dict, AdversarySpec]
                      ) -> Optional[AdversarySpec]:
    if value is None or isinstance(value, AdversarySpec):
        return value
    if isinstance(value, str):
        return AdversarySpec(name=value)
    if isinstance(value, dict):
        return AdversarySpec.from_dict(value)
    raise TypeError(f"cannot interpret {value!r} as an adversary spec")


def _coerce_attack(value: Union[None, str, Dict, AttackSpec]) -> Optional[AttackSpec]:
    if value is None or isinstance(value, AttackSpec):
        return value
    if isinstance(value, str):
        return AttackSpec(name=value)
    if isinstance(value, dict):
        return AttackSpec.from_dict(value)
    raise TypeError(f"cannot interpret {value!r} as an attack spec")


def _coerce_faults(value: Union[None, Dict, FaultSchedule]) -> Optional[FaultSchedule]:
    """Normalise a faults field; schedules that do nothing become ``None``.

    The normalisation matters for content addressing: an empty schedule and
    an absent one describe the same run, so they must hash identically.
    """
    if value is None:
        return None
    if isinstance(value, dict):
        value = FaultSchedule.from_dict(value)
    if not isinstance(value, FaultSchedule):
        raise TypeError(f"cannot interpret {value!r} as a fault schedule")
    return value if value else None


def _coerce_hetero(value: Union[None, Dict, HeteroSpec]) -> Optional[HeteroSpec]:
    """Normalise a hetero field; a spec describing the legacy homogeneous
    i.i.d. run is falsy and becomes ``None`` (same content-addressing rule
    as :func:`_coerce_faults`: absent ≡ legacy, so they must hash alike)."""
    if value is None:
        return None
    if isinstance(value, dict):
        value = HeteroSpec.from_dict(value)
    if not isinstance(value, HeteroSpec):
        raise TypeError(f"cannot interpret {value!r} as a hetero spec")
    return value if value else None


# --------------------------------------------------------------------------- #
# Scenario specification
# --------------------------------------------------------------------------- #
@dataclass
class ScenarioSpec:
    """Complete, JSON-serialisable description of one training run.

    The defaults mirror ``ExperimentScale.small()`` so that a bare spec is
    runnable in seconds; :meth:`from_scale` imports a legacy scale object.
    """

    name: str = "scenario"
    #: ``guanyu`` | ``vanilla`` | ``single_server_krum`` | ``guanyu_threaded``
    trainer: str = "guanyu"

    # -- cluster shape (paper notation: n̄, n, f̄, f, q̄, q) ----------------- #
    num_workers: int = 9
    num_servers: int = 6
    declared_byzantine_workers: int = 2
    declared_byzantine_servers: int = 1
    model_quorum: Optional[int] = None
    gradient_quorum: Optional[int] = None

    # -- aggregation rules ------------------------------------------------- #
    gradient_rule: str = "multi_krum"
    model_rule: str = "median"

    # -- attacks ----------------------------------------------------------- #
    worker_attack: Optional[AttackSpec] = None
    #: ``None`` means "as many as declared" when a worker attack is present
    num_attacking_workers: Optional[int] = None
    server_attack: Optional[AttackSpec] = None
    num_attacking_servers: Optional[int] = None
    #: stateful coordinated adversary (mutually exclusive with the legacy
    #: per-node attack fields; absent ≡ legacy behaviour, also for hashing)
    adversary: Optional[AdversarySpec] = None

    # -- network delay / computation cost ---------------------------------- #
    delay_model: str = "uniform"
    delay_kwargs: Dict[str, float] = field(default_factory=dict)
    cost_model: str = "grid5000"
    #: threaded runtime only: delivery jitter bound and per-quorum deadline
    jitter: float = 0.0
    quorum_timeout: float = 60.0
    #: explicit execution runtime.  ``None`` means the legacy default for
    #: the trainer (simulated event loop, or node threads for
    #: ``guanyu_threaded``).  ``"batched"`` (trainer ``guanyu`` only) runs
    #: the scenario as a one-replica lane on the vectorised runtime;
    #: ``"cluster"`` (trainer ``guanyu_threaded`` only) runs one OS
    #: process per node over real sockets, under a supervisor.  Absent ≡
    #: legacy for content addressing, so pre-cluster stores stay valid.
    runtime: Optional[str] = None
    #: kernel backend (:mod:`repro.kernels`) the run should select, e.g.
    #: ``"numpy-opt"``.  Every backend is bit-identical by contract, so
    #: this is a performance knob, not a semantic one; absent ≡ legacy
    #: (the process default) for content addressing.
    kernels: Optional[str] = None

    # -- time-varying faults (GuanYu trainers only) ------------------------- #
    #: declarative :class:`~repro.faults.FaultSchedule` (or its dict form):
    #: crashes/recoveries, partitions that heal, per-link delay spikes /
    #: drop rates / slowdowns, step-gated attack activation
    faults: Optional[FaultSchedule] = None

    # -- data / worker heterogeneity ---------------------------------------- #
    #: declarative :class:`~repro.hetero.HeteroSpec` (or its dict form):
    #: non-i.i.d. partitions (Dirichlet label skew, shard splits, sample
    #: imbalance, feature drift) and per-worker profiles (batch size,
    #: local steps, delay multiplier).  Absent ≡ the legacy homogeneous
    #: split, also for content addressing.
    hetero: Optional[HeteroSpec] = None

    # -- workload ----------------------------------------------------------- #
    dataset: str = "blobs"
    dataset_size: int = 800
    image_size: int = 8
    model: str = "softmax"
    batch_size: int = 16
    learning_rate: float = 0.05
    sharding: str = "iid"
    #: vanilla trainer only (the paper's "vanilla GuanYu" baseline)
    external_communication: bool = False

    # -- schedule / duration ------------------------------------------------ #
    num_steps: int = 60
    eval_every: int = 10
    max_eval_samples: Optional[int] = 256
    billed_parameters: Optional[int] = 1_756_426
    seed: int = 42

    def __post_init__(self) -> None:
        self.worker_attack = _coerce_attack(self.worker_attack)
        self.server_attack = _coerce_attack(self.server_attack)
        self.adversary = _coerce_adversary(self.adversary)
        self.faults = _coerce_faults(self.faults)
        self.hetero = _coerce_hetero(self.hetero)

    # ------------------------------------------------------------------ #
    # Derived values
    # ------------------------------------------------------------------ #
    def _adversary_sides(self) -> tuple:
        """``(attacks_workers, attacks_servers)`` of the adversary (if any).

        Building an adversary (inner strategies, gating controllers) just
        to read two booleans is wasteful across a sweep's many
        ``resolved_num_attacking_*``/``validate`` calls, so the answer is
        cached per adversary configuration on this spec instance (the
        cache is plain instance state: dataclass equality, ``asdict`` and
        ``replace`` all ignore it).
        """
        if self.adversary is None:
            return False, False
        key = (self.adversary.name,
               json.dumps(self.adversary.kwargs, sort_keys=True, default=str))
        cached = getattr(self, "_adversary_sides_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        adversary = self.adversary.build()
        sides = (adversary.attacks_workers, adversary.attacks_servers)
        self._adversary_sides_cache = (key, sides)
        return sides

    def resolved_num_attacking_workers(self) -> int:
        if self.worker_attack is None and self.adversary is None:
            return 0
        if self.adversary is not None and not self._adversary_sides()[0]:
            return 0
        if self.num_attacking_workers is not None:
            return self.num_attacking_workers
        return self.declared_byzantine_workers

    def resolved_num_attacking_servers(self) -> int:
        if self.server_attack is None and self.adversary is None:
            return 0
        if self.adversary is not None and not self._adversary_sides()[1]:
            return 0
        if self.num_attacking_servers is not None:
            return self.num_attacking_servers
        return self.declared_byzantine_servers

    def cluster_config(self) -> ClusterConfig:
        """The validated ``(n, f, n̄, f̄, q, q̄)`` arithmetic of this scenario."""
        return ClusterConfig(
            num_servers=self.num_servers,
            num_workers=self.num_workers,
            num_byzantine_servers=self.declared_byzantine_servers,
            num_byzantine_workers=self.declared_byzantine_workers,
            model_quorum=self.model_quorum,
            gradient_quorum=self.gradient_quorum,
        )

    def build_delay_model(self) -> DelayModel:
        try:
            delay_class = _DELAY_MODELS[self.delay_model]
        except KeyError:
            raise ValueError(
                f"unknown delay model '{self.delay_model}'; "
                f"available: {available_delay_models()}"
            ) from None
        return delay_class(**self.delay_kwargs)

    def build_cost_model(self) -> CostModel:
        try:
            return _COST_MODELS[self.cost_model]
        except KeyError:
            raise ValueError(
                f"unknown cost model '{self.cost_model}'; "
                f"available: {available_cost_models()}"
            ) from None

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> "ScenarioSpec":
        """Check admissibility; raises ``ValueError`` on an invalid spec."""
        if self.trainer not in _TRAINERS:
            raise ValueError(f"unknown trainer '{self.trainer}'; "
                             f"available: {available_trainers()}")
        for rule in (self.gradient_rule, self.model_rule):
            if rule not in available_rules():
                raise ValueError(f"unknown aggregation rule '{rule}'; "
                                 f"available: {available_rules()}")
        if self.dataset not in _DATASETS:
            raise ValueError(f"unknown dataset '{self.dataset}'")
        if self.model not in _MODELS:
            raise ValueError(f"unknown model '{self.model}'")
        if self.num_steps <= 0:
            raise ValueError("num_steps must be positive")
        if self.eval_every <= 0:
            raise ValueError("eval_every must be positive")
        for count in (self.num_attacking_workers, self.num_attacking_servers):
            if count is not None and count < 0:
                raise ValueError("attacker counts must be non-negative")
        adversary_workers = adversary_servers = False
        if self.adversary is not None:
            if self.worker_attack is not None or self.server_attack is not None:
                raise ValueError(
                    "give either an adversary or legacy per-node attacks, "
                    "not both")
            if self.trainer not in ("guanyu", "guanyu_threaded"):
                raise ValueError(
                    "adversaries model the paper's full threat model and "
                    "apply only to the GuanYu trainers; the single-server "
                    "baselines take a worker_attack instead")
            known = (self.adversary.name in available_adversaries()
                     or self.adversary.name in available_attacks())
            if not known:
                raise ValueError(
                    f"unknown adversary '{self.adversary.name}'; native: "
                    f"{available_adversaries()}, wrappable attacks: "
                    f"{available_attacks()}")
            adversary_workers, adversary_servers = self._adversary_sides()
        if self.num_attacking_workers and self.worker_attack is None \
                and not adversary_workers:
            raise ValueError("num_attacking_workers > 0 requires a worker_attack")
        if self.num_attacking_servers and self.server_attack is None \
                and not adversary_servers:
            raise ValueError("num_attacking_servers > 0 requires a server_attack")

        worker_attack = server_attack = None
        if self.worker_attack is not None:
            if self.worker_attack.name not in available_attacks():
                raise ValueError(f"unknown attack '{self.worker_attack.name}'; "
                                 f"available: {available_attacks()}")
            worker_attack = self.worker_attack.build()
            if not isinstance(worker_attack, WorkerAttack):
                raise ValueError(
                    f"'{self.worker_attack.name}' is a server attack, "
                    f"not a worker attack")
        if self.server_attack is not None:
            if self.server_attack.name not in available_attacks():
                raise ValueError(f"unknown attack '{self.server_attack.name}'; "
                                 f"available: {available_attacks()}")
            server_attack = self.server_attack.build()
            if not isinstance(server_attack, ServerAttack):
                raise ValueError(
                    f"'{self.server_attack.name}' is a worker attack, "
                    f"not a server attack")

        if self.hetero is not None:
            if self.sharding != "iid":
                raise ValueError(
                    "a hetero spec replaces the legacy sharding strategies; "
                    f"leave sharding at 'iid' (got '{self.sharding}')")
            self.hetero.validate(num_workers=self.num_workers)
        if self.external_communication and self.trainer != "vanilla":
            raise ValueError("external_communication models the 'vanilla "
                             "GuanYu' baseline and applies only to trainer "
                             "'vanilla'")
        if self.faults is not None:
            if self.trainer not in ("guanyu", "guanyu_threaded"):
                raise ValueError(
                    "fault schedules require replicated parameter servers; "
                    f"trainer '{self.trainer}' assumes a live trusted server")
            config = self.cluster_config()
            self.faults.validate(
                known_nodes=config.worker_ids() + config.server_ids())
        if self.runtime is not None:
            if self.runtime not in ("batched", "cluster"):
                raise ValueError(f"unknown runtime '{self.runtime}'; the "
                                 f"explicit runtimes are 'batched' and "
                                 f"'cluster' (absent means the trainer's "
                                 f"legacy default)")
            if self.runtime == "cluster" and self.trainer != "guanyu_threaded":
                raise ValueError(
                    "runtime 'cluster' runs the wall-clock cluster protocol "
                    "as real OS processes and requires trainer "
                    f"'guanyu_threaded' (got '{self.trainer}')")
            if self.runtime == "batched":
                from repro.batch import spec_supports_batching  # lazy: cycle
                if not spec_supports_batching(self):
                    raise ValueError(
                        f"runtime 'batched' requires trainer 'guanyu' and a "
                        f"replica-batchable dense model (got trainer "
                        f"'{self.trainer}', model '{self.model}')")
        if self.kernels is not None:
            from repro.kernels import available_backends  # lazy: cycle
            if self.kernels not in available_backends():
                raise ValueError(
                    f"unknown kernel backend '{self.kernels}'; available: "
                    f"{list(available_backends())}")
            if self.runtime == "cluster":
                raise ValueError(
                    "runtime 'cluster' spawns one OS process per node and "
                    "does not propagate an in-process kernel selection; "
                    "set the REPRO_KERNEL_BACKEND environment variable "
                    "instead")
        if self.trainer == "guanyu_threaded":
            # The threaded runtime runs on the real wall clock: delay/cost
            # models do not apply, and silently ignoring them would let two
            # identical runs hash to different store keys.
            if (self.delay_model != "uniform" or self.delay_kwargs
                    or self.cost_model != "grid5000"):
                raise ValueError(
                    "trainer 'guanyu_threaded' runs on the real clock and "
                    "ignores delay/cost models; leave them at their defaults "
                    "(its knobs are 'jitter' and 'quorum_timeout')")
        elif self.jitter != 0.0 or self.quorum_timeout != 60.0:
            raise ValueError("'jitter' and 'quorum_timeout' apply only to "
                             "trainer 'guanyu_threaded'; simulated trainers "
                             "take a delay_model instead")

        if self.trainer in ("guanyu", "guanyu_threaded"):
            config = self.cluster_config()  # raises on n < 3f + 3 etc.
            if self.resolved_num_attacking_workers() > config.num_byzantine_workers:
                raise ValueError("more attacking workers than declared "
                                 "Byzantine workers")
            if self.resolved_num_attacking_servers() > config.num_byzantine_servers:
                raise ValueError("more attacking servers than declared "
                                 "Byzantine servers")
            gradient_rule = get_rule(self.gradient_rule,
                                     num_byzantine=config.num_byzantine_workers)
            if gradient_rule.minimum_inputs() > config.gradient_quorum:
                raise ValueError(
                    f"gradient rule '{self.gradient_rule}' with "
                    f"f̄={config.num_byzantine_workers} needs at least "
                    f"{gradient_rule.minimum_inputs()} inputs but the gradient "
                    f"quorum is {config.gradient_quorum}")
            model_rule = get_rule(self.model_rule,
                                  num_byzantine=config.num_byzantine_servers)
            if model_rule.minimum_inputs() > config.model_quorum:
                raise ValueError(
                    f"model rule '{self.model_rule}' with "
                    f"f={config.num_byzantine_servers} needs at least "
                    f"{model_rule.minimum_inputs()} inputs but the model "
                    f"quorum is {config.model_quorum}")
        else:  # single trusted parameter server
            if self.num_workers <= 0:
                raise ValueError("num_workers must be positive")
            if self.resolved_num_attacking_workers() > self.num_workers:
                raise ValueError("cannot have more attacking workers than workers")
            # Knobs the single-server trainers ignore must stay at their
            # defaults — otherwise the store would record (and hash) a rule
            # the run never used.
            if self.trainer == "single_server_krum" \
                    and self.gradient_rule != "multi_krum":
                raise ValueError("trainer 'single_server_krum' always "
                                 "aggregates with multi_krum; use trainer "
                                 "'vanilla' to choose a gradient rule")
            if self.model_rule != "median":
                raise ValueError(f"trainer '{self.trainer}' has a single "
                                 f"parameter server and never aggregates "
                                 f"models; leave model_rule at 'median'")
            gradient_rule = get_rule(self.gradient_rule,
                                     num_byzantine=self.declared_byzantine_workers)
            if gradient_rule.minimum_inputs() > self.num_workers:
                raise ValueError(
                    f"gradient rule '{self.gradient_rule}' with "
                    f"f̄={self.declared_byzantine_workers} needs at least "
                    f"{gradient_rule.minimum_inputs()} inputs but only "
                    f"{self.num_workers} workers respond")
            if self.server_attack is not None:
                raise ValueError(f"trainer '{self.trainer}' assumes a trusted "
                                 f"parameter server; remove the server attack")
            if self.trainer == "single_server_krum":
                minimum = 2 * self.declared_byzantine_workers + 3
                if self.num_workers < minimum:
                    raise ValueError(
                        f"Multi-Krum with f={self.declared_byzantine_workers} "
                        f"needs at least {minimum} workers")
        return self

    # ------------------------------------------------------------------ #
    # Serialisation and hashing
    # ------------------------------------------------------------------ #
    def replace(self, **overrides) -> "ScenarioSpec":
        """A copy with ``overrides`` applied (attack fields are coerced)."""
        known = {f.name for f in dataclasses.fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)} "
                             f"(check grid axis names)")
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["worker_attack"] = (self.worker_attack.to_dict()
                                    if self.worker_attack else None)
        payload["server_attack"] = (self.server_attack.to_dict()
                                    if self.server_attack else None)
        payload["adversary"] = (self.adversary.to_dict()
                                if self.adversary else None)
        # Canonical compact form (defaulted event fields omitted) so that
        # equal schedules serialise — and therefore hash — identically.
        payload["faults"] = self.faults.to_dict() if self.faults else None
        payload["hetero"] = self.hetero.to_dict() if self.hetero else None
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        return cls(**payload)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def spec_hash(self) -> str:
        """Content address: SHA-256 over the canonical JSON of the spec.

        The ``name`` is a pure label and is excluded, so equal
        configurations share one cache entry regardless of how a campaign
        or harness chose to name them.  An absent ``faults`` schedule is
        excluded too: fault-free specs keep the addresses they had before
        fault injection existed, and the hash changes iff the schedule does.
        The same absent≡legacy rule applies to ``adversary``, ``hetero``,
        ``runtime`` and ``kernels``, so stores filled before the adversary,
        heterogeneity, cluster or kernel engines existed stay valid.
        """
        payload = self.to_dict()
        del payload["name"]
        if payload["faults"] is None:
            del payload["faults"]
        if payload["adversary"] is None:
            del payload["adversary"]
        if payload["hetero"] is None:
            del payload["hetero"]
        if payload["runtime"] is None:
            del payload["runtime"]
        if payload["kernels"] is None:
            del payload["kernels"]
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def batch_group_hash(self) -> str:
        """Content address ignoring ``name`` *and* ``seed``.

        Scenarios sharing this hash are replicas of one configuration that
        differ only in their random seed — exactly the axis the batched
        multi-replica runtime (:mod:`repro.batch`) vectorises over.  The
        campaign engine groups pending scenarios by this hash when
        ``batch_seeds`` is requested.
        """
        payload = self.to_dict()
        del payload["name"]
        del payload["seed"]
        if payload["faults"] is None:
            del payload["faults"]
        if payload["adversary"] is None:
            del payload["adversary"]
        if payload["hetero"] is None:
            del payload["hetero"]
        if payload["runtime"] is None:
            del payload["runtime"]
        if payload["kernels"] is None:
            del payload["kernels"]
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # ExperimentScale interoperability (lazy imports: see module docstring)
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scale(cls, scale, **overrides) -> "ScenarioSpec":
        """Build a spec from a legacy :class:`ExperimentScale`."""
        base = dict(
            num_workers=scale.num_workers,
            num_servers=scale.num_servers,
            declared_byzantine_workers=scale.declared_byzantine_workers,
            declared_byzantine_servers=scale.declared_byzantine_servers,
            num_steps=scale.num_steps,
            eval_every=scale.eval_every,
            batch_size=scale.batch_size,
            dataset=scale.dataset,
            model=scale.model,
            learning_rate=scale.learning_rate,
            dataset_size=scale.dataset_size,
            image_size=scale.image_size,
            seed=scale.seed,
            max_eval_samples=scale.max_eval_samples,
            billed_parameters=scale.billed_parameters,
        )
        base.update(overrides)
        return cls(**base)

    def to_scale(self):
        """The :class:`ExperimentScale` view used to build the workload."""
        from repro.experiments.common import ExperimentScale

        return ExperimentScale(
            num_workers=self.num_workers,
            num_servers=self.num_servers,
            declared_byzantine_workers=self.declared_byzantine_workers,
            declared_byzantine_servers=self.declared_byzantine_servers,
            num_steps=self.num_steps,
            eval_every=self.eval_every,
            batch_size=self.batch_size,
            dataset=self.dataset,
            model=self.model,
            learning_rate=self.learning_rate,
            dataset_size=self.dataset_size,
            image_size=self.image_size,
            seed=self.seed,
            max_eval_samples=self.max_eval_samples,
            billed_parameters=self.billed_parameters,
        )


# --------------------------------------------------------------------------- #
# Campaign specification
# --------------------------------------------------------------------------- #
def ensure_unique_names(scenarios: Sequence["ScenarioSpec"]) -> None:
    """Raise if two scenarios share a name (names key campaign results)."""
    counts = collections.Counter(scenario.name for scenario in scenarios)
    duplicates = sorted(name for name, count in counts.items() if count > 1)
    if duplicates:
        raise ValueError(f"duplicate scenario names: {duplicates}")


def _axis_entries(axis: str, values: Sequence) -> List[tuple]:
    """Normalise one grid axis into ``(label, patch)`` entries.

    Scalar values patch the field named by the axis (label ``field=value``);
    dict values are multi-field patches and the axis name is just a label
    (each dict may carry a ``"_name"`` key used for scenario naming).
    """
    if not isinstance(values, (list, tuple)):
        raise ValueError(f"grid axis '{axis}' must map to a list of values, "
                         f"got {type(values).__name__}")
    entries = []
    for index, value in enumerate(values):
        if isinstance(value, dict):
            patch = {key: val for key, val in value.items() if key != "_name"}
            label = str(value.get("_name", f"{axis}{index}"))
        else:
            patch = {axis: value}
            label = f"{axis}={value}"
        entries.append((label, patch))
    if not entries:
        raise ValueError(f"grid axis '{axis}' has no values")
    return entries


@dataclass
class CampaignSpec:
    """A named family of scenarios: explicit list, or base + grid/zip axes.

    ``grid`` axes are combined as a cartesian product; ``zip_axes`` lists
    (JSON key ``"zip"``) must share one length and are bundled element-wise
    into a single extra axis — use them for coupled parameters such as
    ``num_workers`` and the admissible ``declared_byzantine_workers``.
    """

    name: str = "campaign"
    base: ScenarioSpec = field(default_factory=ScenarioSpec)
    grid: Dict[str, List] = field(default_factory=dict)
    zip_axes: Dict[str, List] = field(default_factory=dict)
    scenarios: List[ScenarioSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.scenarios and (self.grid or self.zip_axes):
            raise ValueError("give either an explicit scenario list or "
                             "grid/zip axes, not both")
        self.scenarios = [scenario if isinstance(scenario, ScenarioSpec)
                          else ScenarioSpec.from_dict(scenario)
                          for scenario in self.scenarios]
        if isinstance(self.base, dict):
            self.base = ScenarioSpec.from_dict(self.base)

    # ------------------------------------------------------------------ #
    def _zip_axis(self) -> Optional[List[tuple]]:
        if not self.zip_axes:
            return None
        lengths = {len(values) for values in self.zip_axes.values()}
        if len(lengths) != 1:
            raise ValueError(f"zip axes must share one length, got "
                             f"{sorted(lengths)}")
        per_axis = {axis: _axis_entries(axis, values)
                    for axis, values in self.zip_axes.items()}
        bundled = []
        for index in range(lengths.pop()):
            labels, patch = [], {}
            for axis in self.zip_axes:
                label, axis_patch = per_axis[axis][index]
                labels.append(label)
                patch.update(axis_patch)
            bundled.append(("-".join(labels), patch))
        return bundled

    def expand(self, on_invalid: str = "raise") -> List[ScenarioSpec]:
        """Expand to a validated scenario list.

        ``on_invalid="skip"`` silently drops inadmissible grid cells (e.g. a
        cluster size that cannot host the declared Byzantine count);
        ``"raise"`` propagates the validation error.
        """
        if on_invalid not in ("raise", "skip"):
            raise ValueError("on_invalid must be 'raise' or 'skip'")
        if self.scenarios:
            expanded = list(self.scenarios)
        else:
            axes = [_axis_entries(axis, values)
                    for axis, values in self.grid.items()]
            zipped = self._zip_axis()
            if zipped is not None:
                axes.append(zipped)
            expanded = []
            if not axes:
                expanded.append(self.base.replace())
            else:
                for combo in itertools.product(*axes):
                    patch: Dict[str, Any] = {}
                    for _, axis_patch in combo:
                        patch.update(axis_patch)
                    patch.setdefault("name", "-".join(label for label, _ in combo))
                    expanded.append(self.base.replace(**patch))

        valid = []
        for scenario in expanded:
            try:
                valid.append(scenario.validate())
            except ValueError:
                if on_invalid == "raise":
                    raise
        ensure_unique_names(valid)
        return valid

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "grid": self.grid,
            "zip": self.zip_axes,
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CampaignSpec":
        known = {"name", "base", "grid", "zip", "scenarios"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown campaign fields: {sorted(unknown)}")
        return cls(
            name=payload.get("name", "campaign"),
            base=ScenarioSpec.from_dict(payload.get("base", {})),
            grid=dict(payload.get("grid", {})),
            zip_axes=dict(payload.get("zip", {})),
            scenarios=[ScenarioSpec.from_dict(entry)
                       for entry in payload.get("scenarios", [])],
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_json_file(cls, path) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
