"""Campaign scheduler daemon: the store as a long-running service.

``repro serve`` turns the batch pipeline into a resident process::

    repro serve --store results/ --port 8642 --processes 4

Clients submit :class:`~repro.campaign.spec.CampaignSpec` documents over
local HTTP/JSON (``sweep --submit URL`` is one such client) and poll for
progress; the daemon executes jobs one at a time through the exact same
:func:`~repro.campaign.engine.run_campaign` path the CLI uses — store
dedupe, seed batching, lane sharding, per-scenario failure isolation —
so a submitted campaign behaves bit-for-bit like a local ``sweep``.

Endpoints (mounted on the :class:`~repro.obs.httpd.MetricsServer`
listener, next to ``/metrics`` / ``/healthz`` / ``/status``):

* ``POST /campaigns`` — body is a campaign JSON document (optionally
  ``{"campaign": {...}, "options": {"on_invalid": "skip"}}``); replies
  ``202`` with the job record, including how many scenarios the store
  index already held (``cached_at_submit`` — the dedupe happens *before*
  any work is queued as executable).
* ``GET /campaigns`` — every job record, newest first.
* ``GET /campaigns/<id>`` — one job record.
* ``GET /results?gradient_rule=median&status=ran`` — summary rows from
  the store index (same filter grammar as :meth:`ResultStore.query`;
  values are parsed as JSON, falling back to the raw string).

The server binds ``127.0.0.1`` only: this is an operator-local daemon,
not an internet service — no auth, no TLS, by design.
"""

from __future__ import annotations

import itertools
import json
import queue
import threading
import time
import urllib.parse
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.engine import run_campaign
from repro.campaign.spec import CampaignSpec, ScenarioSpec
from repro.campaign.store import ResultStore
from repro.obs.telemetry import get_registry

__all__ = ["CampaignScheduler"]

Reply = Tuple[int, str, bytes]

_JSON = "application/json; charset=utf-8"


def _json_reply(code: int, document: Any) -> Reply:
    body = json.dumps(document, indent=2, sort_keys=True).encode("utf-8")
    return code, _JSON, body


class CampaignScheduler:
    """Accept campaigns, dedupe against the store index, run them.

    One worker thread drains the job queue so jobs execute strictly in
    submission order; within a job, ``processes``/``lanes`` decide the
    parallelism exactly as they do for ``repro sweep``.
    """

    #: queue poll interval — bounds how long stop() waits on an idle queue
    _POLL_SECONDS = 0.2

    def __init__(self, store: ResultStore, *,
                 processes: Optional[int] = None,
                 batch_seeds: bool = True,
                 lanes: Optional[int] = None) -> None:
        self.store = store
        self.processes = processes
        self.batch_seeds = batch_seeds
        self.lanes = lanes
        self._jobs: Dict[str, Dict[str, Any]] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[Tuple[str, List[ScenarioSpec]]]" = \
            queue.Queue()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._counter = itertools.count(1)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "CampaignScheduler":
        if self._thread is not None:
            raise RuntimeError("scheduler already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._work,
                                        name="repro-scheduler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Finish the running job (if any) and stop taking new ones."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "CampaignScheduler":
        return self.start()

    def __exit__(self, *exc_info: object) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------ #
    # Submission / inspection (the Python API behind the HTTP one)
    # ------------------------------------------------------------------ #
    def submit(self, campaign: CampaignSpec, *,
               on_invalid: str = "raise") -> Dict[str, Any]:
        """Expand, dedupe against the index, queue; returns the job record.

        Raises :class:`ValueError` for campaigns that do not expand (bad
        axes, inadmissible cells under ``on_invalid="raise"``) — nothing
        is queued for an invalid submission.
        """
        scenarios = campaign.expand(on_invalid=on_invalid)
        existing = set(self.store.keys())  # index-backed: no payload reads
        deduped = sum(1 for spec in scenarios
                      if spec.spec_hash() in existing)
        job_id = f"job-{next(self._counter):04d}"
        job = {
            "id": job_id,
            "name": campaign.name,
            "state": "queued",
            "total": len(scenarios),
            "cached_at_submit": deduped,
            "completed": 0,
            "counts": {},
            "failures": [],
            "error": None,
            "submitted_at": time.time(),
            "started_at": None,
            "finished_at": None,
        }
        with self._lock:
            self._jobs[job_id] = job
            self._order.append(job_id)
        registry = get_registry()
        if registry.enabled:
            registry.add_gauge("repro_scheduler_jobs_pending", 1)
            if deduped:
                registry.inc("repro_scheduler_scenarios_deduped_total",
                             value=deduped)
        self._queue.put((job_id, scenarios))
        return dict(job)

    def job(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            job = self._jobs.get(job_id)
            return dict(job) if job is not None else None

    def jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(self._jobs[job_id])
                    for job_id in reversed(self._order)]

    def status(self) -> Dict[str, Any]:
        """The daemon's ``/status`` document."""
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job["state"]] = states.get(job["state"], 0) + 1
        return {
            "kind": "repro.scheduler",
            "store": str(self.store.root),
            "store_entries": len(self.store),
            "jobs": states,
            "processes": self.processes,
            "batch_seeds": self.batch_seeds,
            "lanes": self.lanes,
        }

    # ------------------------------------------------------------------ #
    # Worker
    # ------------------------------------------------------------------ #
    def _work(self) -> None:
        while not self._stop.is_set():
            try:
                job_id, scenarios = self._queue.get(
                    timeout=self._POLL_SECONDS)
            except queue.Empty:
                continue
            self._run_job(job_id, scenarios)

    def _run_job(self, job_id: str, scenarios: List[ScenarioSpec]) -> None:
        with self._lock:
            job = self._jobs[job_id]
            job["state"] = "running"
            job["started_at"] = time.time()

        def progress(outcome, completed: int, total: int) -> None:
            with self._lock:
                job["completed"] = completed
                counts = job["counts"]
                counts[outcome.status] = counts.get(outcome.status, 0) + 1

        error: Optional[str] = None
        failures: List[Dict[str, Optional[str]]] = []
        try:
            result = run_campaign(scenarios, store=self.store,
                                  processes=self.processes,
                                  progress=progress,
                                  name=job["name"],
                                  batch_seeds=self.batch_seeds,
                                  lanes=self.lanes)
            failures = [{"scenario": outcome.spec.name,
                         "error": outcome.error}
                        for outcome in result.failures()]
        except Exception as exc:  # a job must never kill the daemon
            error = f"{type(exc).__name__}: {exc}"
        with self._lock:
            job["error"] = error
            job["failures"] = failures
            job["state"] = "failed" if (error or failures) else "done"
            job["finished_at"] = time.time()
            terminal = job["state"]
        registry = get_registry()
        if registry.enabled:
            registry.add_gauge("repro_scheduler_jobs_pending", -1)
            registry.inc("repro_scheduler_jobs_total", state=terminal)

    # ------------------------------------------------------------------ #
    # HTTP routing (plugged into MetricsServer(routes=...))
    # ------------------------------------------------------------------ #
    def handle_route(self, method: str, path: str, query: str,
                     body: bytes) -> Optional[Reply]:
        """Router for :class:`~repro.obs.httpd.MetricsServer`.

        Returns ``None`` for paths this daemon does not own, letting the
        built-in telemetry endpoints answer.
        """
        try:
            if path == "/campaigns" and method == "POST":
                return self._post_campaign(body)
            if path == "/campaigns" and method == "GET":
                return _json_reply(200, {"jobs": self.jobs()})
            if path.startswith("/campaigns/") and method == "GET":
                job = self.job(path[len("/campaigns/"):])
                if job is None:
                    return _json_reply(404, {"error": "no such job"})
                return _json_reply(200, job)
            if path == "/results" and method == "GET":
                return self._get_results(query)
        except Exception as exc:  # surface, don't crash the listener
            return _json_reply(500, {"error": f"{type(exc).__name__}: {exc}"})
        return None

    def _post_campaign(self, body: bytes) -> Reply:
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return _json_reply(400, {"error": f"invalid JSON body: {exc}"})
        if not isinstance(document, dict):
            return _json_reply(400, {"error": "body must be a JSON object"})
        options = {}
        if "campaign" in document:
            options = document.get("options") or {}
            document = document["campaign"]
        try:
            campaign = CampaignSpec.from_dict(document)
            job = self.submit(
                campaign, on_invalid=options.get("on_invalid", "raise"))
        except (ValueError, TypeError) as exc:
            return _json_reply(400, {"error": str(exc)})
        return _json_reply(202, job)

    def _get_results(self, query: str) -> Reply:
        filters: Dict[str, Any] = {}
        for name, raw in urllib.parse.parse_qsl(query,
                                                keep_blank_values=True):
            try:
                filters[name] = json.loads(raw)
            except json.JSONDecodeError:
                filters[name] = raw  # bare strings stay strings
        try:
            results = self.store.query(**filters)
        except KeyError as exc:
            return _json_reply(400, {"error": exc.args[0]})
        return _json_reply(200, {
            "count": len(results),
            "rows": self.store.summary_rows(results),
        })
