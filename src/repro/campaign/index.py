"""Append-only sidecar index for the content-addressed result store.

The store's database problem: ``query()`` / ``summary_rows()`` used to
open and JSON-parse *every* entry payload on every call, which is fine
for a dozen results and hopeless for a million.  This module gives each
shard directory a compact sidecar::

    <root>/
      ab/
        ab3f...e1.json     # entry payload (spec + history + meta)
        index.jsonl        # one row per index operation, latest wins

Each ``put`` row carries the flattened scenario spec, the entry's meta
block and a tiny summary (final accuracy, simulated time) — everything
a query or a summary table needs — so reads never touch the payloads.

Durability model (deliberately boring):

* Rows are appended with a single ``O_APPEND`` write.  On local
  filesystems small appends land atomically, so concurrent writers
  sharing a store interleave whole lines, not bytes.
* The index is a *cache*, never the source of truth.  The entry files
  are.  A reader checks freshness by comparing the folded key set
  against the shard's ``*.json`` stems (a directory listing — no
  payload opens) and rebuilds the shard index from payloads when they
  disagree.  Torn lines, lost appends from a writer racing a rebuild,
  and writers killed between entry write and index append all resolve
  to a detectable mismatch followed by a clean rebuild.
* Rebuilds write a fresh ``index.jsonl`` through a temp file +
  ``os.replace``, the same discipline the entry writers use.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.telemetry import get_registry

__all__ = ["StoreIndex", "INDEX_FILENAME", "INDEX_VERSION"]

INDEX_VERSION = 1
INDEX_FILENAME = "index.jsonl"


class StoreIndex:
    """Per-shard ``index.jsonl`` maintenance and folded views.

    A row is one JSON object per line::

        {"v": 1, "op": "put", "key": "...", "spec": {...},
         "meta": {...}, "summary": {...}}
        {"v": 1, "op": "del", "key": "..."}

    Folding replays rows in order (latest wins; ``del`` removes), which
    makes the file safe to append to from many processes at once.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        #: payload files opened by rebuilds (observability for tests)
        self.payload_reads = 0
        # (mtime_ns, size) → folded rows, per shard: skips re-parsing an
        # unchanged index file on repeated queries from one process.
        self._cache: Dict[str, Tuple[Tuple[int, int], Dict[str, dict]]] = {}

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def index_path(self, prefix: str) -> Path:
        return self.root / prefix / INDEX_FILENAME

    def shard_prefixes(self) -> List[str]:
        """Shard directories that exist on disk (``ab/``-style)."""
        return sorted(p.name for p in self.root.glob("??") if p.is_dir())

    # ------------------------------------------------------------------ #
    # Writes (called by ResultStore.put/delete)
    # ------------------------------------------------------------------ #
    def append_put(self, key: str, spec_dict: dict, meta: dict,
                   summary: dict) -> None:
        self._append(key[:2], {
            "v": INDEX_VERSION, "op": "put", "key": key,
            "spec": spec_dict, "meta": meta, "summary": summary,
        })

    def append_delete(self, key: str) -> None:
        self._append(key[:2], {"v": INDEX_VERSION, "op": "del", "key": key})

    def _append(self, prefix: str, row: dict) -> None:
        path = self.index_path(prefix)
        path.parent.mkdir(parents=True, exist_ok=True)
        line = (json.dumps(row, sort_keys=True) + "\n").encode("utf-8")
        descriptor = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                             0o644)
        try:
            os.write(descriptor, line)
        finally:
            os.close(descriptor)
        self._cache.pop(prefix, None)

    # ------------------------------------------------------------------ #
    # Raw reads (fsck wants the file as-is, no rebuild side effects)
    # ------------------------------------------------------------------ #
    def read_raw(self, prefix: str) -> Tuple[List[dict], List[str]]:
        """All parseable rows of one shard index plus corrupt-line notes."""
        path = self.index_path(prefix)
        rows: List[dict] = []
        errors: List[str] = []
        if not path.is_file():
            return rows, errors
        with open(path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    errors.append(f"{path}:{number}: unparseable index line")
                    continue
                if not isinstance(row, dict) or "key" not in row:
                    errors.append(f"{path}:{number}: malformed index row")
                    continue
                rows.append(row)
        return rows, errors

    def fold_raw(self, prefix: str) -> Dict[str, dict]:
        """Folded view of the shard index *without* freshness checking."""
        rows, _ = self.read_raw(prefix)
        return self.fold(rows)

    @staticmethod
    def fold(rows: List[dict]) -> Dict[str, dict]:
        folded: Dict[str, dict] = {}
        for row in rows:
            if row.get("op") == "del":
                folded.pop(row["key"], None)
            else:
                folded[row["key"]] = row
        return folded

    # ------------------------------------------------------------------ #
    # Fresh reads (the query path)
    # ------------------------------------------------------------------ #
    def entries(self, prefix: str) -> Dict[str, dict]:
        """Folded rows for one shard, rebuilt if missing or stale.

        Freshness is the invariant ``folded keys == shard *.json stems``,
        checked with a directory listing only.  Any divergence — torn
        line, missed append, foreign writer — triggers a rebuild from the
        payloads, so the answer is always consistent with the files.
        """
        shard = self.root / prefix
        stems = {p.stem for p in shard.glob("*.json")}
        folded = self._cached_fold(prefix)
        if set(folded) == stems:
            return folded
        return self.rebuild(prefix)

    def iter_entries(self) -> Iterator[dict]:
        """Fresh folded rows across every shard (sorted by key)."""
        for prefix in self.shard_prefixes():
            entries = self.entries(prefix)
            for key in sorted(entries):
                yield entries[key]

    def _cached_fold(self, prefix: str) -> Dict[str, dict]:
        path = self.index_path(prefix)
        try:
            stat = path.stat()
            signature: Optional[Tuple[int, int]] = (stat.st_mtime_ns,
                                                    stat.st_size)
        except OSError:
            signature = None
        cached = self._cache.get(prefix)
        if (cached is not None and signature is not None
                and cached[0] == signature):
            return cached[1]
        folded = self.fold_raw(prefix)
        if signature is not None:
            self._cache[prefix] = (signature, folded)
        return folded

    # ------------------------------------------------------------------ #
    # Rebuild / compaction
    # ------------------------------------------------------------------ #
    def rebuild(self, prefix: str) -> Dict[str, dict]:
        """Regenerate one shard index from its entry payloads.

        Unreadable payloads are skipped (``repro store fsck`` reports
        them); the rebuilt file is promoted atomically so concurrent
        readers only ever see a complete index.
        """
        shard = self.root / prefix
        folded: Dict[str, dict] = {}
        for path in sorted(shard.glob("*.json")):
            row = self._row_from_payload(path)
            if row is not None:
                folded[row["key"]] = row
        shard.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            prefix=f".{INDEX_FILENAME}.", suffix=".tmp", dir=shard)
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            for key in sorted(folded):
                handle.write(json.dumps(folded[key], sort_keys=True) + "\n")
        os.replace(temp_name, self.index_path(prefix))
        self._cache.pop(prefix, None)
        registry = get_registry()
        if registry.enabled:
            registry.inc("repro_store_index_rebuilds_total")
        return folded

    def compact(self, prefix: str) -> Dict[str, dict]:
        """Rewrite one shard index as one fresh row per live entry."""
        return self.rebuild(prefix)

    def _row_from_payload(self, path: Path) -> Optional[dict]:
        self.payload_reads += 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            spec = payload["spec"]
            meta = payload.get("meta", {})
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            return None
        return {
            "v": INDEX_VERSION, "op": "put", "key": path.stem,
            "spec": spec, "meta": meta,
            "summary": summary_from_history(payload.get("history")),
        }


def summary_from_history(history_dict: Optional[dict]) -> dict:
    """The tiny per-entry summary an index row carries.

    Computed from the serialised history so rebuilds (which hold the raw
    payload dict) and ``put()`` (which holds a live ``TrainingHistory``)
    produce identical rows.
    """
    final_accuracy = None
    sim_time = 0.0
    if isinstance(history_dict, dict):
        records = history_dict.get("records") or []
        for record in reversed(records):
            accuracy = record.get("test_accuracy")
            if accuracy is not None:
                final_accuracy = accuracy
                break
        if records:
            sim_time = records[-1].get("simulated_time", 0.0)
    if isinstance(final_accuracy, float) and math.isnan(final_accuracy):
        final_accuracy = None  # NaN is not portable JSON
    return {"final_accuracy": final_accuracy, "sim_time_s": sim_time}
