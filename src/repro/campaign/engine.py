"""Campaign execution engine.

Turns expanded :class:`~repro.campaign.spec.ScenarioSpec` lists into
:class:`~repro.metrics.tracker.TrainingHistory` results:

* scenarios already present in the optional :class:`ResultStore` are served
  from cache (this is what makes interrupted campaigns resumable — re-run
  the same campaign and only the missing cells execute);
* missing scenarios run through the existing simulated / threaded trainers,
  serially or on a ``multiprocessing`` pool, each with the deterministic
  seed carried by its spec;
* a failing scenario never takes the campaign down: its traceback is
  captured into a ``failed`` outcome and the remaining scenarios proceed.

NOTE: :mod:`repro.experiments` imports are deliberately *lazy* — the legacy
experiment harnesses are themselves campaign definitions, so module-level
imports would be circular (see :mod:`repro.campaign.spec`).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.aggregation import get_rule
from repro.batch import run_batched_scenarios, spec_supports_batching
from repro.campaign.spec import CampaignSpec, ScenarioSpec, ensure_unique_names
from repro.campaign.store import ResultStore
from repro.core.trainer import (
    GuanYuTrainer,
    SingleServerKrumTrainer,
    VanillaTrainer,
)
from repro.obs.history import TrainingHistory
from repro.kernels import use_backend
from repro.obs.telemetry import MetricsRegistry, get_registry, use_registry
from repro.obs.tracer import Tracer, get_tracer, use_tracer
from repro.runtime.facade import _warn_deprecated
from repro.runtime.facade import run as run_scenario
from repro.runtime.threads import ThreadedClusterRuntime

#: callback signature: ``progress(outcome, completed_count, total_count)``
ProgressCallback = Callable[["ScenarioOutcome", int, int], None]


# --------------------------------------------------------------------------- #
# Outcomes
# --------------------------------------------------------------------------- #
@dataclass
class ScenarioOutcome:
    """What happened to one scenario of a campaign."""

    spec: ScenarioSpec
    status: str  # "ran" | "cached" | "failed"
    history: Optional[TrainingHistory] = None
    error: Optional[str] = None
    #: full traceback of a failed scenario (``error`` is the one-line form)
    traceback: Optional[str] = None
    duration_seconds: float = 0.0
    store_key: Optional[str] = None
    #: whether the scenario executed on the batched multi-replica runtime
    batched: bool = False


@dataclass
class CampaignResult:
    """Ordered outcomes of one campaign execution."""

    name: str
    outcomes: List[ScenarioOutcome] = field(default_factory=list)

    def histories(self) -> Dict[str, TrainingHistory]:
        """Scenario name → history for every non-failed scenario."""
        return {outcome.spec.name: outcome.history for outcome in self.outcomes
                if outcome.history is not None}

    def counts(self) -> Dict[str, int]:
        counts = {"ran": 0, "cached": 0, "failed": 0}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    def failures(self) -> List[ScenarioOutcome]:
        return [outcome for outcome in self.outcomes
                if outcome.status == "failed"]

    def raise_on_failure(self) -> "CampaignResult":
        failures = self.failures()
        if failures:
            details = "; ".join(f"{outcome.spec.name}: {outcome.error}"
                                for outcome in failures)
            raise RuntimeError(
                f"campaign '{self.name}' had {len(failures)} failed "
                f"scenario(s): {details}")
        return self


# --------------------------------------------------------------------------- #
# Single-scenario execution
# --------------------------------------------------------------------------- #
def build_trainer(spec: ScenarioSpec):
    """Construct the trainer/runtime a scenario describes (not yet run)."""
    from repro.experiments.common import (  # lazy: avoids an import cycle
        build_scale_bundle,
    )

    train, test, model_fn, schedule = build_scale_bundle(spec.to_scale())
    worker_attack = spec.worker_attack.build() if spec.worker_attack else None
    server_attack = spec.server_attack.build() if spec.server_attack else None
    adversary = spec.adversary.build() if spec.adversary else None

    if spec.trainer == "guanyu":
        return GuanYuTrainer(
            config=spec.cluster_config(), model_fn=model_fn,
            train_dataset=train, test_dataset=test,
            worker_attack=worker_attack,
            num_attacking_workers=spec.resolved_num_attacking_workers(),
            server_attack=server_attack,
            num_attacking_servers=spec.resolved_num_attacking_servers(),
            adversary=adversary,
            gradient_rule_name=spec.gradient_rule,
            model_rule_name=spec.model_rule,
            batch_size=spec.batch_size, schedule=schedule,
            delay_model=spec.build_delay_model(),
            cost_model=spec.build_cost_model(),
            sharding=spec.sharding, seed=spec.seed,
            cost_num_parameters=spec.billed_parameters,
            fault_schedule=spec.faults, hetero=spec.hetero, label=spec.name)
    if spec.trainer == "vanilla":
        return VanillaTrainer(
            model_fn=model_fn, train_dataset=train, test_dataset=test,
            num_workers=spec.num_workers,
            worker_attack=worker_attack,
            num_attacking_workers=spec.resolved_num_attacking_workers(),
            external_communication=spec.external_communication,
            gradient_rule=get_rule(spec.gradient_rule,
                                   num_byzantine=spec.declared_byzantine_workers),
            batch_size=spec.batch_size, schedule=schedule,
            delay_model=spec.build_delay_model(),
            cost_model=spec.build_cost_model(),
            sharding=spec.sharding, seed=spec.seed,
            cost_num_parameters=spec.billed_parameters,
            hetero=spec.hetero, label=spec.name)
    if spec.trainer == "single_server_krum":
        return SingleServerKrumTrainer(
            model_fn=model_fn, train_dataset=train, test_dataset=test,
            num_byzantine_workers=spec.declared_byzantine_workers,
            num_workers=spec.num_workers,
            worker_attack=worker_attack,
            num_attacking_workers=spec.resolved_num_attacking_workers(),
            batch_size=spec.batch_size, schedule=schedule,
            delay_model=spec.build_delay_model(),
            cost_model=spec.build_cost_model(),
            sharding=spec.sharding, seed=spec.seed,
            cost_num_parameters=spec.billed_parameters,
            hetero=spec.hetero, label=spec.name)
    if spec.trainer == "guanyu_threaded":
        if spec.runtime == "cluster":
            from repro.runtime.cluster.supervisor import (  # lazy: sockets
                ClusterRuntime,
                cluster_available,
            )

            if cluster_available():
                return ClusterRuntime(spec)
            # Sockets unusable on this host (sandboxes forbid binding):
            # fall back to the threaded runtime, whose loss trajectories
            # the tier-1 cluster equivalence gate pins to the cluster's.
        return ThreadedClusterRuntime(
            config=spec.cluster_config(), model_fn=model_fn,
            train_dataset=train, batch_size=spec.batch_size, schedule=schedule,
            worker_attack=worker_attack,
            num_attacking_workers=spec.resolved_num_attacking_workers(),
            server_attack=server_attack,
            num_attacking_servers=spec.resolved_num_attacking_servers(),
            adversary=adversary,
            gradient_rule_name=spec.gradient_rule,
            model_rule_name=spec.model_rule,
            jitter=spec.jitter, quorum_timeout=spec.quorum_timeout,
            fault_schedule=spec.faults, sharding=spec.sharding,
            hetero=spec.hetero, seed=spec.seed)
    raise ValueError(f"unknown trainer '{spec.trainer}'")


def _execute_validated(spec: ScenarioSpec) -> TrainingHistory:
    """Build and run one already-validated scenario.

    This is the sequential/threaded/cluster execution body behind
    :func:`repro.runtime.run` (which owns validation, runtime resolution
    and kernel-backend selection).  The batched runtime never reaches
    here — the facade dispatches it to :mod:`repro.batch` directly.
    """
    from repro.runtime.cluster.supervisor import ClusterRuntime  # lazy

    trainer = build_trainer(spec)
    if isinstance(trainer, (ThreadedClusterRuntime, ClusterRuntime)):
        history = trainer.run(spec.num_steps)
        history.label = spec.name
        return history
    return trainer.run(spec.num_steps, eval_every=spec.eval_every,
                       max_eval_samples=spec.max_eval_samples)


def execute_scenario(spec: ScenarioSpec) -> TrainingHistory:
    """Deprecated: call :func:`repro.runtime.run` instead.

    Kept as a shim for older scripts; identical behaviour (validate, build,
    run, return the history) but without the facade's richer
    :class:`~repro.runtime.facade.ScenarioResult` and store integration.
    """
    _warn_deprecated("repro.campaign.engine.execute_scenario",
                     "repro.runtime.run")
    return run_scenario(spec).history


def _run_payload(payload: Dict) -> Dict:
    """Pool-friendly wrapper: dict spec in, dict outcome out, never raises.

    Every scenario executes under a scenario-local :class:`Tracer` whose
    compact :meth:`~Tracer.summary` travels back in the outcome dict (it
    must cross a pool boundary, so raw events stay local).  When an outer
    tracer is active — serial in-process execution under ``repro --trace``
    — the raw events are forwarded to it as well.
    """
    started = time.perf_counter()
    outer = get_tracer()
    local = Tracer(capacity=50_000,
                   record_decisions=getattr(outer, "record_decisions", False))
    # Like the trace, metrics recorded inside a pool worker cannot reach
    # the parent's registry directly — a scenario-local registry rides back
    # in the payload and the parent merges it (see ``finish_payload``).
    metrics = MetricsRegistry()
    try:
        with use_tracer(local), use_registry(metrics):
            history = run_scenario(ScenarioSpec.from_dict(payload)).history
        _forward_trace(outer, local)
        return {"status": "ran", "history": history.to_dict(), "error": None,
                "traceback": None,
                "duration": time.perf_counter() - started,
                "trace_summary": local.summary(),
                "metrics_snapshot": metrics.snapshot()}
    except Exception as exc:  # noqa: BLE001 - per-scenario failure isolation
        _forward_trace(outer, local)
        return {"status": "failed", "history": None,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
                "duration": time.perf_counter() - started,
                "trace_summary": local.summary(),
                "metrics_snapshot": metrics.snapshot()}


def _forward_trace(outer, local: Tracer) -> None:
    """Copy a scenario-local trace into the outer tracer, if one is active."""
    if not outer.enabled:
        return
    outer.extend(local.events())
    for counter_name, value in local.counters().items():
        outer.count(counter_name, value)


def _run_batched_payloads(payloads: List[Dict],
                          lanes: Optional[int] = None) -> List[Dict]:
    """Run a seed-replica group on the batched runtime; one dict per spec.

    ``lanes > 1`` shards the group's replica lanes over a process pool
    (:func:`repro.batch.run_batched_scenarios`); the merged histories stay
    bit-identical, but per-step traces produced inside chunk workers do
    not cross the pool boundary.  Any problem — an unsupported scenario
    slipping through, a replica starving a quorum under message loss, a
    genuine training error — makes the whole group fall back to isolated
    sequential execution, which yields the canonical per-scenario outcome
    (the batched runtime is bit-identical where it runs at all, so the
    fallback only costs time).
    """
    started = time.perf_counter()
    outer = get_tracer()
    local = Tracer(capacity=50_000)
    metrics = MetricsRegistry()
    try:
        specs = [ScenarioSpec.from_dict(payload) for payload in payloads]
        with use_tracer(local), use_registry(metrics), \
                use_backend(specs[0].kernels if specs else None):
            histories = run_batched_scenarios(specs, lanes=lanes)
    except Exception:  # noqa: BLE001 - fall back to per-scenario isolation
        return [_run_payload(payload) for payload in payloads]
    _forward_trace(outer, local)
    duration = (time.perf_counter() - started) / max(len(payloads), 1)
    # The group ran as one vectorised execution: every member carries the
    # same (shared) trace summary; the metrics snapshot rides on the first
    # member only, so the parent merges the group exactly once.
    summary = local.summary()
    snapshot = metrics.snapshot()
    return [{"status": "ran", "history": history.to_dict(), "error": None,
             "traceback": None, "duration": duration, "batched": True,
             "trace_summary": summary,
             "metrics_snapshot": snapshot if index == 0 else None}
            for index, history in enumerate(histories)]


def _run_indexed_task(item: tuple) -> tuple:
    """Pool wrapper: ``(index, kind, payloads)`` → ``(index, outcome list)``."""
    index, kind, payloads = item
    if kind == "batch":
        return index, _run_batched_payloads(payloads)
    return index, [_run_payload(payloads[0])]


# --------------------------------------------------------------------------- #
# Campaign execution
# --------------------------------------------------------------------------- #
def run_campaign(campaign: Union[CampaignSpec, Iterable[ScenarioSpec]],
                 store: Optional[ResultStore] = None,
                 processes: Optional[int] = None,
                 progress: Optional[ProgressCallback] = None,
                 on_invalid: str = "raise",
                 name: Optional[str] = None,
                 batch_seeds: bool = False,
                 lanes: Optional[int] = None) -> CampaignResult:
    """Execute a campaign (or a plain scenario list).

    Parameters
    ----------
    campaign:
        A :class:`CampaignSpec` (expanded here) or an iterable of
        already-expanded :class:`ScenarioSpec`.
    store:
        Optional :class:`ResultStore`.  Scenarios whose spec hash is already
        present are returned as ``cached`` without re-training; freshly run
        scenarios are persisted, so re-running an interrupted campaign
        resumes where it stopped.
    processes:
        ``None``/``0``/``1`` runs scenarios serially in-process; ``> 1``
        fans the pending scenarios out over a ``multiprocessing`` pool of
        (at most) that many workers.
    progress:
        Optional callback invoked once per completed scenario with
        ``(outcome, completed_count, total_count)``.
    on_invalid:
        Forwarded to :meth:`CampaignSpec.expand` (``"raise"`` or ``"skip"``).
    name:
        Result name for plain scenario lists (a :class:`CampaignSpec` brings
        its own).
    batch_seeds:
        Detect **seed-only axes**: pending scenarios that are identical
        except for their seed (equal :meth:`ScenarioSpec.batch_group_hash`)
        and within the batched runtime's envelope run as *one* vectorised
        multi-replica execution (:mod:`repro.batch`) instead of N separate
        simulations.  Results are bit-identical per seed and are stored
        under each scenario's unchanged content address, so existing stores
        stay valid; groups the batched runtime cannot execute fall back to
        sequential runs automatically.
    lanes:
        ``> 1`` shards each batched seed group's replica lanes over a
        process pool of that many workers
        (:func:`repro.batch.run_batched_scenarios`).  Because a pool
        worker cannot fork workers of its own, lane-sharded groups execute
        in the main process — under ``processes > 1`` the lone scenarios
        go to the scenario pool while the batch groups run (lane-parallel)
        in the foreground.
    """
    if isinstance(campaign, CampaignSpec):
        name = campaign.name
        scenarios = campaign.expand(on_invalid=on_invalid)
    else:
        name = name if name is not None else "campaign"
        scenarios = [scenario.validate() for scenario in campaign]
        ensure_unique_names(scenarios)

    total = len(scenarios)
    completed = 0
    outcomes: Dict[str, ScenarioOutcome] = {}
    tracer = get_tracer()
    registry = get_registry()
    campaign_started = time.perf_counter()
    if registry.enabled:
        registry.set_gauge("repro_campaign_scenarios_pending", total)
        registry.set_gauge("repro_campaign_scenarios_running", 0)

    def finish(outcome: ScenarioOutcome) -> None:
        nonlocal completed
        outcomes[outcome.spec.name] = outcome
        completed += 1
        if registry.enabled:
            registry.inc("repro_campaign_scenarios_total",
                         status=outcome.status)
            registry.set_gauge("repro_campaign_scenarios_pending",
                               total - completed)
        if progress is not None:
            progress(outcome, completed, total)

    # Scenarios are deduplicated by content address: cells that differ only
    # in name train once and the others are served as cache hits.
    pending_specs: Dict[str, List[ScenarioSpec]] = {}
    for spec in scenarios:
        key = spec.spec_hash()
        if store is not None and store.contains(key):
            stored = store.get(key)
            # The hash excludes the name, so the cache may have been filled
            # under a different label — relabel for this campaign's view.
            stored.history.label = spec.name
            tracer.count("campaign.cache_hit")
            registry.inc("repro_campaign_cache_total", result="hit")
            finish(ScenarioOutcome(spec=spec, status="cached",
                                   history=stored.history, store_key=key,
                                   duration_seconds=0.0))
        else:
            tracer.count("campaign.cache_miss")
            registry.inc("repro_campaign_cache_total", result="miss")
            pending_specs.setdefault(key, []).append(spec)
    pending = [(specs[0], key) for key, specs in pending_specs.items()]

    def finish_payload(spec: ScenarioSpec, key: str, payload: Dict,
                       pooled: bool = False) -> None:
        history = (TrainingHistory.from_dict(payload["history"])
                   if payload["history"] is not None else None)
        outcome = ScenarioOutcome(spec=spec, status=payload["status"],
                                  history=history, error=payload["error"],
                                  traceback=payload.get("traceback"),
                                  duration_seconds=payload["duration"],
                                  batched=payload.get("batched", False))
        if registry.enabled:
            elapsed = time.perf_counter() - campaign_started
            registry.observe("repro_campaign_scenario_seconds",
                             outcome.duration_seconds,
                             batched="true" if outcome.batched else "false")
            registry.observe("repro_campaign_queue_wait_seconds",
                             max(elapsed - outcome.duration_seconds, 0.0))
            snapshot = payload.get("metrics_snapshot")
            if snapshot:
                registry.merge(snapshot)
        if tracer.enabled:
            # Queue wait ≈ time since dispatch not spent executing: exact
            # for serial runs, an upper bound under a busy pool.
            elapsed = time.perf_counter() - campaign_started
            attrs = {"scenario": spec.name, "status": outcome.status,
                     "batched": outcome.batched,
                     "duration_s": outcome.duration_seconds,
                     "queue_wait_s": max(
                         elapsed - outcome.duration_seconds, 0.0)}
            if pooled:
                # The raw per-step spans never cross the pool boundary, so
                # the scenario's compact trace summary rides along in the
                # event — it is what lets `repro report` still produce a
                # phase breakdown.  Serial runs forward the raw events
                # instead (embedding the summary too would double-count).
                attrs["trace_summary"] = payload.get("trace_summary")
            tracer.event("campaign.scenario", **attrs)
            tracer.count("campaign.scenario_seconds",
                         outcome.duration_seconds)
        if store is not None and outcome.status == "ran":
            trace_summary = payload.get("trace_summary")
            outcome.store_key = store.put(
                spec, history, duration_seconds=outcome.duration_seconds,
                extra_meta=({"trace_summary": trace_summary}
                            if trace_summary else None))
        finish(outcome)
        for twin in pending_specs[key][1:]:
            twin_history = None
            if payload["history"] is not None:
                twin_history = TrainingHistory.from_dict(payload["history"])
                twin_history.label = twin.name
            status = "cached" if payload["status"] == "ran" else payload["status"]
            finish(ScenarioOutcome(spec=twin, status=status,
                                   history=twin_history,
                                   error=payload["error"],
                                   traceback=payload.get("traceback"),
                                   store_key=outcome.store_key))

    # One task = one unit of pool work: a lone scenario, or a seed-replica
    # group destined for the batched runtime.
    tasks: List[Tuple[str, List[Tuple[ScenarioSpec, str]]]] = []
    if batch_seeds:
        seed_groups: Dict[str, List[Tuple[ScenarioSpec, str]]] = {}
        singles: List[Tuple[ScenarioSpec, str]] = []
        for spec, key in pending:
            if spec_supports_batching(spec):
                seed_groups.setdefault(spec.batch_group_hash(),
                                       []).append((spec, key))
            else:
                singles.append((spec, key))
        for bucket in seed_groups.values():
            if len(bucket) >= 2:
                tasks.append(("batch", bucket))
            else:
                singles.extend(bucket)
        tasks.extend(("single", [item]) for item in singles)
    else:
        tasks = [("single", [item]) for item in pending]

    # Lane sharding forks chunk workers, which a daemonic scenario-pool
    # worker cannot do — so lane-sharded batch groups stay in the main
    # process and only the remaining tasks are eligible for the pool.
    lane_sharding = bool(lanes and lanes > 1)
    pool_tasks = list(enumerate(tasks))
    foreground: List[Tuple[int, str, List[Tuple[ScenarioSpec, str]]]] = []
    if lane_sharding:
        pool_tasks = [(index, task) for index, task in enumerate(tasks)
                      if task[0] != "batch"]
        foreground = [(index, kind, bucket)
                      for index, (kind, bucket) in enumerate(tasks)
                      if kind == "batch"]

    def set_running(count: int) -> None:
        if registry.enabled:
            registry.set_gauge("repro_campaign_scenarios_running", count)

    if processes and processes > 1 and len(pool_tasks) > 1:
        pool_size = min(processes, len(pool_tasks))
        items = [(index, kind, [spec.to_dict() for spec, _ in bucket])
                 for index, (kind, bucket) in pool_tasks]
        # Under a pool the in-flight count is approximate: the pool is
        # saturated until fewer tasks remain than workers.
        set_running(min(pool_size, len(pool_tasks)))
        with multiprocessing.get_context().Pool(pool_size) as pool:
            # Unordered: each result is persisted/reported the moment it
            # completes, so an interruption loses at most the in-flight
            # scenarios — not everything queued behind a slow one.
            results = pool.imap_unordered(_run_indexed_task, items)
            # Batch groups run lane-parallel in the foreground while the
            # pool chews through the singles.
            for index, kind, bucket in foreground:
                payloads = _run_batched_payloads(
                    [spec.to_dict() for spec, _ in bucket], lanes=lanes)
                for (spec, key), payload in zip(bucket, payloads):
                    finish_payload(spec, key, payload)
            done_tasks = 0
            for index, payloads in results:
                done_tasks += 1
                set_running(min(pool_size, len(pool_tasks) - done_tasks))
                for (spec, key), payload in zip(tasks[index][1], payloads):
                    finish_payload(spec, key, payload, pooled=True)
    else:
        for kind, bucket in tasks:
            set_running(len(bucket))
            if kind == "batch":
                payloads = _run_batched_payloads(
                    [spec.to_dict() for spec, _ in bucket],
                    lanes=lanes if lane_sharding else None)
            else:
                payloads = [_run_payload(bucket[0][0].to_dict())]
            set_running(0)
            for (spec, key), payload in zip(bucket, payloads):
                finish_payload(spec, key, payload)
    set_running(0)

    return CampaignResult(name=name,
                          outcomes=[outcomes[spec.name] for spec in scenarios])
