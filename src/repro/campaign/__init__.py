"""Scenario campaign engine: declarative sweeps over the paper's grid.

The paper's claims are inherently *grids* — GAR × attack × cluster size ×
delay model × seed — and this package turns each cell of such a grid into a
declarative, hashable :class:`ScenarioSpec`:

* :mod:`repro.campaign.spec` — :class:`ScenarioSpec` (one run) and
  :class:`CampaignSpec` (grid/zip expansion of many runs) with JSON
  round-trip and admissibility validation;
* :mod:`repro.campaign.engine` — executes expanded scenarios through the
  existing simulated and threaded trainers, optionally in parallel via a
  ``multiprocessing`` pool, with per-scenario failure isolation;
* :mod:`repro.campaign.store` — a content-addressed on-disk
  :class:`ResultStore` (spec hash → serialised history + metadata) giving
  caching, resume of interrupted campaigns and cross-campaign queries,
  answered from the :mod:`repro.campaign.index` sidecar index with
  :meth:`~ResultStore.fsck` / :meth:`~ResultStore.gc` hygiene;
* :mod:`repro.campaign.scheduler` — the ``repro serve`` daemon accepting
  campaign JSON over local HTTP, deduping against the store index and
  executing through the engine.

The legacy experiment harnesses (``run_attack_sweep``, ``run_gar_ablation``,
``run_figure4``, ...) are thin campaign definitions executed by this engine;
``python -m repro.cli sweep`` exposes it from the command line.
"""

from repro.campaign.spec import (
    AdversarySpec,
    AttackSpec,
    CampaignSpec,
    ScenarioSpec,
    available_cost_models,
    available_delay_models,
    available_trainers,
)
from repro.campaign.engine import (
    CampaignResult,
    ScenarioOutcome,
    build_trainer,
    execute_scenario,
    run_campaign,
)
from repro.campaign.index import StoreIndex
from repro.campaign.scheduler import CampaignScheduler
from repro.campaign.store import (
    FsckIssue,
    FsckReport,
    ResultStore,
    StoredResult,
)

__all__ = [
    "AdversarySpec",
    "AttackSpec",
    "ScenarioSpec",
    "CampaignSpec",
    "available_trainers",
    "available_delay_models",
    "available_cost_models",
    "ScenarioOutcome",
    "CampaignResult",
    "build_trainer",
    "execute_scenario",
    "run_campaign",
    "ResultStore",
    "StoredResult",
    "StoreIndex",
    "CampaignScheduler",
    "FsckIssue",
    "FsckReport",
]
