"""Checkpointing of distributed training state.

A checkpoint stores, for every correct parameter server, its flat parameter
vector, plus the step counter and the experiment configuration.  It lets an
operator stop a long run and resume it, or hand a converged model to the
evaluation tooling without re-running the protocol.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

PathLike = Union[str, Path]

_MANIFEST_NAME = "manifest.json"
_ARRAYS_NAME = "parameters.npz"


def save_checkpoint(directory: PathLike, server_parameters: Dict[str, np.ndarray],
                    step: int, config: Optional[Dict] = None) -> Path:
    """Write a checkpoint to ``directory`` (created if missing).

    Parameters
    ----------
    directory:
        Target directory; two files are written, a JSON manifest and an
        ``.npz`` archive with one array per server.
    server_parameters:
        Mapping from server id (e.g. ``"ps/0"``) to its flat parameter vector.
    step:
        The step count at which the checkpoint was taken.
    config:
        Optional experiment configuration to embed in the manifest.
    """
    if not server_parameters:
        raise ValueError("cannot checkpoint an empty set of server parameters")
    if step < 0:
        raise ValueError("step must be non-negative")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    # npz keys cannot contain '/', so index arrays positionally and keep the
    # id ↔ index mapping in the manifest.
    ordered_ids = sorted(server_parameters)
    arrays = {f"server_{index}": np.asarray(server_parameters[server_id],
                                            dtype=np.float64)
              for index, server_id in enumerate(ordered_ids)}
    np.savez_compressed(directory / _ARRAYS_NAME, **arrays)

    manifest = {
        "step": int(step),
        "server_ids": ordered_ids,
        "num_parameters": int(arrays["server_0"].size),
        "config": config or {},
    }
    with open(directory / _MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return directory


def load_checkpoint(directory: PathLike):
    """Load a checkpoint written by :func:`save_checkpoint`.

    Returns
    -------
    (server_parameters, step, config):
        The same mapping/step/config that were saved.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST_NAME
    arrays_path = directory / _ARRAYS_NAME
    if not manifest_path.exists() or not arrays_path.exists():
        raise FileNotFoundError(f"no checkpoint found in {directory}")

    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    archive = np.load(arrays_path)
    server_parameters = {
        server_id: archive[f"server_{index}"]
        for index, server_id in enumerate(manifest["server_ids"])
    }
    return server_parameters, int(manifest["step"]), manifest.get("config", {})


def checkpoint_trainer(trainer, directory: PathLike) -> Path:
    """Checkpoint a :class:`~repro.core.trainer.GuanYuTrainer`'s correct servers."""
    parameters = {server.node_id: server.current_parameters()
                  for server in trainer.correct_servers}
    step = trainer.history.total_steps()
    return save_checkpoint(directory, parameters, step,
                           config=dict(trainer.history.config))


def restore_trainer(trainer, directory: PathLike) -> int:
    """Restore server parameters saved by :func:`checkpoint_trainer`.

    Only servers present in both the checkpoint and the trainer are restored;
    returns the checkpointed step count so the caller can resume counting.
    """
    parameters, step, _ = load_checkpoint(directory)
    restored = 0
    for server in trainer.correct_servers:
        if server.node_id in parameters:
            server.model.set_flat_parameters(parameters[server.node_id])
            restored += 1
    if restored == 0:
        raise ValueError("checkpoint does not match any server in the trainer")
    return step
