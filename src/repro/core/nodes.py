"""Per-node state machines: workers and parameter servers.

Nodes are deliberately free of any networking code: they expose pure
"receive vectors → produce vector" methods, and the trainers / runtimes are
responsible for moving those vectors across the (simulated or threaded)
network.  This is the same separation the original implementation uses
between the TensorFlow graph (local computation) and the gRPC plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.aggregation.base import GradientAggregationRule
from repro.aggregation.krum import pairwise_squared_distances
from repro.byzantine.base import AttackContext, ServerAttack, WorkerAttack
from repro.data.loader import DataLoader
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.schedules import ConstantSchedule, LearningRateSchedule
from repro.tensor import Tensor


@dataclass
class GradientResult:
    """Outcome of one worker gradient computation."""

    gradient: np.ndarray
    loss: float
    batch_size: int


def apply_worker_attack(attack: Optional[WorkerAttack],
                        rng: np.random.Generator, result: GradientResult,
                        step: int, peer_gradients: Sequence[np.ndarray] = (),
                        recipient: Optional[str] = None,
                        model: Optional[np.ndarray] = None) -> Optional[np.ndarray]:
    """The gradient a (possibly Byzantine) worker actually sends.

    This is the single attack-application path shared by
    :meth:`WorkerNode.outgoing_gradient` and the batched multi-replica
    runtime (:mod:`repro.batch`), so both produce bit-identical corruption
    for the same attack state and generator.  ``model`` is the parameter
    vector the gradient was computed at — observable by the omniscient
    adversaries of :mod:`repro.adversary`.
    """
    if attack is None:
        return result.gradient
    context = AttackContext(step=step, honest_value=result.gradient,
                            peer_values=list(peer_gradients), rng=rng,
                            recipient=recipient, model=model)
    return attack.corrupt_gradient(context)


def poison_worker_batch(attack: Optional[WorkerAttack],
                        rng: np.random.Generator, aggregated: np.ndarray,
                        step: int, features: np.ndarray, labels: np.ndarray):
    """Run a worker attack's data-poisoning hook on one mini-batch.

    Shared by :meth:`WorkerNode.compute_gradient` and the batched runtime;
    honest workers pass through unchanged.
    """
    if attack is None:
        return features, labels
    context = AttackContext(step=step, honest_value=aggregated, rng=rng)
    return attack.poison_batch(features, labels, context)


def apply_server_attack(attack: Optional[ServerAttack],
                        rng: np.random.Generator, honest: np.ndarray,
                        step: int,
                        recipient: Optional[str] = None) -> Optional[np.ndarray]:
    """The model a (possibly Byzantine) server actually sends.

    Shared by :meth:`ServerNode.outgoing_model` and the batched runtime;
    see :func:`apply_worker_attack`.
    """
    if attack is None:
        return honest
    context = AttackContext(step=step, honest_value=honest, rng=rng,
                            recipient=recipient)
    return attack.corrupt_model(context)


class WorkerNode:
    """A worker: aggregates server models with ``M`` and computes gradients.

    Parameters
    ----------
    node_id:
        Identifier such as ``"worker/3"``.
    model:
        Local copy of the model (used only to run forward/backward passes).
    loader:
        Mini-batch source for this worker's data shard.
    model_aggregator:
        The GAR applied to the ``q`` received parameter vectors (the
        coordinate-wise median in GuanYu).
    attack:
        Optional :class:`WorkerAttack` making this worker Byzantine.
    seed:
        Seed of the worker-local random generator (attack noise).
    local_steps:
        Local gradient computations per protocol round (heterogeneous
        worker profiles).  With ``k > 1`` the worker walks ``k`` local SGD
        steps from the aggregated model (learning rate from ``schedule``)
        and submits the *mean* gradient along that trajectory; ``k = 1``
        is bit-identical to the legacy single gradient.
    schedule:
        Learning-rate schedule for the local steps (required when
        ``local_steps > 1``; the trainers pass their own schedule so the
        local walk matches the server update rule).
    """

    def __init__(self, node_id: str, model: Module, loader: DataLoader,
                 model_aggregator: GradientAggregationRule,
                 attack: Optional[WorkerAttack] = None, seed: int = 0,
                 local_steps: int = 1,
                 schedule: Optional[LearningRateSchedule] = None) -> None:
        if local_steps < 1:
            raise ValueError("local_steps must be >= 1")
        if local_steps > 1 and schedule is None:
            raise ValueError("local_steps > 1 needs a learning-rate schedule")
        self.node_id = node_id
        self.model = model
        self.loader = loader
        self.model_aggregator = model_aggregator
        self.attack = attack
        self.local_steps = local_steps
        self.schedule = schedule
        self.criterion = CrossEntropyLoss()
        self._rng = np.random.default_rng(seed)
        self.last_result: Optional[GradientResult] = None
        self._last_aggregated: Optional[np.ndarray] = None

    @property
    def is_byzantine(self) -> bool:
        return self.attack is not None

    # ------------------------------------------------------------------ #
    def aggregate_models(self, parameter_vectors: Sequence[np.ndarray]) -> np.ndarray:
        """Aggregate the first-``q`` received parameter vectors with ``M``."""
        return self.model_aggregator(parameter_vectors)

    def compute_gradient(self, parameter_vectors: Sequence[np.ndarray],
                         step: int) -> GradientResult:
        """Run one honest gradient computation at the aggregated model.

        This is the worker side of phase 1: ``g = ∇̂L(M(θ^(a) ... θ^(b)))``.
        Byzantine corruption, if any, is applied afterwards by
        :meth:`outgoing_gradient` so that data-poisoning attacks (which act
        on the batch, not the message) are still routed through here.
        """
        aggregated = self.aggregate_models(parameter_vectors)
        self._last_aggregated = aggregated
        if self.local_steps == 1:
            gradient, loss, batch_size = self._one_gradient(aggregated, step)
            result = GradientResult(gradient=gradient, loss=loss,
                                    batch_size=batch_size)
            self.last_result = result
            return result

        # Heterogeneous profile: walk ``k`` local SGD steps and submit the
        # mean gradient along the trajectory (normalised so the server-side
        # update has the same scale as a single gradient).  The batched
        # runtime replays this loop op-for-op (see repro.batch.trainer).
        eta = self.schedule(step)
        theta = aggregated
        gradient_sum = np.zeros_like(aggregated)
        losses = []
        total_samples = 0
        for _ in range(self.local_steps):
            gradient, loss, batch_size = self._one_gradient(theta, step)
            gradient_sum += gradient
            losses.append(loss)
            total_samples += batch_size
            theta = theta - eta * gradient
        result = GradientResult(gradient=gradient_sum / self.local_steps,
                                loss=float(np.mean(losses)),
                                batch_size=total_samples)
        self.last_result = result
        return result

    def _one_gradient(self, parameters: np.ndarray, step: int):
        """One forward/backward at ``parameters`` on the next mini-batch."""
        self.model.set_flat_parameters(parameters)
        features, labels = self.loader.next_batch()
        features, labels = poison_worker_batch(self.attack, self._rng,
                                               parameters, step,
                                               features, labels)
        self.model.zero_grad()
        logits = self.model(Tensor(features))
        loss = self.criterion(logits, labels)
        loss.backward()
        return self.model.get_flat_gradient(), float(loss.item()), len(labels)

    def outgoing_gradient(self, result: GradientResult, step: int,
                          peer_gradients: Sequence[np.ndarray] = (),
                          recipient: Optional[str] = None) -> Optional[np.ndarray]:
        """Gradient actually sent to a parameter server.

        Honest workers send the computed gradient unchanged; Byzantine
        workers route it through their attack (which may return ``None`` for
        silence).
        """
        model = self._last_aggregated if self.attack is not None else None
        return apply_worker_attack(self.attack, self._rng, result, step,
                                   peer_gradients=peer_gradients,
                                   recipient=recipient, model=model)


class ServerNode:
    """A parameter server: holds a model replica and applies robust updates.

    Parameters
    ----------
    node_id:
        Identifier such as ``"ps/0"``.
    model:
        The local model replica (all replicas start from the same ``θ_0``).
    gradient_aggregator:
        The GAR ``F`` applied to the ``q̄`` received gradients (Multi-Krum).
    model_aggregator:
        The GAR ``M`` applied to the ``q`` received models in phase 3
        (coordinate-wise median).
    schedule:
        Learning-rate schedule ``η_t``.
    attack:
        Optional :class:`ServerAttack` making this server Byzantine.
    """

    def __init__(self, node_id: str, model: Module,
                 gradient_aggregator: GradientAggregationRule,
                 model_aggregator: GradientAggregationRule,
                 schedule: Optional[LearningRateSchedule] = None,
                 attack: Optional[ServerAttack] = None, seed: int = 0) -> None:
        self.node_id = node_id
        self.model = model
        self.gradient_aggregator = gradient_aggregator
        self.model_aggregator = model_aggregator
        self.schedule = schedule if schedule is not None else ConstantSchedule(0.001)
        self.attack = attack
        self._rng = np.random.default_rng(seed)

    @property
    def is_byzantine(self) -> bool:
        return self.attack is not None

    # ------------------------------------------------------------------ #
    def current_parameters(self) -> np.ndarray:
        """The server's current flat parameter vector θ_t^(i)."""
        return self.model.get_flat_parameters()

    def outgoing_model(self, step: int, recipient: Optional[str] = None) -> Optional[np.ndarray]:
        """Model sent to a recipient (worker or fellow server).

        Honest servers always send their true parameters; Byzantine servers
        route them through their attack (possibly per-recipient equivocation
        or silence).
        """
        return apply_server_attack(self.attack, self._rng,
                                   self.current_parameters(), step,
                                   recipient=recipient)

    def apply_gradients(self, gradients: Sequence[np.ndarray], step: int) -> np.ndarray:
        """Phase 2: aggregate gradients with ``F`` and apply the SGD update.

        Returns the locally updated parameter vector (before the
        inter-server median of phase 3).
        """
        aggregated = self.gradient_aggregator(gradients)
        learning_rate = self.schedule(step)
        updated = self.current_parameters() - learning_rate * aggregated
        self.model.set_flat_parameters(updated)
        return updated

    def merge_models(self, parameter_vectors: Sequence[np.ndarray]) -> np.ndarray:
        """Phase 3: install the coordinate-wise median of received models."""
        merged = self.model_aggregator(parameter_vectors)
        self.model.set_flat_parameters(merged)
        return merged

    def learning_rate(self, step: int) -> float:
        """Learning rate ``η_t`` for the given step."""
        return self.schedule(step)


def max_pairwise_distance(vectors: Sequence[np.ndarray]) -> float:
    """``max_{a,b} ||v_a − v_b||`` — the server spread tracked by the theory."""
    vectors = [np.asarray(v, dtype=np.float64).reshape(-1) for v in vectors]
    if len(vectors) < 2:
        return 0.0
    stacked = np.stack(vectors)
    squared = pairwise_squared_distances(stacked)
    # The Gram trick finds the extreme pair in one matmul, but its
    # cancellation error (~1e-8 on unit-scale vectors) would report a noise
    # floor where servers agree exactly — and exact agreement after the
    # phase-3 median is precisely what the contraction argument predicts.
    # Re-evaluating the single winning pair directly keeps the result exact.
    index_a, index_b = np.unravel_index(int(np.argmax(squared)), squared.shape)
    return float(np.linalg.norm(stacked[index_a] - stacked[index_b]))
