"""GuanYu: Byzantine-resilient SGD with replicated, untrusted parameter servers.

This package contains the paper's primary contribution:

* :class:`ClusterConfig` — the ``(n, f, n̄, f̄, q, q̄)`` arithmetic of
  Section 3.2, with every constraint checked;
* :class:`WorkerNode` / :class:`ServerNode` — the per-node state machines
  (model aggregation with the coordinate-wise median, gradient computation,
  Multi-Krum aggregation, local SGD update, inter-server model exchange);
* :class:`GuanYuTrainer` — the three-phase protocol of Section 3.3 driven
  over the asynchronous network simulator;
* :class:`VanillaTrainer` — the single-trusted-server baselines
  ("vanilla TF" and "vanilla GuanYu" of Section 5.3);
* :class:`SingleServerKrumTrainer` — the prior-work baseline (Byzantine
  workers only, trusted server).
"""

from repro.core.config import ClusterConfig
from repro.core.nodes import ServerNode, WorkerNode
from repro.core.trainer import (
    DistributedTrainer,
    GuanYuTrainer,
    SingleServerKrumTrainer,
    VanillaTrainer,
)

__all__ = [
    "ClusterConfig",
    "WorkerNode",
    "ServerNode",
    "DistributedTrainer",
    "GuanYuTrainer",
    "VanillaTrainer",
    "SingleServerKrumTrainer",
]
