"""Cluster configuration and the quorum arithmetic of the paper (Section 3.2).

Notation mapping (paper → code):

=============  =============================
``n``          ``num_servers``
``f``          ``num_byzantine_servers``
``n̄``          ``num_workers``
``f̄``          ``num_byzantine_workers``
``q``          ``model_quorum``   (used by the coordinate-wise median ``M``)
``q̄``          ``gradient_quorum`` (used by Multi-Krum ``F``)
=============  =============================

Constraints enforced:

* ``n ≥ 3f + 3`` and ``n̄ ≥ 3f̄ + 3`` (total nodes vs. Byzantine nodes);
* ``2f + 3 ≤ q ≤ n − f`` and ``2f̄ + 3 ≤ q̄ ≤ n̄ − f̄`` (quorum ranges);
* both quorums default to their minimum (``2f+3`` / ``2f̄+3``), which is the
  choice of the paper's implementation ("parameter servers wait for a quorum
  of 2f̄+3 replies from workers").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class ClusterConfig:
    """Validated configuration of a GuanYu deployment."""

    num_servers: int
    num_workers: int
    num_byzantine_servers: int = 0
    num_byzantine_workers: int = 0
    model_quorum: Optional[int] = None
    gradient_quorum: Optional[int] = None

    def __post_init__(self) -> None:
        self._validate_counts()
        if self.model_quorum is None:
            self.model_quorum = self.min_model_quorum
        if self.gradient_quorum is None:
            self.gradient_quorum = self.min_gradient_quorum
        self._validate_quorums()

    # ------------------------------------------------------------------ #
    # Derived bounds
    # ------------------------------------------------------------------ #
    @property
    def min_model_quorum(self) -> int:
        """Smallest admissible ``q``: ``2f + 3``."""
        return 2 * self.num_byzantine_servers + 3

    @property
    def max_model_quorum(self) -> int:
        """Largest admissible ``q``: ``n − f``."""
        return self.num_servers - self.num_byzantine_servers

    @property
    def min_gradient_quorum(self) -> int:
        """Smallest admissible ``q̄``: ``2f̄ + 3``."""
        return 2 * self.num_byzantine_workers + 3

    @property
    def max_gradient_quorum(self) -> int:
        """Largest admissible ``q̄``: ``n̄ − f̄``."""
        return self.num_workers - self.num_byzantine_workers

    @property
    def num_correct_servers(self) -> int:
        return self.num_servers - self.num_byzantine_servers

    @property
    def num_correct_workers(self) -> int:
        return self.num_workers - self.num_byzantine_workers

    # ------------------------------------------------------------------ #
    # Node identifiers
    # ------------------------------------------------------------------ #
    def server_ids(self) -> List[str]:
        """Identifiers of all parameter servers (correct ones first)."""
        return [f"ps/{index}" for index in range(self.num_servers)]

    def worker_ids(self) -> List[str]:
        """Identifiers of all workers (correct ones first)."""
        return [f"worker/{index}" for index in range(self.num_workers)]

    def correct_server_ids(self) -> List[str]:
        return self.server_ids()[: self.num_correct_servers]

    def byzantine_server_ids(self) -> List[str]:
        return self.server_ids()[self.num_correct_servers:]

    def correct_worker_ids(self) -> List[str]:
        return self.worker_ids()[: self.num_correct_workers]

    def byzantine_worker_ids(self) -> List[str]:
        return self.worker_ids()[self.num_correct_workers:]

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def _validate_counts(self) -> None:
        if self.num_servers <= 0 or self.num_workers <= 0:
            raise ValueError("num_servers and num_workers must be positive")
        if self.num_byzantine_servers < 0 or self.num_byzantine_workers < 0:
            raise ValueError("Byzantine counts must be non-negative")
        if self.num_servers < 3 * self.num_byzantine_servers + 3:
            raise ValueError(
                f"GuanYu requires n >= 3f + 3 parameter servers "
                f"(got n={self.num_servers}, f={self.num_byzantine_servers})"
            )
        if self.num_workers < 3 * self.num_byzantine_workers + 3:
            raise ValueError(
                f"GuanYu requires n_workers >= 3f_workers + 3 "
                f"(got n={self.num_workers}, f={self.num_byzantine_workers})"
            )

    def _validate_quorums(self) -> None:
        if not self.min_model_quorum <= self.model_quorum <= self.max_model_quorum:
            raise ValueError(
                f"model_quorum must lie in [{self.min_model_quorum}, "
                f"{self.max_model_quorum}], got {self.model_quorum}"
            )
        if not self.min_gradient_quorum <= self.gradient_quorum <= self.max_gradient_quorum:
            raise ValueError(
                f"gradient_quorum must lie in [{self.min_gradient_quorum}, "
                f"{self.max_gradient_quorum}], got {self.gradient_quorum}"
            )

    # ------------------------------------------------------------------ #
    @staticmethod
    def max_admissible_byzantine(num_nodes: int) -> int:
        """Largest ``f`` a pool of ``num_nodes`` admits (``n ≥ 3f + 3``)."""
        return (num_nodes - 3) // 3

    def byzantine_fraction_servers(self) -> float:
        """Fraction of Byzantine parameter servers (must stay below 1/3)."""
        return self.num_byzantine_servers / self.num_servers

    def byzantine_fraction_workers(self) -> float:
        """Fraction of Byzantine workers (must stay below 1/3)."""
        return self.num_byzantine_workers / self.num_workers

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view used by experiment records."""
        return {
            "num_servers": self.num_servers,
            "num_workers": self.num_workers,
            "num_byzantine_servers": self.num_byzantine_servers,
            "num_byzantine_workers": self.num_byzantine_workers,
            "model_quorum": self.model_quorum,
            "gradient_quorum": self.gradient_quorum,
        }

    @classmethod
    def paper_deployment(cls, num_byzantine_workers: int = 5,
                         num_byzantine_servers: int = 1) -> "ClusterConfig":
        """The deployment of Section 5.1: 18 workers and 6 parameter servers."""
        return cls(
            num_servers=6,
            num_workers=18,
            num_byzantine_servers=num_byzantine_servers,
            num_byzantine_workers=num_byzantine_workers,
        )
