"""Distributed trainers: GuanYu and its single-server baselines.

Three trainers are provided, all sharing the same constructor vocabulary
(model factory, dataset, batch size, learning-rate schedule, delay and cost
models, seeds) and the same output (:class:`repro.metrics.TrainingHistory`):

* :class:`GuanYuTrainer` — the full three-phase protocol of Section 3.3 with
  ``n`` replicated, possibly Byzantine parameter servers and ``n̄`` possibly
  Byzantine workers, run over the asynchronous network simulator.
* :class:`VanillaTrainer` — a single *trusted* parameter server averaging
  worker gradients.  With ``external_communication=False`` it models the
  paper's "vanilla TF" baseline (optimised in-runtime communication); with
  ``external_communication=True`` it models "vanilla GuanYu" (same graph,
  communication handled outside the framework, paying the serialisation
  overhead of Section 4).
* :class:`SingleServerKrumTrainer` — the prior-work baseline: Byzantine
  workers tolerated through Multi-Krum, but the single parameter server is
  still assumed honest.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.aggregation import ArithmeticMean, CoordinateWiseMedian, MultiKrum, get_rule
from repro.byzantine.base import ServerAttack, WorkerAttack
from repro.core.config import ClusterConfig
from repro.core.nodes import GradientResult, ServerNode, WorkerNode, max_pairwise_distance
from repro.data.datasets import Dataset
from repro.data.loader import DataLoader, partition_dataset
from repro.faults import FaultController, FaultSchedule
from repro.hetero import DEFAULT_PROFILE, HeteroSpec, WorkerProfile
from repro.aggregation.decision import decide
from repro.metrics.accuracy import evaluate_accuracy
from repro.obs.history import StepRecord, TrainingHistory
from repro.obs.telemetry import get_registry
from repro.obs.tracer import get_tracer
from repro.network.delays import DelayModel, UniformDelay
from repro.network.message import MessageKind
from repro.network.simulator import NetworkSimulator
from repro.nn.module import Module
from repro.nn.schedules import ConstantSchedule, LearningRateSchedule
from repro.runtime.cost import GRID5000_LIKE, CostModel

ModelFactory = Callable[[], Module]


def attacking_node_ids(node_ids: Sequence[str], count: int) -> set:
    """The ids of the ``count`` actually-attacking nodes (the *last* ids).

    The placement convention is shared by every runtime — sequential,
    threaded and batched — so that a scenario means the same cluster under
    each of them.
    """
    if count <= 0:
        return set()
    return set(node_ids[len(node_ids) - count:])


def validate_attack_counts(config: ClusterConfig,
                           worker_attack: Optional[WorkerAttack],
                           num_attacking_workers: int,
                           server_attack: Optional[ServerAttack],
                           num_attacking_servers: int,
                           adversary=None) -> None:
    """Check attack counts against a cluster's declared Byzantine budget.

    An :class:`~repro.adversary.Adversary` satisfies the behaviour
    requirement for whichever side(s) it attacks, in place of the legacy
    per-node attacks.
    """
    adversary_workers = adversary is not None and adversary.attacks_workers
    adversary_servers = adversary is not None and adversary.attacks_servers
    if num_attacking_workers > 0 and worker_attack is None \
            and not adversary_workers:
        raise ValueError("num_attacking_workers > 0 requires a worker_attack")
    if num_attacking_servers > 0 and server_attack is None \
            and not adversary_servers:
        raise ValueError("num_attacking_servers > 0 requires a server_attack")
    if num_attacking_workers > config.num_byzantine_workers:
        raise ValueError(
            "more attacking workers than the declared Byzantine count; "
            "GuanYu's guarantees only cover f̄ declared Byzantine workers"
        )
    if num_attacking_servers > config.num_byzantine_servers:
        raise ValueError(
            "more attacking servers than the declared Byzantine count; "
            "GuanYu's guarantees only cover f declared Byzantine servers"
        )


class DistributedTrainer:
    """Shared infrastructure for the distributed trainers.

    Parameters
    ----------
    model_fn:
        Zero-argument factory returning a *fresh but identically initialised*
        model; every node calls it so all replicas start from the same θ_0.
    train_dataset, test_dataset:
        Training data (sharded across workers) and held-out evaluation data.
    batch_size:
        Per-worker mini-batch size (the paper uses 128 and 32).
    schedule:
        Learning-rate schedule η_t (paper default: constant 0.001).
    delay_model, cost_model:
        Network latency distribution and local-computation cost model that
        together define the simulated clock.
    sharding:
        ``"iid"``, ``"replicated"`` or ``"by_class"`` (see
        :func:`repro.data.loader.shard_dataset`).
    seed:
        Master seed; every stochastic component is derived from it.
    cost_num_parameters:
        Parameter count used by the *cost model only* (computation and
        serialisation times, message sizes on the simulated clock).  The
        scaled-down experiments train a small model but bill time as if the
        paper's 1.75 M-parameter CNN were being exchanged, which preserves
        the time-axis shape of Figure 3.  Defaults to the actual model size.
    fault_schedule:
        Optional declarative :class:`~repro.faults.FaultSchedule` (crashes,
        partitions, delay spikes, gated attacks) injected at the network
        and protocol layer.  Only :class:`GuanYuTrainer` supports it — the
        single-server baselines assume a live trusted server.
    hetero:
        Optional :class:`~repro.hetero.HeteroSpec`: non-i.i.d. data
        partitions (Dirichlet label skew, shard splits, sample imbalance,
        feature drift) and heterogeneous worker profiles (per-worker batch
        size, local steps, delay multiplier).  Partitions are a pure
        function of ``(seed, num_workers, hetero)``, identical across all
        runtimes; absent means the legacy homogeneous ``sharding`` split.
    """

    def __init__(self, model_fn: ModelFactory, train_dataset: Dataset,
                 test_dataset: Optional[Dataset] = None, batch_size: int = 32,
                 schedule: Optional[LearningRateSchedule] = None,
                 delay_model: Optional[DelayModel] = None,
                 cost_model: CostModel = GRID5000_LIKE,
                 sharding: str = "iid", seed: int = 0,
                 cost_num_parameters: Optional[int] = None,
                 fault_schedule: Optional[FaultSchedule] = None,
                 hetero: Optional[HeteroSpec] = None,
                 label: str = "experiment") -> None:
        self.model_fn = model_fn
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.batch_size = batch_size
        self.hetero = hetero
        self.schedule = schedule if schedule is not None else ConstantSchedule(0.001)
        self.delay_model = delay_model if delay_model is not None else UniformDelay()
        self.cost_model = cost_model
        self.sharding = sharding
        self.seed = seed
        self.label = label
        self.fault_schedule = fault_schedule
        self.fault_controller = (FaultController(fault_schedule, seed=seed)
                                 if fault_schedule else None)

        self._eval_model = model_fn()
        self.num_parameters = self._eval_model.num_parameters()
        self.billed_parameters = (cost_num_parameters if cost_num_parameters
                                  else self.num_parameters)
        self.network = NetworkSimulator(delay_model=self.delay_model, seed=seed,
                                        fault_controller=self.fault_controller)
        self.history = TrainingHistory(label=label)

    # ------------------------------------------------------------------ #
    # Helpers shared by subclasses
    # ------------------------------------------------------------------ #
    def _build_workers(self, worker_ids: Sequence[str],
                       attacks: Dict[str, Optional[WorkerAttack]],
                       model_aggregator_fn: Callable[[], object]) -> List[WorkerNode]:
        shards = partition_dataset(self.train_dataset, len(worker_ids),
                                   sharding=self.sharding, hetero=self.hetero,
                                   seed=self.seed)
        self.worker_profiles: List[WorkerProfile] = [
            self.hetero.profile_for(index) if self.hetero else DEFAULT_PROFILE
            for index in range(len(worker_ids))]
        self._delay_multipliers: Dict[str, float] = {
            worker_id: profile.delay_multiplier
            for worker_id, profile in zip(worker_ids, self.worker_profiles)}
        workers = []
        for index, worker_id in enumerate(worker_ids):
            profile = self.worker_profiles[index]
            loader = DataLoader(
                shards[index],
                batch_size=profile.batch_size or self.batch_size,
                seed=self.seed + 1000 + index)
            workers.append(WorkerNode(
                node_id=worker_id,
                model=self.model_fn(),
                loader=loader,
                model_aggregator=model_aggregator_fn(),
                attack=attacks.get(worker_id),
                seed=self.seed + 2000 + index,
                local_steps=profile.local_steps,
                schedule=self.schedule,
            ))
        return workers

    def _worker_delay_multiplier(self, worker_id: str) -> float:
        """Straggler factor a worker profile applies to its compute time."""
        return self._delay_multipliers.get(worker_id, 1.0)

    def _evaluate(self, parameters: np.ndarray, max_samples: Optional[int]) -> float:
        if self.test_dataset is None:
            return float("nan")
        self._eval_model.set_flat_parameters(parameters)
        return evaluate_accuracy(self._eval_model, self.test_dataset,
                                 max_samples=max_samples)

    def _serialization(self) -> float:
        return self.cost_model.serialization_time(self.billed_parameters)

    # ------------------------------------------------------------------ #
    def global_parameters(self) -> np.ndarray:
        """Parameter vector an external observer would read (trainer-specific)."""
        raise NotImplementedError

    def step(self, step_index: int) -> StepRecord:
        """Execute one learning step and return its record."""
        raise NotImplementedError

    def run(self, num_steps: int, eval_every: int = 10,
            max_eval_samples: Optional[int] = 512) -> TrainingHistory:
        """Run ``num_steps`` model updates.

        Accuracy is evaluated every ``eval_every`` steps (and on the final
        step) on at most ``max_eval_samples`` held-out samples.
        """
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        for step_index in range(num_steps):
            record = self.step(step_index)
            is_eval_step = (step_index % eval_every == 0) or (step_index == num_steps - 1)
            if is_eval_step and self.test_dataset is not None:
                record.test_accuracy = self._evaluate(self.global_parameters(),
                                                      max_eval_samples)
            self.history.add(record)
        return self.history


# --------------------------------------------------------------------------- #
# GuanYu
# --------------------------------------------------------------------------- #
class GuanYuTrainer(DistributedTrainer):
    """The GuanYu protocol (paper Section 3.3) over the simulated network.

    Parameters
    ----------
    config:
        Cluster arithmetic ``(n, f, n̄, f̄, q, q̄)``.  The Byzantine counts in
        the config are the *declared* numbers (they size the quorums and the
        aggregation rules); the *actual* number of attacking nodes is given
        separately so that, as in the paper's Figure 3, a deployment can
        declare ``f̄ = 5`` while running in a non-Byzantine environment.
    worker_attack, num_attacking_workers:
        Behaviour and count of actually-Byzantine workers (last worker ids).
    server_attack, num_attacking_servers:
        Behaviour and count of actually-Byzantine servers (last server ids).
    gradient_rule_name, model_rule_name:
        GARs used for phase 2 (default Multi-Krum) and phases 1/3 (default
        coordinate-wise median); exposed for the ablation benchmarks.
    adversary:
        Optional stateful :class:`~repro.adversary.Adversary` controlling
        *all* actually-Byzantine nodes as one colluding entity (mutually
        exclusive with the legacy per-node ``worker_attack`` /
        ``server_attack``).  The attacking counts still come from
        ``num_attacking_workers`` / ``num_attacking_servers``.
    fault_schedule:
        Optional time-varying faults (see :mod:`repro.faults`).  Crashed
        nodes skip their local computation and all traffic; quorums keep the
        protocol live as long as every receiver can still hear from a full
        quorum (e.g. ≤ ``f`` crashed servers with the default quorums), and
        an infeasible schedule fails loudly with a quorum error.
    """

    def __init__(self, config: ClusterConfig, model_fn: ModelFactory,
                 train_dataset: Dataset, test_dataset: Optional[Dataset] = None,
                 worker_attack: Optional[WorkerAttack] = None,
                 num_attacking_workers: int = 0,
                 server_attack: Optional[ServerAttack] = None,
                 num_attacking_servers: int = 0,
                 gradient_rule_name: str = "multi_krum",
                 model_rule_name: str = "median",
                 adversary=None,
                 label: str = "guanyu", **kwargs) -> None:
        super().__init__(model_fn=model_fn, train_dataset=train_dataset,
                         test_dataset=test_dataset, label=label, **kwargs)
        self.config = config
        self.adversary = adversary
        self._validate_attack_counts(worker_attack, num_attacking_workers,
                                     server_attack, num_attacking_servers,
                                     adversary=adversary)
        self.gradient_rule_name = gradient_rule_name
        self.model_rule_name = model_rule_name

        from repro.adversary.engine import wire_attacks  # lazy: heavy import

        worker_ids = config.worker_ids()
        server_ids = config.server_ids()
        (self.adversary_coordinator, worker_attacks, server_attacks,
         attacking_workers, attacking_servers) = wire_attacks(
            config=config, seed=self.seed,
            worker_attack=worker_attack,
            num_attacking_workers=num_attacking_workers,
            server_attack=server_attack,
            num_attacking_servers=num_attacking_servers,
            gradient_rule_name=gradient_rule_name, adversary=adversary)
        self.workers = self._build_workers(
            worker_ids, worker_attacks,
            model_aggregator_fn=lambda: get_rule(
                model_rule_name, num_byzantine=config.num_byzantine_servers),
        )

        self.servers: List[ServerNode] = []
        for index, server_id in enumerate(server_ids):
            attack = server_attacks[server_id]
            self.servers.append(ServerNode(
                node_id=server_id,
                model=self.model_fn(),
                gradient_aggregator=get_rule(
                    gradient_rule_name, num_byzantine=config.num_byzantine_workers),
                model_aggregator=get_rule(
                    model_rule_name, num_byzantine=config.num_byzantine_servers),
                schedule=self.schedule,
                attack=attack,
                seed=self.seed + 3000 + index,
            ))

        if self.fault_controller is not None:
            self.fault_schedule.validate(known_nodes=worker_ids + server_ids)
            for node in [*self.workers, *self.servers]:
                node.attack = self.fault_controller.gate_attack(node.node_id,
                                                                node.attack)

        self._server_clock = {server.node_id: 0.0 for server in self.servers}
        self._worker_clock = {worker.node_id: 0.0 for worker in self.workers}
        self.history.config = {
            **config.as_dict(),
            "batch_size": self.batch_size,
            "gradient_rule": gradient_rule_name,
            "model_rule": model_rule_name,
            "num_attacking_workers": num_attacking_workers,
            "num_attacking_servers": num_attacking_servers,
            "worker_attack": getattr(worker_attack, "name", None),
            "server_attack": getattr(server_attack, "name", None),
            "adversary": getattr(adversary, "name", None),
            "faults": (self.fault_schedule.to_dict()
                       if self.fault_schedule else None),
            "hetero": self.hetero.to_dict() if self.hetero else None,
        }

    # ------------------------------------------------------------------ #
    def _validate_attack_counts(self, worker_attack, num_attacking_workers,
                                server_attack, num_attacking_servers,
                                adversary=None) -> None:
        validate_attack_counts(self.config, worker_attack,
                               num_attacking_workers, server_attack,
                               num_attacking_servers, adversary=adversary)

    # ------------------------------------------------------------------ #
    @property
    def correct_servers(self) -> List[ServerNode]:
        return [server for server in self.servers if not server.is_byzantine]

    @property
    def byzantine_servers(self) -> List[ServerNode]:
        return [server for server in self.servers if server.is_byzantine]

    @property
    def correct_workers(self) -> List[WorkerNode]:
        return [worker for worker in self.workers if not worker.is_byzantine]

    @property
    def byzantine_workers(self) -> List[WorkerNode]:
        return [worker for worker in self.workers if worker.is_byzantine]

    def global_parameters(self) -> np.ndarray:
        """Coordinate-wise median of the correct servers' models (paper Eq. 1)."""
        vectors = [server.current_parameters() for server in self.correct_servers]
        return np.median(np.stack(vectors), axis=0)

    def server_spread(self) -> float:
        """``max_{a,b} ||θ^(a) − θ^(b)||`` over correct servers."""
        return max_pairwise_distance(
            [server.current_parameters() for server in self.correct_servers])

    # ------------------------------------------------------------------ #
    def _alive(self, node_id: str, step_index: int) -> bool:
        return (self.fault_controller is None
                or self.fault_controller.node_alive(node_id, step_index))

    def _participants(self, step_index: int):
        """``(participating worker ids, participating server ids)`` as sets.

        Crashed nodes sit the step out entirely; nodes that active faults
        leave short of a quorum — directly or transitively, see
        :meth:`repro.faults.FaultController.participating_nodes` — stall
        with frozen state.  Without faults everyone participates.
        """
        worker_ids = [worker.node_id for worker in self.workers]
        server_ids = [server.node_id for server in self.servers]
        if self.fault_controller is None:
            return set(worker_ids), set(server_ids)
        workers, servers = self.fault_controller.participating_nodes(
            worker_ids, server_ids, self.config.model_quorum,
            self.config.gradient_quorum, step_index)
        return set(workers), set(servers)

    def step(self, step_index: int) -> StepRecord:
        """One full GuanYu step (the three phases of Figure 2).

        Under a fault schedule, crashed nodes neither compute nor send nor
        collect for the step, and nodes left short of a quorum (e.g.
        partitioned away) stall with frozen state until reachability
        returns; everyone else proceeds on quorums alone.  A schedule that
        starves *everyone* freezes learning for the step — visible as
        ``train_loss=None`` — and training resumes when the faults lift.
        """
        config = self.config
        cost = self.cost_model
        d = self.billed_parameters
        serialization = self._serialization()
        tracer = get_tracer()
        registry = get_registry()
        if self.fault_controller is not None:
            self.fault_controller.on_step(step_index)
        active_worker_ids, active_server_ids = self._participants(step_index)
        if tracer.enabled:
            stalled = ([w.node_id for w in self.workers
                        if w.node_id not in active_worker_ids]
                       + [s.node_id for s in self.servers
                          if s.node_id not in active_server_ids])
            if stalled:
                tracer.event("seq.fault.stalled", step=step_index,
                             nodes=stalled)
        alive_correct_servers = [s for s in self.correct_servers
                                 if self._alive(s.node_id, step_index)]
        if not alive_correct_servers:
            raise RuntimeError(
                f"fault schedule leaves no correct server alive at step "
                f"{step_index}; the protocol cannot make progress")
        phase_start = min(self._server_clock[s.node_id]
                          for s in alive_correct_servers)

        # ------------------------- Phase 1 ------------------------------ #
        # Every participating parameter server broadcasts its model to
        # every worker.
        worker_ids = [worker.node_id for worker in self.workers]
        with tracer.span("seq.step.broadcast", step=step_index), \
                registry.timer("repro_step_phase_seconds",
                               runtime="seq", phase="broadcast"):
            for server in self.servers:
                if server.node_id not in active_server_ids:
                    continue
                if server.is_byzantine:
                    # The adversary sends (possibly different) corrupted
                    # models, racing honest traffic on its covert channel.
                    for worker_id in worker_ids:
                        payload = server.outgoing_model(step_index,
                                                        recipient=worker_id)
                        self.network.send(server.node_id, worker_id,
                                          MessageKind.MODEL_TO_WORKER, step_index,
                                          payload, send_time=phase_start,
                                          delay_override=0.0)
                else:
                    send_time = self._server_clock[server.node_id] + serialization
                    self.network.broadcast(server.node_id, worker_ids,
                                           MessageKind.MODEL_TO_WORKER, step_index,
                                           server.outgoing_model(step_index),
                                           send_time=send_time)

        # Every participating worker waits for the first q models,
        # aggregates them with the coordinate-wise median and computes a
        # gradient there.
        results: Dict[str, GradientResult] = {}
        alive_workers = [w for w in self.workers
                         if w.node_id in active_worker_ids]
        with tracer.span("seq.step.compute", step=step_index,
                         workers=len(alive_workers)), \
                registry.timer("repro_step_phase_seconds",
                               runtime="seq", phase="compute"):
            for worker in alive_workers:
                record = self.network.collect_quorum(
                    worker.node_id, MessageKind.MODEL_TO_WORKER, step_index,
                    quorum=config.model_quorum,
                    not_before=self._worker_clock[worker.node_id])
                result = worker.compute_gradient(record.payloads, step_index)
                results[worker.node_id] = result
                compute_time = self._worker_delay_multiplier(worker.node_id) * (
                    cost.median_time(config.model_quorum, d)
                    + cost.gradient_time(result.batch_size, d))
                self._worker_clock[worker.node_id] = \
                    record.completion_time + compute_time

        alive_correct_workers = [w for w in alive_workers if not w.is_byzantine]
        correct_gradients = [results[w.node_id].gradient
                             for w in alive_correct_workers]
        phase1_end = (float(np.mean([self._worker_clock[w.node_id]
                                     for w in alive_correct_workers]))
                      if alive_correct_workers else phase_start)

        # ------------------------- Phase 2 ------------------------------ #
        # Every participating worker broadcasts its gradient to every
        # parameter server.
        server_ids = [server.node_id for server in self.servers]
        with tracer.span("seq.step.gather", step=step_index), \
                registry.timer("repro_step_phase_seconds",
                               runtime="seq", phase="gather"):
            for worker in alive_workers:
                result = results[worker.node_id]
                if worker.is_byzantine:
                    for server_id in server_ids:
                        payload = worker.outgoing_gradient(
                            result, step_index, peer_gradients=correct_gradients,
                            recipient=server_id)
                        self.network.send(worker.node_id, server_id,
                                          MessageKind.GRADIENT_TO_SERVER,
                                          step_index, payload,
                                          send_time=phase_start,
                                          delay_override=0.0)
                else:
                    send_time = self._worker_clock[worker.node_id] + serialization
                    self.network.broadcast(worker.node_id, server_ids,
                                           MessageKind.GRADIENT_TO_SERVER,
                                           step_index,
                                           worker.outgoing_gradient(result,
                                                                    step_index),
                                           send_time=send_time)

        # Every participating correct server waits for the first q̄
        # gradients, aggregates them with Multi-Krum and applies the local
        # SGD update.
        active_servers = [s for s in alive_correct_servers
                          if s.node_id in active_server_ids]
        byzantine_worker_ids = {w.node_id for w in self.workers
                                if w.is_byzantine}
        with tracer.span("seq.step.aggregate", step=step_index,
                         servers=len(active_servers)), \
                registry.timer("repro_step_phase_seconds",
                               runtime="seq", phase="aggregate"):
            for server in active_servers:
                record = self.network.collect_quorum(
                    server.node_id, MessageKind.GRADIENT_TO_SERVER, step_index,
                    quorum=config.gradient_quorum,
                    not_before=self._server_clock[server.node_id])
                if tracer.enabled and tracer.record_decisions:
                    # Decision provenance is derived on the side from the
                    # same payloads the server aggregates; nothing below
                    # feeds back into the update.
                    attacker_positions = [
                        i for i, sender in enumerate(record.senders)
                        if sender in byzantine_worker_ids]
                    decision = decide(server.gradient_aggregator,
                                      record.payloads,
                                      attacker_indices=attacker_positions)
                    tracer.event("seq.gar.decision", step=step_index,
                                 node=server.node_id, **decision.to_dict())
                    if registry.enabled:
                        # The recomputation stays gated behind decision
                        # records; telemetry only folds the result into
                        # its per-rule acceptance gauges.
                        rule = decision.rule
                        registry.inc("repro_gar_decisions_total", rule=rule)
                        if decision.attacker_indices:
                            registry.inc("repro_gar_attackers_offered_total",
                                         len(decision.attacker_indices),
                                         rule=rule)
                            registry.inc("repro_gar_attackers_selected_total",
                                         decision.attackers_selected,
                                         rule=rule)
                            offered = registry.counter(
                                "repro_gar_attackers_offered_total"
                            ).value(rule=rule)
                            admitted = registry.counter(
                                "repro_gar_attackers_selected_total"
                            ).value(rule=rule)
                            registry.set_gauge(
                                "repro_gar_attacker_acceptance",
                                admitted / offered if offered else 0.0,
                                rule=rule)
                server.apply_gradients(record.payloads, step_index)
                compute_time = (cost.aggregation_time(self.gradient_rule_name,
                                                      config.gradient_quorum, d)
                                + cost.update_time(d))
                self._server_clock[server.node_id] = \
                    record.completion_time + compute_time
        phase2_end = float(np.mean([self._server_clock[s.node_id]
                                    for s in alive_correct_servers]))

        # ------------------------- Phase 3 ------------------------------ #
        # Every live parameter server broadcasts its updated model to the
        # others and installs the coordinate-wise median of the first q
        # received.
        with tracer.span("seq.step.apply", step=step_index), \
                registry.timer("repro_step_phase_seconds",
                               runtime="seq", phase="apply"):
            for server in self.servers:
                if server.node_id not in active_server_ids:
                    continue
                if server.is_byzantine:
                    for server_id in server_ids:
                        payload = server.outgoing_model(step_index,
                                                        recipient=server_id)
                        self.network.send(server.node_id, server_id,
                                          MessageKind.MODEL_TO_SERVER, step_index,
                                          payload, send_time=phase_start,
                                          delay_override=0.0)
                else:
                    send_time = self._server_clock[server.node_id] + serialization
                    payload = server.outgoing_model(step_index)
                    for server_id in server_ids:
                        # A server's own model is available to it immediately.
                        delay_override = 0.0 if server_id == server.node_id \
                            else None
                        self.network.send(server.node_id, server_id,
                                          MessageKind.MODEL_TO_SERVER, step_index,
                                          payload, send_time=send_time,
                                          delay_override=delay_override)

            for server in active_servers:
                record = self.network.collect_quorum(
                    server.node_id, MessageKind.MODEL_TO_SERVER, step_index,
                    quorum=config.model_quorum,
                    not_before=self._server_clock[server.node_id])
                server.merge_models(record.payloads)
                compute_time = cost.median_time(config.model_quorum, d)
                self._server_clock[server.node_id] = \
                    record.completion_time + compute_time

        # Drop anything left over from this step (late messages are discarded).
        self.network.purge_step(step_index)
        phase3_end = float(np.mean([self._server_clock[s.node_id]
                                    for s in alive_correct_servers]))

        correct_losses = [results[w.node_id].loss
                          for w in alive_correct_workers]
        return StepRecord(
            step=step_index,
            simulated_time=max(self._server_clock[s.node_id]
                               for s in alive_correct_servers),
            train_loss=float(np.mean(correct_losses)) if correct_losses else None,
            max_server_spread=self.server_spread(),
            learning_rate=self.schedule(step_index),
            phase_durations={
                "phase1_models_and_gradients": phase1_end - phase_start,
                "phase2_server_update": phase2_end - phase1_end,
                "phase3_server_exchange": phase3_end - phase2_end,
            },
        )


# --------------------------------------------------------------------------- #
# Single-server baselines
# --------------------------------------------------------------------------- #
class VanillaTrainer(DistributedTrainer):
    """Single trusted parameter server averaging worker gradients.

    ``external_communication=False`` models the paper's **vanilla TF**
    baseline (communication inside the optimised framework runtime);
    ``external_communication=True`` models **vanilla GuanYu** (identical
    computation graph, communication handled outside the framework and thus
    paying the tensor→numpy→protobuf serialisation cost of Section 4).
    """

    SERVER_ID = "ps/0"

    def __init__(self, model_fn: ModelFactory, train_dataset: Dataset,
                 test_dataset: Optional[Dataset] = None, num_workers: int = 4,
                 worker_attack: Optional[WorkerAttack] = None,
                 num_attacking_workers: int = 0,
                 external_communication: bool = False,
                 gradient_rule=None, label: str = "vanilla", **kwargs) -> None:
        super().__init__(model_fn=model_fn, train_dataset=train_dataset,
                         test_dataset=test_dataset, label=label, **kwargs)
        if self.fault_schedule is not None:
            raise ValueError(
                "fault schedules require replicated parameter servers; the "
                "single-server trainers assume a live trusted server — use "
                "GuanYuTrainer or the threaded runtime")
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if num_attacking_workers > 0 and worker_attack is None:
            raise ValueError("num_attacking_workers > 0 requires a worker_attack")
        if num_attacking_workers > num_workers:
            raise ValueError("cannot have more attacking workers than workers")
        self.num_workers = num_workers
        self.external_communication = external_communication
        self.gradient_rule = gradient_rule if gradient_rule is not None else ArithmeticMean()

        worker_ids = [f"worker/{index}" for index in range(num_workers)]
        attacking = set(worker_ids[num_workers - num_attacking_workers:]) \
            if num_attacking_workers else set()
        attacks = {wid: (worker_attack if wid in attacking else None)
                   for wid in worker_ids}
        # With a single trusted server there is no model aggregation at the
        # workers: the "median of one" is the identity.
        self.workers = self._build_workers(
            worker_ids, attacks,
            model_aggregator_fn=lambda: CoordinateWiseMedian(num_byzantine=0))

        self.server = ServerNode(
            node_id=self.SERVER_ID,
            model=self.model_fn(),
            gradient_aggregator=self.gradient_rule,
            model_aggregator=CoordinateWiseMedian(num_byzantine=0),
            schedule=self.schedule,
            seed=self.seed + 3000,
        )
        self._server_clock = 0.0
        self._worker_clock = {worker.node_id: 0.0 for worker in self.workers}
        self.history.config = {
            "num_workers": num_workers,
            "batch_size": self.batch_size,
            "external_communication": external_communication,
            "gradient_rule": getattr(self.gradient_rule, "name", "mean"),
            "num_attacking_workers": num_attacking_workers,
            "worker_attack": getattr(worker_attack, "name", None),
            "hetero": self.hetero.to_dict() if self.hetero else None,
        }

    # ------------------------------------------------------------------ #
    def global_parameters(self) -> np.ndarray:
        return self.server.current_parameters()

    def _overhead(self) -> float:
        return self._serialization() if self.external_communication else 0.0

    def step(self, step_index: int) -> StepRecord:
        cost = self.cost_model
        d = self.billed_parameters
        overhead = self._overhead()
        worker_ids = [worker.node_id for worker in self.workers]

        # Server broadcasts the current model to every worker.
        self.network.broadcast(self.SERVER_ID, worker_ids,
                               MessageKind.MODEL_TO_WORKER, step_index,
                               self.server.outgoing_model(step_index),
                               send_time=self._server_clock + overhead)

        # Workers compute gradients at the received model.
        results: Dict[str, GradientResult] = {}
        correct_gradients: List[np.ndarray] = []
        for worker in self.workers:
            record = self.network.collect_quorum(
                worker.node_id, MessageKind.MODEL_TO_WORKER, step_index,
                quorum=1, not_before=self._worker_clock[worker.node_id])
            result = worker.compute_gradient(record.payloads, step_index)
            results[worker.node_id] = result
            self._worker_clock[worker.node_id] = (
                record.completion_time
                + self._worker_delay_multiplier(worker.node_id)
                * cost.gradient_time(result.batch_size, d))
            if not worker.is_byzantine:
                correct_gradients.append(result.gradient)

        # Workers send their gradients back (Byzantine ones may corrupt or
        # stay silent); the trusted server averages what it receives.
        responding = 0
        for worker in self.workers:
            result = results[worker.node_id]
            payload = worker.outgoing_gradient(result, step_index,
                                               peer_gradients=correct_gradients,
                                               recipient=self.SERVER_ID)
            if payload is not None:
                responding += 1
            self.network.send(worker.node_id, self.SERVER_ID,
                              MessageKind.GRADIENT_TO_SERVER, step_index, payload,
                              send_time=self._worker_clock[worker.node_id] + overhead)

        record = self.network.collect_quorum(
            self.SERVER_ID, MessageKind.GRADIENT_TO_SERVER, step_index,
            quorum=max(responding, 1), not_before=self._server_clock)
        self.server.apply_gradients(record.payloads, step_index)
        rule_name = getattr(self.gradient_rule, "name", "mean")
        self._server_clock = (record.completion_time
                              + cost.aggregation_time(rule_name, responding, d)
                              + cost.update_time(d))
        self.network.purge_step(step_index)

        correct_losses = [results[w.node_id].loss for w in self.workers
                          if not w.is_byzantine]
        return StepRecord(
            step=step_index,
            simulated_time=self._server_clock,
            train_loss=float(np.mean(correct_losses)) if correct_losses else None,
            max_server_spread=0.0,
            learning_rate=self.schedule(step_index),
        )


class SingleServerKrumTrainer(VanillaTrainer):
    """Prior-work baseline: Multi-Krum at a single *trusted* parameter server.

    Tolerates Byzantine workers (Blanchard et al., 2017) but offers no
    protection whatsoever against a Byzantine parameter server — the gap
    GuanYu closes.
    """

    def __init__(self, model_fn: ModelFactory, train_dataset: Dataset,
                 num_byzantine_workers: int = 0, num_workers: int = 4,
                 label: str = "single_server_krum", **kwargs) -> None:
        rule = MultiKrum(num_byzantine=num_byzantine_workers)
        if num_workers < rule.minimum_inputs():
            raise ValueError(
                f"Multi-Krum with f={num_byzantine_workers} needs at least "
                f"{rule.minimum_inputs()} workers"
            )
        super().__init__(model_fn=model_fn, train_dataset=train_dataset,
                         num_workers=num_workers, gradient_rule=rule,
                         label=label, **kwargs)
        self.history.config["declared_byzantine_workers"] = num_byzantine_workers
