"""Optimisers.

GuanYu's parameter servers apply a *plain* SGD step
``θ_{t+1} = θ_t − η_t · F(g, ...)`` to stay within the convergence theory, so
:class:`SGD` is the optimiser used by the reproduction experiments.
Momentum-SGD and Adam are provided for the single-machine baselines and for
ablations.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.nn.module import Module


class Optimizer:
    """Base optimiser operating on a module's parameters."""

    def __init__(self, module: Module, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.module = module
        self.learning_rate = learning_rate

    def step(self) -> None:
        """Apply one update using the gradients stored on the parameters."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Clear parameter gradients."""
        self.module.zero_grad()

    def step_flat(self, flat_gradient: np.ndarray) -> None:
        """Apply one update from a flat gradient vector.

        Used by the parameter servers, which receive aggregated gradients as
        flat vectors from the network layer.
        """
        offset = 0
        for param in self.module.parameters():
            count = param.size
            param.grad = flat_gradient[offset: offset + count].reshape(param.shape).copy()
            offset += count
        self.step()


class SGD(Optimizer):
    """Vanilla stochastic gradient descent with optional weight decay."""

    def __init__(self, module: Module, learning_rate: float = 0.01,
                 weight_decay: float = 0.0) -> None:
        super().__init__(module, learning_rate)
        self.weight_decay = weight_decay

    def step(self) -> None:
        for param in self.module.parameters():
            if param.grad is None:
                continue
            update = param.grad
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data -= self.learning_rate * update


class MomentumSGD(Optimizer):
    """SGD with classical (heavy-ball) momentum."""

    def __init__(self, module: Module, learning_rate: float = 0.01,
                 momentum: float = 0.9, weight_decay: float = 0.0) -> None:
        super().__init__(module, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.module.parameters():
            if param.grad is None:
                continue
            update = param.grad
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            velocity = self._velocity.get(id(param))
            if velocity is None:
                velocity = np.zeros_like(param.data)
            velocity = self.momentum * velocity + update
            self._velocity[id(param)] = velocity
            param.data -= self.learning_rate * velocity


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, module: Module, learning_rate: float = 1e-3,
                 betas: Sequence[float] = (0.9, 0.999), eps: float = 1e-8) -> None:
        super().__init__(module, learning_rate)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for param in self.module.parameters():
            if param.grad is None:
                continue
            grad = param.grad
            m = self._m.get(id(param), np.zeros_like(param.data))
            v = self._v.get(id(param), np.zeros_like(param.data))
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / (1.0 - self.beta1 ** t)
            v_hat = v / (1.0 - self.beta2 ** t)
            param.data -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
