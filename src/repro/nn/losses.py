"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor
from repro.tensor import functional as F


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class targets.

    This is the loss used by every experiment in the paper (top-1 image
    classification on CIFAR-10).
    """

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets)


class MSELoss:
    """Mean squared error between predictions and targets."""

    def __call__(self, predictions: Tensor, targets) -> Tensor:
        targets = targets if isinstance(targets, Tensor) else Tensor(np.asarray(targets))
        diff = predictions - targets
        return (diff * diff).mean()
