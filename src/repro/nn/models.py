"""Model zoo for the reproduction.

:class:`PaperCNN` reproduces the architecture of the paper's Table 1 — the
CIFAR-10 CNN with roughly 1.75 million parameters (two 5x5x64 convolutions,
two 3x3/2 max-poolings, and 384/192/10 fully-connected layers).

The remaining models are deliberately small so that end-to-end distributed
experiments (many workers x many servers x hundreds of steps) remain fast on
a CPU-only machine while exercising exactly the same code paths.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.module import Module, Sequential
from repro.tensor import Tensor


class PaperCNN(Module):
    """The CNN of Table 1 in the paper (~1.75 M parameters).

    Layout (NCHW, CIFAR-10 sized input ``3x32x32``)::

        Conv 5x5x64 (stride 1, SAME)  -> ReLU
        MaxPool 3x3 (stride 2, SAME)
        Conv 5x5x64 (stride 1, SAME)  -> ReLU
        MaxPool 3x3 (stride 2, SAME)
        Flatten -> Dense 384 -> ReLU -> Dense 192 -> ReLU -> Dense 10
    """

    def __init__(self, num_classes: int = 10, in_channels: int = 3,
                 image_size: int = 32, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = Conv2D(in_channels, 64, kernel_size=5, stride=1, padding=2, rng=rng)
        self.pool1 = MaxPool2D(kernel_size=3, stride=2, padding=1)
        self.conv2 = Conv2D(64, 64, kernel_size=5, stride=1, padding=2, rng=rng)
        self.pool2 = MaxPool2D(kernel_size=3, stride=2, padding=1)
        self.relu = ReLU()
        self.flatten = Flatten()
        feature_size = 64 * (image_size // 4) * (image_size // 4)
        self.fc1 = Dense(feature_size, 384, rng=rng)
        self.fc2 = Dense(384, 192, rng=rng)
        self.fc3 = Dense(192, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.pool1(self.relu(self.conv1(x)))
        x = self.pool2(self.relu(self.conv2(x)))
        x = self.flatten(x)
        x = self.relu(self.fc1(x))
        x = self.relu(self.fc2(x))
        return self.fc3(x)


class SmallCNN(Module):
    """A scaled-down CNN with the same topology as :class:`PaperCNN`.

    Used by the benchmark harness to keep wall-clock time manageable; the
    distributed protocol exchanges exactly the same kind of flat parameter
    vectors, only smaller.
    """

    def __init__(self, num_classes: int = 10, in_channels: int = 3,
                 image_size: int = 16, channels: int = 8, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = Conv2D(in_channels, channels, kernel_size=3, stride=1, padding=1, rng=rng)
        self.pool1 = MaxPool2D(kernel_size=2, stride=2)
        self.conv2 = Conv2D(channels, channels, kernel_size=3, stride=1, padding=1, rng=rng)
        self.pool2 = MaxPool2D(kernel_size=2, stride=2)
        self.relu = ReLU()
        self.flatten = Flatten()
        feature_size = channels * (image_size // 4) * (image_size // 4)
        self.fc1 = Dense(feature_size, 32, rng=rng)
        self.fc2 = Dense(32, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.pool1(self.relu(self.conv1(x)))
        x = self.pool2(self.relu(self.conv2(x)))
        x = self.flatten(x)
        x = self.relu(self.fc1(x))
        return self.fc2(x)


class MLP(Module):
    """Multi-layer perceptron over flat feature vectors."""

    def __init__(self, in_features: int, hidden: Sequence[int], num_classes: int,
                 seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        layers = []
        previous = in_features
        for width in hidden:
            layers.append(Dense(previous, width, rng=rng))
            layers.append(ReLU())
            previous = width
        layers.append(Dense(previous, num_classes, rng=rng))
        self.net = Sequential(*layers)
        self.in_features = in_features
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.net(x)


class SoftmaxRegression(Module):
    """Linear softmax classifier — the smallest model exercising the stack."""

    def __init__(self, in_features: int, num_classes: int, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.linear = Dense(in_features, num_classes, rng=rng)
        self.in_features = in_features
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.linear(x)


_MODEL_BUILDERS = {
    "paper_cnn": lambda seed=0, **kw: PaperCNN(seed=seed, **kw),
    "small_cnn": lambda seed=0, **kw: SmallCNN(seed=seed, **kw),
    "mlp": lambda seed=0, in_features=64, hidden=(32,), num_classes=10, **kw: MLP(
        in_features, hidden, num_classes, seed=seed
    ),
    "softmax": lambda seed=0, in_features=64, num_classes=10, **kw: SoftmaxRegression(
        in_features, num_classes, seed=seed
    ),
}


def build_model(name: str, seed: int = 0, **kwargs) -> Module:
    """Build a model by name.

    This is the factory the distributed nodes use so that every node builds
    an *identical* model from the shared seed (GuanYu's ``θ_0`` condition).
    """
    try:
        builder = _MODEL_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown model '{name}'; available: {sorted(_MODEL_BUILDERS)}"
        ) from None
    return builder(seed=seed, **kwargs)
