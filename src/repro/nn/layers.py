"""Standard neural-network layers."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.nn import init as initializers
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.tensor import functional as F

IntOrPair = Union[int, Tuple[int, int]]


class Dense(Module):
    """Fully connected layer ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to learn an additive bias.
    initializer:
        Name of the weight initialiser (see :mod:`repro.nn.init`).
    rng:
        Random generator used for initialisation; pass a seeded generator to
        make model construction deterministic.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        initializer: str = "glorot_uniform",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        init_fn = initializers.get_initializer(initializer)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init_fn((in_features, out_features), rng), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"Dense({self.in_features}, {self.out_features})"


class Conv2D(Module):
    """2-D convolution layer over NCHW inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntOrPair,
        stride: IntOrPair = 1,
        padding: IntOrPair = 0,
        bias: bool = True,
        initializer: str = "he_normal",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        init_fn = initializers.get_initializer(initializer)
        kernel = kernel_size if isinstance(kernel_size, tuple) else (kernel_size, kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel[0], kernel[1])
        self.weight = Parameter(init_fn(shape, rng), name="weight")
        self.bias = Parameter(np.zeros(out_channels), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Conv2D({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding})"
        )


class MaxPool2D(Module):
    """Max-pooling layer over NCHW inputs."""

    def __init__(self, kernel_size: IntOrPair, stride: IntOrPair = None,
                 padding: IntOrPair = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"MaxPool2D(kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding})"
        )


class Flatten(Module):
    """Flatten every dimension except the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return F.flatten(x)


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    """Logistic-sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Dropout(Module):
    """Inverted dropout; active only in training mode.

    Each node in a distributed deployment draws its own dropout mask, so the
    layer takes an optional generator for reproducible experiments.
    """

    def __init__(self, rate: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)
