"""Weight initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so that
models built by different (simulated) nodes from the same seed are
bit-identical — a requirement of GuanYu's initial condition
``θ_0^(i) = θ_0`` for every correct parameter server.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def zeros(shape: Tuple[int, ...], rng: np.random.Generator = None) -> np.ndarray:
    """All-zeros initialisation (used for biases)."""
    return np.zeros(shape)


def uniform(shape: Tuple[int, ...], rng: np.random.Generator,
            low: float = -0.05, high: float = 0.05) -> np.ndarray:
    """Uniform initialisation in ``[low, high)``."""
    return rng.uniform(low, high, size=shape)


def normal(shape: Tuple[int, ...], rng: np.random.Generator,
           std: float = 0.05) -> np.ndarray:
    """Gaussian initialisation with the given standard deviation."""
    return rng.normal(0.0, std, size=shape)


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:            # dense: (in, out)
        fan_in, fan_out = shape
    elif len(shape) == 4:          # conv: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape))
    return fan_in, fan_out


def glorot_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation (TensorFlow's historical default)."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialisation suited to ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


INITIALIZERS = {
    "zeros": zeros,
    "uniform": uniform,
    "normal": normal,
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
}


def get_initializer(name: str):
    """Look up an initialiser by name."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        raise KeyError(
            f"unknown initializer '{name}'; available: {sorted(INITIALIZERS)}"
        ) from None
