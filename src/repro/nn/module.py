"""Base classes for neural-network modules.

The distributed protocol of GuanYu exchanges *flat parameter vectors*
(``θ ∈ R^d``) and *flat gradient vectors*.  :class:`Module` therefore exposes,
in addition to the usual layer-composition interface, a flat-vector API:

* :meth:`Module.get_flat_parameters` returns all parameters concatenated into
  one ``numpy`` vector,
* :meth:`Module.set_flat_parameters` installs such a vector back into the
  layers,
* :meth:`Module.get_flat_gradient` returns the concatenated gradients after a
  backward pass.

This mirrors how the original implementation converts TensorFlow tensors to
numpy arrays before serialising them into protocol buffers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable parameter."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically for parameter iteration.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------ #
    # Attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    # ------------------------------------------------------------------ #
    # Parameter iteration
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs, depth-first and ordered."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """Return all parameters as a list (stable order)."""
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(param.size for param in self.parameters()))

    def zero_grad(self) -> None:
        """Reset gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # Train / eval switches
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set the module (and children) to training mode."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set the module (and children) to evaluation mode."""
        return self.train(False)

    # ------------------------------------------------------------------ #
    # Flat parameter / gradient interface (used by the distributed layer)
    # ------------------------------------------------------------------ #
    def parameter_shapes(self) -> List[Tuple[int, ...]]:
        """Shapes of all parameters, in iteration order."""
        return [param.shape for param in self.parameters()]

    def get_flat_parameters(self) -> np.ndarray:
        """Concatenate all parameters into a single 1-D float64 vector."""
        params = self.parameters()
        if not params:
            return np.zeros(0)
        return np.concatenate([param.data.reshape(-1) for param in params])

    def set_flat_parameters(self, flat: np.ndarray) -> None:
        """Install a flat vector produced by :meth:`get_flat_parameters`."""
        flat = np.asarray(flat, dtype=np.float64)
        expected = self.num_parameters()
        if flat.size != expected:
            raise ValueError(
                f"flat parameter vector has {flat.size} entries, expected {expected}"
            )
        offset = 0
        for param in self.parameters():
            count = param.size
            param.data[...] = flat[offset: offset + count].reshape(param.shape)
            offset += count

    def get_flat_gradient(self) -> np.ndarray:
        """Concatenate parameter gradients into one vector (zeros if absent)."""
        pieces = []
        for param in self.parameters():
            if param.grad is None:
                pieces.append(np.zeros(param.size))
            else:
                pieces.append(param.grad.reshape(-1))
        if not pieces:
            return np.zeros(0)
        return np.concatenate(pieces)

    def apply_flat_gradient(self, flat_grad: np.ndarray, learning_rate: float) -> None:
        """Apply a plain SGD step ``θ ← θ − η·g`` from a flat gradient."""
        flat_grad = np.asarray(flat_grad, dtype=np.float64)
        offset = 0
        for param in self.parameters():
            count = param.size
            piece = flat_grad[offset: offset + count].reshape(param.shape)
            param.data -= learning_rate * piece
            offset += count

    # ------------------------------------------------------------------ #
    # State dict (checkpointing)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of all parameters keyed by their qualified name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters from a :meth:`state_dict` mapping."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.shape}"
                )
            param.data[...] = value


class Sequential(Module):
    """Composition of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self.layers.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
