"""Neural-network layers, models, losses and optimisers.

This package plays the role of the TensorFlow graph-construction APIs in the
original GuanYu implementation: it defines the models whose gradients the
workers compute and whose parameters the parameter servers hold.

Highlights
----------
* :class:`Module` — base class with named parameters and a flat-vector
  interface (:meth:`Module.get_flat_parameters` /
  :meth:`Module.set_flat_parameters`) which is what the distributed protocol
  exchanges over the network.
* :class:`PaperCNN` — the exact CNN of the paper's Table 1 (~1.75 M params).
* :class:`MLP`, :class:`SmallCNN`, :class:`SoftmaxRegression` — scaled-down
  models used to keep the CPU-only experiments fast.
* :class:`SGD`, :class:`MomentumSGD`, :class:`Adam` — optimisers.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.models import MLP, PaperCNN, SmallCNN, SoftmaxRegression, build_model
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, Adam, MomentumSGD, Optimizer
from repro.nn.schedules import (
    ConstantSchedule,
    InverseTimeDecay,
    LearningRateSchedule,
    StepDecay,
)

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "Flatten",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "PaperCNN",
    "SmallCNN",
    "MLP",
    "SoftmaxRegression",
    "build_model",
    "CrossEntropyLoss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "MomentumSGD",
    "Adam",
    "LearningRateSchedule",
    "ConstantSchedule",
    "InverseTimeDecay",
    "StepDecay",
]
