"""Learning-rate schedules.

GuanYu's convergence proof requires the classic Robbins–Monro conditions on
the learning-rate sequence: ``Σ η_t = ∞`` and ``Σ η_t² < ∞``.
:class:`InverseTimeDecay` satisfies both; :class:`ConstantSchedule` (used by
the paper's experiments with ``η = 0.001``) does not satisfy the second and
is provided for fidelity with the experimental section and for ablations.
"""

from __future__ import annotations


class LearningRateSchedule:
    """Base class mapping a step index to a learning rate."""

    def __call__(self, step: int) -> float:
        raise NotImplementedError

    def satisfies_robbins_monro(self) -> bool:
        """Whether the schedule satisfies ``Ση=∞`` and ``Ση²<∞``."""
        raise NotImplementedError


class ConstantSchedule(LearningRateSchedule):
    """Constant learning rate (paper experiments use 0.001)."""

    def __init__(self, learning_rate: float = 0.001) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate

    def __call__(self, step: int) -> float:
        return self.learning_rate

    def satisfies_robbins_monro(self) -> bool:
        return False


class InverseTimeDecay(LearningRateSchedule):
    """``η_t = η_0 / (1 + decay · t)^power`` with ``power ∈ (0.5, 1]``.

    With ``power = 1`` the sequence is ``Θ(1/t)`` which satisfies the
    Robbins–Monro conditions required by the convergence theorem.
    """

    def __init__(self, initial: float = 0.05, decay: float = 0.01,
                 power: float = 1.0) -> None:
        if initial <= 0 or decay <= 0:
            raise ValueError("initial and decay must be positive")
        if not 0.5 < power <= 1.0:
            raise ValueError("power must lie in (0.5, 1]")
        self.initial = initial
        self.decay = decay
        self.power = power

    def __call__(self, step: int) -> float:
        return self.initial / (1.0 + self.decay * step) ** self.power

    def satisfies_robbins_monro(self) -> bool:
        return True


class StepDecay(LearningRateSchedule):
    """Piecewise-constant decay: multiply by ``factor`` every ``period`` steps."""

    def __init__(self, initial: float = 0.01, factor: float = 0.5,
                 period: int = 100) -> None:
        if initial <= 0 or not 0 < factor < 1 or period <= 0:
            raise ValueError("invalid StepDecay configuration")
        self.initial = initial
        self.factor = factor
        self.period = period

    def __call__(self, step: int) -> float:
        return self.initial * self.factor ** (step // self.period)

    def satisfies_robbins_monro(self) -> bool:
        # Geometric decay sums to a finite value, violating Ση=∞.
        return False


def partial_sums(schedule: LearningRateSchedule, steps: int) -> tuple:
    """Return ``(Σ η_t, Σ η_t²)`` over the first ``steps`` steps.

    A numeric helper used by the theory tests to illustrate the behaviour of
    the different schedules.
    """
    total = 0.0
    total_sq = 0.0
    for t in range(steps):
        eta = schedule(t)
        total += eta
        total_sq += eta * eta
    return total, total_sq
