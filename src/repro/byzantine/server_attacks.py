"""Byzantine parameter-server behaviours (model attacks)."""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from repro.byzantine.base import AttackContext, ServerAttack


class CorruptedModelAttack(ServerAttack):
    """Send a heavily corrupted model (honest model plus large noise).

    Mirrors the paper's severe attack in which a Byzantine server sends "bad
    data ... compared to the correct one it should send".
    """

    name = "corrupted_model"

    def __init__(self, noise_scale: float = 50.0) -> None:
        if noise_scale <= 0:
            raise ValueError("noise_scale must be positive")
        self.noise_scale = noise_scale

    def corrupt_model(self, context: AttackContext) -> np.ndarray:
        noise = context.rng.normal(0.0, self.noise_scale,
                                   size=context.honest_value.shape)
        return context.honest_value + noise


class RandomModelAttack(ServerAttack):
    """Send a model drawn from a wide Gaussian, unrelated to the true model."""

    name = "random_model"

    def __init__(self, scale: float = 100.0) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale

    def corrupt_model(self, context: AttackContext) -> np.ndarray:
        return context.rng.normal(0.0, self.scale, size=context.honest_value.shape)


class EquivocationAttack(ServerAttack):
    """Send *different* corrupted models to different recipients.

    This is the scheme the paper explicitly experiments with ("a parameter
    server sends different (bad) models to different workers in the same
    iteration").  Each recipient gets the honest model shifted in a
    recipient-specific random direction, so no two receivers can compare
    notes and see the same value.
    """

    name = "equivocation"

    def __init__(self, magnitude: float = 25.0) -> None:
        if magnitude <= 0:
            raise ValueError("magnitude must be positive")
        self.magnitude = magnitude

    def corrupt_model(self, context: AttackContext) -> np.ndarray:
        # Derive a deterministic per-recipient direction so that the same
        # recipient consistently receives the same lie within a step.  The
        # seed is a stable digest, not Python's per-process-salted hash():
        # results must be bit-reproducible across processes (the campaign
        # engine runs scenarios in multiprocessing pool workers).
        material = f"{context.recipient}|{context.step}".encode("utf-8")
        recipient_seed = int.from_bytes(
            hashlib.sha256(material).digest()[:4], "big")
        recipient_rng = np.random.default_rng(recipient_seed)
        direction = recipient_rng.normal(0.0, 1.0, size=context.honest_value.shape)
        norm = np.linalg.norm(direction)
        if norm > 0:
            direction = direction / norm
        scale = self.magnitude * max(1.0, float(np.linalg.norm(context.honest_value)))
        return context.honest_value + scale * direction


class StaleModelAttack(ServerAttack):
    """Always send the initial model, never making progress.

    A subtle attack: the value is plausible (it was once a correct model) but
    frozen in time, attempting to hold the median back.
    """

    name = "stale_model"

    def __init__(self) -> None:
        self._frozen: Optional[np.ndarray] = None

    def corrupt_model(self, context: AttackContext) -> np.ndarray:
        if self._frozen is None:
            self._frozen = np.array(context.honest_value, copy=True)
        return self._frozen.copy()


class SilentServer(ServerAttack):
    """Never respond to any request."""

    name = "silent_server"

    def corrupt_model(self, context: AttackContext) -> Optional[np.ndarray]:
        return None
