"""Registry mapping attack names to behaviour classes."""

from __future__ import annotations

from typing import Dict, List, Type, Union

from repro.byzantine.base import ServerAttack, WorkerAttack
from repro.byzantine.server_attacks import (
    CorruptedModelAttack,
    EquivocationAttack,
    RandomModelAttack,
    SilentServer,
    StaleModelAttack,
)
from repro.byzantine.worker_attacks import (
    LabelFlipPoisoning,
    LittleIsEnoughAttack,
    RandomGradientAttack,
    ReversedGradientAttack,
    SignFlipAttack,
    SilentWorker,
)

AttackClass = Union[Type[WorkerAttack], Type[ServerAttack]]

_REGISTRY: Dict[str, AttackClass] = {}


def register_attack(attack_class: AttackClass) -> AttackClass:
    """Register an attack class under its :attr:`name` attribute."""
    name = attack_class.name
    if not name or name.startswith("abstract"):
        raise ValueError("attack classes must define a non-empty 'name'")
    _REGISTRY[name] = attack_class
    return attack_class


for _attack in (RandomGradientAttack, ReversedGradientAttack, SignFlipAttack,
                LittleIsEnoughAttack, LabelFlipPoisoning, SilentWorker,
                CorruptedModelAttack, RandomModelAttack, EquivocationAttack,
                StaleModelAttack, SilentServer):
    register_attack(_attack)


def available_attacks() -> List[str]:
    """Names of all registered attacks, sorted."""
    return sorted(_REGISTRY)


def get_attack(name: str, **kwargs) -> Union[WorkerAttack, ServerAttack]:
    """Instantiate a registered attack by name."""
    try:
        attack_class = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown attack '{name}'; available: {available_attacks()}"
        ) from None
    return attack_class(**kwargs)
