"""Byzantine behaviours for workers and parameter servers.

The paper (Section 5.1 and 5.4) groups Byzantine actions into four classes:

1. sending corrupted gradients to parameter servers (worker attack),
2. sending corrupted parameter vectors/models to workers (server attack),
3. sending *different* replies to different participants (equivocation),
4. not responding at all (silence).

Each class is implemented here, plus stronger attacks from the follow-up
literature (reversed gradients, sign flipping, "a little is enough"-style
variance attacks, label-flip data poisoning) for the attack-sweep ablation.
"""

from repro.byzantine.base import AttackContext, ServerAttack, WorkerAttack
from repro.byzantine.worker_attacks import (
    LabelFlipPoisoning,
    LittleIsEnoughAttack,
    RandomGradientAttack,
    ReversedGradientAttack,
    SignFlipAttack,
    SilentWorker,
)
from repro.byzantine.server_attacks import (
    CorruptedModelAttack,
    EquivocationAttack,
    RandomModelAttack,
    SilentServer,
    StaleModelAttack,
)
from repro.byzantine.registry import available_attacks, get_attack, register_attack

__all__ = [
    "AttackContext",
    "WorkerAttack",
    "ServerAttack",
    "RandomGradientAttack",
    "ReversedGradientAttack",
    "SignFlipAttack",
    "LittleIsEnoughAttack",
    "LabelFlipPoisoning",
    "SilentWorker",
    "CorruptedModelAttack",
    "RandomModelAttack",
    "EquivocationAttack",
    "StaleModelAttack",
    "SilentServer",
    "get_attack",
    "register_attack",
    "available_attacks",
]
