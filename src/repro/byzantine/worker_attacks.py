"""Byzantine worker behaviours (gradient attacks and data poisoning)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.byzantine.base import AttackContext, WorkerAttack


class RandomGradientAttack(WorkerAttack):
    """Send a totally corrupted gradient drawn from a wide Gaussian.

    This is the "severe attack" of the paper's Section 5.1: the Byzantine
    worker sends data unrelated to (and much larger than) the correct
    gradient, which pulls averaging-based learning out of the convergence
    region immediately.
    """

    name = "random_gradient"

    def __init__(self, scale: float = 100.0) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale

    def corrupt_gradient(self, context: AttackContext) -> np.ndarray:
        return context.rng.normal(0.0, self.scale, size=context.honest_value.shape)


class ReversedGradientAttack(WorkerAttack):
    """Send the honest gradient multiplied by a large negative factor.

    Drives gradient *ascent* on the loss if it survives aggregation.
    """

    name = "reversed_gradient"

    def __init__(self, factor: float = 10.0) -> None:
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.factor = factor

    def corrupt_gradient(self, context: AttackContext) -> np.ndarray:
        return -self.factor * context.honest_value


class SignFlipAttack(WorkerAttack):
    """Flip the sign of every coordinate of the honest gradient."""

    name = "sign_flip"

    def corrupt_gradient(self, context: AttackContext) -> np.ndarray:
        return -context.honest_value


class LittleIsEnoughAttack(WorkerAttack):
    """Variance-scaled perturbation ("a little is enough", Baruch et al.).

    The omniscient adversary observes the correct workers' gradients, then
    sends ``mean - z * std`` coordinate-wise.  With a carefully small ``z``
    the attack stays within the natural noise envelope and can defeat naive
    per-coordinate defences while remaining hard to filter.
    """

    name = "little_is_enough"

    def __init__(self, z_factor: float = 1.5) -> None:
        self.z_factor = z_factor

    def corrupt_gradient(self, context: AttackContext) -> np.ndarray:
        peers = [np.asarray(v) for v in context.peer_values]
        if len(peers) < 2:
            # Without visibility of peers, fall back to attacking the honest value.
            return -self.z_factor * context.honest_value
        stacked = np.stack(peers)
        mean = stacked.mean(axis=0)
        std = stacked.std(axis=0)
        return mean - self.z_factor * std


class LabelFlipPoisoning(WorkerAttack):
    """Data poisoning: train on flipped labels and send the honest-looking
    gradient of the poisoned objective.

    This models the paper's motivating scenario (mislabelled content
    poisoning a recommender) rather than an arbitrary-message attack: the
    gradient is a *real* gradient, just of the wrong objective.
    """

    name = "label_flip"

    def __init__(self, num_classes: int = 10) -> None:
        if num_classes < 2:
            raise ValueError("num_classes must be at least 2")
        self.num_classes = num_classes

    def poison_batch(self, features: np.ndarray, labels: np.ndarray,
                     context: AttackContext):
        flipped = (self.num_classes - 1) - np.asarray(labels)
        return features, flipped

    def corrupt_gradient(self, context: AttackContext) -> np.ndarray:
        # The gradient was already computed on the poisoned batch.
        return context.honest_value


class SilentWorker(WorkerAttack):
    """Never respond.

    The paper notes this is the least harmful Byzantine option (even vanilla
    deployments converge with a silent node); it exists to exercise the
    quorum logic under missing messages.
    """

    name = "silent_worker"

    def corrupt_gradient(self, context: AttackContext) -> Optional[np.ndarray]:
        return None
