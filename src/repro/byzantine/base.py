"""Interfaces shared by all Byzantine behaviours.

The adversary of the paper is *omniscient*: it can read the memory of every
node and every in-flight message, and all Byzantine nodes cooperate as one
entity.  :class:`AttackContext` carries that knowledge (the honest value the
node would have sent, the peer values the adversary can observe, the current
step) into the attack implementations, which are otherwise pure functions.
The adversary is not omnipotent: attacks only decide what the Byzantine
node *sends*; they never modify other nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


@dataclass
class AttackContext:
    """Information available to the (omniscient) adversary when attacking.

    Attributes
    ----------
    step:
        Current learning step ``t``.
    honest_value:
        The vector (gradient or parameter vector) the node would send if it
        were honest.
    peer_values:
        Vectors the adversary can observe from other nodes at this step
        (e.g. the honest workers' gradients), used by omniscient attacks such
        as "a little is enough".
    rng:
        Random generator owned by the adversary (seeded per experiment).
    recipient:
        Identifier of the node the message is being sent to; equivocation
        attacks send different values to different recipients.
    model:
        The parameter vector the sending node currently holds (the model a
        Byzantine worker computed its honest gradient at) — part of the
        paper's omniscient observation set, exposed to the stateful
        adversaries of :mod:`repro.adversary` via
        ``RoundObservation.model``.  The built-in strategies do not consume
        it yet; it costs nothing to pass (the trainers hand over a vector
        they already hold).  ``None`` where the caller has no model in
        scope.
    """

    step: int
    honest_value: np.ndarray
    peer_values: Sequence[np.ndarray] = field(default_factory=list)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)
    recipient: Optional[str] = None
    model: Optional[np.ndarray] = None


class WorkerAttack:
    """A Byzantine worker behaviour.

    Subclasses implement :meth:`corrupt_gradient`, mapping the honest
    gradient the worker computed to the gradient actually sent to a given
    parameter server.  Returning ``None`` means "stay silent towards that
    recipient".
    """

    name: str = "abstract_worker_attack"

    def corrupt_gradient(self, context: AttackContext) -> Optional[np.ndarray]:
        raise NotImplementedError

    def poison_batch(self, features: np.ndarray, labels: np.ndarray,
                     context: AttackContext):
        """Optionally poison the local training batch (data poisoning).

        The default is a no-op; :class:`LabelFlipPoisoning` overrides it.
        Returns the possibly-modified ``(features, labels)``.
        """
        return features, labels

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"


class ServerAttack:
    """A Byzantine parameter-server behaviour.

    Subclasses implement :meth:`corrupt_model`, mapping the model the server
    would honestly send to the model actually sent to a given recipient
    (worker or fellow server).  Returning ``None`` means silence.
    """

    name: str = "abstract_server_attack"

    def corrupt_model(self, context: AttackContext) -> Optional[np.ndarray]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"
