"""repro — reproduction of "Genuinely Distributed Byzantine Machine Learning".

The package implements GuanYu (El-Mhamdi, Guerraoui, Guirguis, Rouault;
PODC 2020): SGD-based distributed learning that tolerates up to one third of
Byzantine *parameter servers* in addition to one third of Byzantine workers,
over an asynchronous network.

Sub-packages
------------
``repro.tensor``       reverse-mode autograd engine (TensorFlow substitute)
``repro.nn``           layers, models (incl. the paper's Table 1 CNN), optimisers
``repro.data``         synthetic datasets (CIFAR-10 substitute) and sharding
``repro.hetero``       non-i.i.d. partitions and heterogeneous worker profiles
``repro.aggregation``  gradient aggregation rules (median, Multi-Krum, ...)
``repro.byzantine``    worker and server attack behaviours
``repro.network``      seeded asynchronous network simulator
``repro.runtime``      cost models and the thread-based runtime
``repro.core``         the GuanYu protocol and its baselines
``repro.metrics``      accuracy, throughput, training histories
``repro.theory``       contraction / alignment / breakdown-point checks

Stable API (see :mod:`repro.api`)
---------------------------------
The blessed, backward-compatible surface is importable straight from the
package root: :func:`run` (execute one scenario on the runtime its spec
describes), :class:`ScenarioSpec` / :class:`CampaignSpec` (declarative
scenarios and grids), :class:`ResultStore` (the indexed result store)
and :func:`get_registry` / :func:`get_tracer` (ambient telemetry and
tracing).  These names resolve lazily so ``import repro`` stays light;
deep imports (``from repro.campaign import ResultStore``, ...) keep
working unchanged.

>>> from repro import ResultStore, ScenarioSpec, run  # doctest: +SKIP
>>> result = run(ScenarioSpec(name="demo"), store=ResultStore("results/"))
... # doctest: +SKIP

Quickstart
----------
>>> from repro import ClusterConfig, GuanYuTrainer
>>> from repro.data import make_blobs_dataset
>>> from repro.nn import build_model
>>> data = make_blobs_dataset(num_samples=400, num_features=4, seed=1)
>>> train, test = data.split(0.8, seed=1)
>>> trainer = GuanYuTrainer(
...     config=ClusterConfig(num_servers=4, num_workers=6),
...     model_fn=lambda: build_model("softmax", in_features=4, num_classes=3),
...     train_dataset=train, test_dataset=test, batch_size=16, seed=1)
>>> history = trainer.run(num_steps=5, eval_every=5)
>>> len(history) == 5
True
"""

from repro.core import (
    ClusterConfig,
    DistributedTrainer,
    GuanYuTrainer,
    SingleServerKrumTrainer,
    VanillaTrainer,
)

__version__ = "1.0.0"

#: names served lazily from :mod:`repro.api` (PEP 562) — campaign and
#: runtime machinery must not load on ``import repro`` (heavy, and some
#: consumers only want the core trainers).
_API_EXPORTS = (
    "run",
    "ScenarioSpec",
    "CampaignSpec",
    "ResultStore",
    "StoredResult",
    "ScenarioResult",
    "get_registry",
    "get_tracer",
)

__all__ = [
    "ClusterConfig",
    "DistributedTrainer",
    "GuanYuTrainer",
    "VanillaTrainer",
    "SingleServerKrumTrainer",
    "__version__",
    *_API_EXPORTS,
]


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
