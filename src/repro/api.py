"""The stable public API of :mod:`repro`.

Nine PRs grew the system behind many import paths; this module is the
one that is *blessed*: everything here is re-exported from the package
root, documented, and kept backward compatible.  A user's whole workflow
fits in it::

    from repro import CampaignSpec, ResultStore, ScenarioSpec, run

    spec = ScenarioSpec(name="demo", num_workers=6, num_servers=3,
                        declared_byzantine_workers=1)
    store = ResultStore("results/")
    result = run(spec, store=store)          # ScenarioResult
    result.history.final_accuracy()
    store.query(gradient_rule="median")      # index-backed, lazy results

The surface:

* :func:`repro.runtime.run` — one front door for executing a scenario on
  whichever runtime its spec describes, with store caching;
* :class:`~repro.campaign.spec.ScenarioSpec` /
  :class:`~repro.campaign.spec.CampaignSpec` — declarative scenario and
  grid descriptions with content-address hashing;
* :class:`~repro.campaign.store.ResultStore` — the indexed,
  self-verifying result store (``query``/``summary_rows``/``fsck``/``gc``);
* :func:`~repro.obs.telemetry.get_registry` /
  :func:`~repro.obs.tracer.get_tracer` — the ambient telemetry registry
  and structured tracer.

Deep imports (``from repro.campaign import ResultStore``, ...) keep
working — this module adds a stable spelling, it does not remove any.
"""

from repro.campaign.spec import CampaignSpec, ScenarioSpec
from repro.campaign.store import ResultStore, StoredResult
from repro.obs.telemetry import get_registry
from repro.obs.tracer import get_tracer
from repro.runtime.facade import ScenarioResult, run

__all__ = [
    "run",
    "ScenarioSpec",
    "CampaignSpec",
    "ResultStore",
    "StoredResult",
    "ScenarioResult",
    "get_registry",
    "get_tracer",
]
