"""Throughput and time-to-accuracy metrics (the paper's Section 5.2).

All rates here are computed over **simulated** time carried by the
histories, or — for real wall-clock measurements — over the monotonic
clocks used by :mod:`repro.obs` and :func:`repro.benchtools.util.best_of`
(``time.monotonic``/``time.perf_counter``).  ``time.time()`` is never used
for durations anywhere in the metrics layer: wall-clock jumps (NTP steps,
manual adjustment) would corrupt rates.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple, TypeVar

from repro.obs.history import TrainingHistory

T = TypeVar("T")


def throughput_updates_per_second(history: TrainingHistory) -> float:
    """Model updates per (simulated) second — the paper's throughput metric."""
    if len(history) < 2:
        return float("nan")
    total_time = history.total_time()
    if total_time <= 0:
        return float("inf")
    return history.total_steps() / total_time


def time_to_accuracy(history: TrainingHistory, target: float) -> Optional[float]:
    """Simulated time at which ``target`` accuracy is first reached.

    Returns ``None`` when the run never reaches the target (e.g. the vanilla
    baseline under attack in Figure 4).
    """
    for record in history.records:
        if record.test_accuracy is not None and record.test_accuracy >= target:
            return record.simulated_time
    return None


def steps_to_accuracy(history: TrainingHistory, target: float) -> Optional[int]:
    """Number of model updates needed to first reach ``target`` accuracy."""
    for record in history.records:
        if record.test_accuracy is not None and record.test_accuracy >= target:
            return record.step
    return None


def overhead_percent(baseline_time: float, system_time: float) -> float:
    """Relative slowdown of ``system_time`` over ``baseline_time`` in percent.

    The paper reports, e.g., "vanilla TF reaches 60 % accuracy ... 65 % better
    than the vanilla deployment of GuanYu"; this helper computes exactly that
    ratio, ``(system − baseline) / baseline × 100``.
    """
    if baseline_time <= 0:
        return float("nan")
    return 100.0 * (system_time - baseline_time) / baseline_time


def measure_wall_clock(fn: Callable[[], T]) -> Tuple[T, float]:
    """Run ``fn`` and return ``(result, elapsed_seconds)``.

    Uses :func:`time.monotonic`, which never jumps backwards, so the
    returned duration is safe to feed into rate computations even across
    NTP corrections.
    """
    start = time.monotonic()
    result = fn()
    return result, time.monotonic() - start
