"""Model quality metrics (top-1 accuracy and loss on a held-out set)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.datasets import Dataset
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.tensor import Tensor, no_grad


def evaluate_accuracy(model: Module, dataset: Dataset, batch_size: int = 256,
                      max_samples: Optional[int] = None) -> float:
    """Top-1 accuracy of ``model`` on ``dataset``.

    This is the paper's "top-1 cross-accuracy": the fraction of correct
    predictions on the testing dataset.
    """
    model.eval()
    total = 0
    correct = 0
    limit = len(dataset) if max_samples is None else min(max_samples, len(dataset))
    with no_grad():
        for start in range(0, limit, batch_size):
            stop = min(start + batch_size, limit)
            features = dataset.features[start:stop]
            labels = dataset.labels[start:stop]
            logits = model(Tensor(features))
            predictions = np.argmax(logits.data, axis=-1)
            correct += int((predictions == labels).sum())
            total += stop - start
    model.train()
    return correct / total if total else 0.0


def evaluate_loss(model: Module, dataset: Dataset, batch_size: int = 256,
                  max_samples: Optional[int] = None) -> float:
    """Mean cross-entropy loss of ``model`` on ``dataset``."""
    model.eval()
    criterion = CrossEntropyLoss()
    losses = []
    weights = []
    limit = len(dataset) if max_samples is None else min(max_samples, len(dataset))
    with no_grad():
        for start in range(0, limit, batch_size):
            stop = min(start + batch_size, limit)
            features = dataset.features[start:stop]
            labels = dataset.labels[start:stop]
            logits = model(Tensor(features))
            losses.append(float(criterion(logits, labels).item()))
            weights.append(stop - start)
    model.train()
    if not losses:
        return float("nan")
    return float(np.average(losses, weights=weights))
