"""Metrics: accuracy, loss tracking, throughput and experiment records.

The per-step record types (:class:`StepRecord`, :class:`TrainingHistory`)
now live in :mod:`repro.obs.history`; they are re-exported here so the
historical ``repro.metrics`` import path keeps working.
"""

from repro.metrics.accuracy import evaluate_accuracy, evaluate_loss
from repro.metrics.throughput import (
    measure_wall_clock,
    overhead_percent,
    throughput_updates_per_second,
    time_to_accuracy,
)
from repro.obs.history import StepRecord, TrainingHistory

__all__ = [
    "evaluate_accuracy",
    "evaluate_loss",
    "StepRecord",
    "TrainingHistory",
    "throughput_updates_per_second",
    "time_to_accuracy",
    "overhead_percent",
    "measure_wall_clock",
]
