"""Metrics: accuracy, loss tracking, throughput and experiment records."""

from repro.metrics.accuracy import evaluate_accuracy, evaluate_loss
from repro.metrics.tracker import StepRecord, TrainingHistory
from repro.metrics.throughput import (
    overhead_percent,
    throughput_updates_per_second,
    time_to_accuracy,
)

__all__ = [
    "evaluate_accuracy",
    "evaluate_loss",
    "StepRecord",
    "TrainingHistory",
    "throughput_updates_per_second",
    "time_to_accuracy",
    "overhead_percent",
]
