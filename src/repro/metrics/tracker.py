"""Back-compat shim: the training history moved to :mod:`repro.obs.history`.

Import from :mod:`repro.obs` (or :mod:`repro.metrics`) in new code; this
module remains so that existing ``from repro.metrics.tracker import ...``
call sites and serialized references keep working unchanged.
"""

from __future__ import annotations

from repro.obs.history import StepRecord, TrainingHistory

__all__ = ["StepRecord", "TrainingHistory"]
