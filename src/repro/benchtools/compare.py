"""Benchmark-regression comparator (the CI ``bench-compare`` steps).

Reads two benchmark JSON files — the current run and a committed baseline —
and fails when any benchmark's **median** wall time regressed by more than
the threshold factor (default 1.30 = +30 %).  Medians, not means: CI
machines have noisy tails, and the median of pytest-benchmark's many rounds
is the stablest single number it reports.

Three input formats are recognised, so every bench artifact the CI produces
is regression-gated against a committed baseline, not just the aggregation
micro-benchmark:

* ``pytest-benchmark`` files (a ``benchmarks`` list) — one entry per
  benchmark ``fullname``, median from its ``stats``;
* ``bench_campaign`` reports (``benchmark == "campaign_seed_sweep"``) —
  the per-replica batched/sequential seconds become two entries;
* ``bench_adversary`` reports (``benchmark == "adversary_overhead"``) —
  one entry per variant's seconds-per-round.

Exit codes: ``0`` all benchmarks within threshold, ``1`` at least one
regression (or a baseline benchmark missing from the current run), ``2``
unusable input files.

Usage::

    python -m repro.benchtools.compare BENCH_aggregation.json \
        benchmarks/baselines/BENCH_aggregation.json --threshold 1.30
    python -m repro.benchtools.compare BENCH_campaign.json \
        benchmarks/baselines/BENCH_campaign.json --threshold 1.60
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple


def load_medians(path: str) -> Dict[str, float]:
    """``name → representative seconds`` from any recognised bench JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    kind = payload.get("benchmark")
    if kind == "campaign_seed_sweep":
        return _campaign_medians(path, payload)
    if kind == "adversary_overhead":
        return _adversary_medians(path, payload)
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise ValueError(f"{path} holds no benchmarks")
    medians = {}
    for entry in benchmarks:
        name = entry.get("fullname") or entry.get("name")
        median = entry.get("stats", {}).get("median")
        if name is None or median is None:
            raise ValueError(f"{path} has a benchmark without name/median")
        medians[str(name)] = float(median)
    return medians


def _campaign_medians(path: str, payload: Dict) -> Dict[str, float]:
    """Comparable numbers of a ``bench_campaign`` report.

    Per-replica seconds (not totals): the replica count is a CLI knob and
    must not masquerade as a perf change when it differs from the
    baseline's.
    """
    medians = {}
    for metric in ("batched_seconds_per_replica",
                   "sequential_seconds_per_replica"):
        value = payload.get(metric)
        if value is None:
            raise ValueError(f"{path} lacks '{metric}'")
        medians[f"campaign_seed_sweep/{metric}"] = float(value)
    return medians


def _adversary_medians(path: str, payload: Dict) -> Dict[str, float]:
    """Comparable numbers of a ``bench_adversary`` report (per round)."""
    variants = payload.get("variants")
    if not isinstance(variants, dict) or not variants:
        raise ValueError(f"{path} holds no adversary variants")
    medians = {}
    for name, row in variants.items():
        value = row.get("seconds_per_round")
        if value is None:
            raise ValueError(f"{path} variant '{name}' lacks "
                             f"'seconds_per_round'")
        medians[f"adversary_overhead/{name}"] = float(value)
    return medians


def load_trace_summary(path: str) -> Optional[Dict]:
    """Load a trace summary for regression attribution.

    Accepts either a compact summary JSON (a dict with a ``"spans"`` key,
    as produced by :meth:`repro.obs.Tracer.summary` and persisted next to
    store entries) or a raw trace JSONL file, which is aggregated here.
    Returns ``None`` when the file is unusable — attribution is best-effort
    decoration, never a comparison failure.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return None
    try:
        payload = json.loads(text)
        if isinstance(payload, dict) and "spans" in payload:
            return payload
        # Any other whole-file JSON (including a one-line JSONL trace,
        # which parses as a single object): try the JSONL path below.
    except json.JSONDecodeError:
        pass
    spans: Dict[str, Dict[str, float]] = {}

    def bucket(name: str) -> Dict[str, float]:
        return spans.setdefault(name, {"count": 0, "total_s": 0.0})

    records = []
    raw_sources = set()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None
        records.append(record)
        if (record.get("kind") == "span" and record.get("dur") is not None
                and record.get("source") is not None):
            raw_sources.add(record["source"])
    for record in records:
        if record.get("kind") == "span" and record.get("dur") is not None:
            entry = bucket(record["name"])
            entry["count"] += 1
            entry["total_s"] += float(record["dur"])
            continue
        # Pool-run campaign traces carry no raw spans — per-scenario
        # summaries are embedded in campaign events instead.  Merged
        # multi-source traces (cluster runs) carry both raw spans and a
        # per-process summary event tagged with the same `source`: skip
        # the summary, its spans are already counted.
        embedded = (record.get("attrs") or {}).get("trace_summary")
        if isinstance(embedded, dict):
            source = record.get("source") \
                if record.get("source") is not None \
                else (record.get("attrs") or {}).get("source")
            if source is not None and source in raw_sources:
                continue
            for name, stats in (embedded.get("spans") or {}).items():
                entry = bucket(name)
                entry["count"] += int(stats.get("count", 0))
                entry["total_s"] += float(stats.get("total_s", 0.0))
    return {"spans": spans} if spans else None


def dominant_phase(summary: Optional[Dict]) -> Optional[str]:
    """Human-readable dominant span of a trace summary, or ``None``."""
    if not summary:
        return None
    spans = summary.get("spans") or {}
    if not spans:
        return None
    name = max(spans, key=lambda span: spans[span].get("total_s", 0.0))
    total = sum(bucket.get("total_s", 0.0) for bucket in spans.values())
    if total <= 0:
        return None
    share = spans[name]["total_s"] / total
    return f"{name} ({share:.0%} of traced time)"


def compare_benchmarks(current: Dict[str, float], baseline: Dict[str, float],
                       threshold: float = 1.30
                       ) -> Tuple[List[Dict], List[str]]:
    """Compare two median maps; returns ``(report rows, failure messages)``.

    A benchmark regresses when ``current > baseline * threshold``.  A
    baseline benchmark missing from the current run also fails — silently
    dropping a benchmark is how perf gates rot.  An **empty** baseline map
    is an error for the same reason: every comparison against it would
    pass vacuously, which is indistinguishable from a working gate in CI
    logs.  Benchmarks new in the current run pass with a note (the
    baseline needs refreshing to cover them).
    """
    if threshold <= 1.0:
        raise ValueError("threshold must exceed 1.0 (a ratio, not a delta)")
    if not baseline:
        raise ValueError(
            "the baseline holds no benchmark entries, so the perf gate "
            "would pass vacuously; regenerate the baseline with the "
            "matching bench tool and commit it")
    rows: List[Dict] = []
    failures: List[str] = []
    for name in sorted(baseline):
        base = baseline[name]
        now = current.get(name)
        if now is None:
            rows.append({"benchmark": name, "baseline_s": base,
                         "current_s": None, "ratio": None,
                         "status": "missing"})
            failures.append(f"{name}: present in baseline but not in the "
                            f"current run")
            continue
        ratio = now / base if base > 0 else float("inf")
        regressed = ratio > threshold
        rows.append({"benchmark": name, "baseline_s": base, "current_s": now,
                     "ratio": ratio,
                     "status": "REGRESSED" if regressed else "ok"})
        if regressed:
            failures.append(
                f"{name}: median {now:.6f}s vs baseline {base:.6f}s "
                f"({ratio:.2f}x > {threshold:.2f}x)")
    for name in sorted(set(current) - set(baseline)):
        rows.append({"benchmark": name, "baseline_s": None,
                     "current_s": current[name], "ratio": None,
                     "status": "new"})
    return rows, failures


def _format_row(row: Dict) -> str:
    def seconds(value: Optional[float]) -> str:
        return f"{value:.6f}" if value is not None else "-"

    ratio = f"{row['ratio']:.2f}x" if row["ratio"] is not None else "-"
    return (f"  {row['status']:<10} {ratio:>7}  "
            f"{seconds(row['baseline_s']):>10} -> "
            f"{seconds(row['current_s']):>10}  {row['benchmark']}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchtools.compare",
        description="Fail on median wall-time regressions vs a baseline.")
    parser.add_argument("current", help="pytest-benchmark JSON of this run")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=1.30,
                        help="failure ratio (default 1.30 = +30%% median)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="optional trace JSONL (or summary JSON) of the "
                             "current run; regressions are annotated with "
                             "its dominant phase")
    args = parser.parse_args(argv)

    try:
        current = load_medians(args.current)
    except FileNotFoundError:
        print(f"bench-compare: error: current-run file '{args.current}' "
              f"does not exist — did the bench step produce it?",
              file=sys.stderr)
        return 2
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"bench-compare: error: unusable current-run file "
              f"'{args.current}': {exc}", file=sys.stderr)
        return 2
    try:
        baseline = load_medians(args.baseline)
    except FileNotFoundError:
        print(f"bench-compare: error: committed baseline '{args.baseline}' "
              f"does not exist; generate it with the matching bench tool "
              f"and commit it (see benchmarks/baselines/)", file=sys.stderr)
        return 2
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"bench-compare: error: unusable baseline "
              f"'{args.baseline}': {exc}", file=sys.stderr)
        return 2
    try:
        rows, failures = compare_benchmarks(current, baseline,
                                            threshold=args.threshold)
    except ValueError as exc:
        print(f"bench-compare: error: {exc}", file=sys.stderr)
        return 2

    print(f"bench-compare: {len(rows)} benchmark(s), "
          f"threshold {args.threshold:.2f}x on the median")
    for row in rows:
        print(_format_row(row))
    if failures:
        phase = dominant_phase(load_trace_summary(args.trace)) \
            if args.trace else None
        print(f"\nbench-compare: {len(failures)} regression(s):",
              file=sys.stderr)
        for failure in failures:
            if phase is not None:
                failure = f"{failure} [dominant phase: {phase}]"
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench-compare: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
