"""Benchmark tooling behind the CI performance gate.

* :mod:`repro.benchtools.compare` — compares a fresh pytest-benchmark JSON
  against a committed baseline and fails on median wall-time regressions
  (``python -m repro.benchtools.compare current.json baseline.json``);
* :mod:`repro.benchtools.bench_campaign` — times a seed-sweep campaign on
  the batched multi-replica runtime against sequential execution and emits
  ``BENCH_campaign.json`` for the perf trajectory.

Baselines live in ``benchmarks/baselines/``; ``docs/performance.md``
documents how to read and update them.

NOTE: submodules are imported directly (``repro.benchtools.compare``) and
deliberately not re-exported here — both are ``python -m`` entry points,
and importing them from the package would shadow ``runpy``'s module
execution with a second import.
"""
