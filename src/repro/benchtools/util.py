"""Shared benchmarking utilities: monotonic timing and run metadata.

Every benchmark in :mod:`repro.benchtools` used to carry its own copy of
the best-of-N ``perf_counter`` timing loop and an ad-hoc machine snippet;
they are centralised here so that all bench JSON artifacts time the same
way (monotonic clock, best run wins) and carry a comparable
``host``/``python``/``commit`` metadata block.
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
from typing import Any, Callable, Dict, Tuple, TypeVar

T = TypeVar("T")

__all__ = ["best_of", "machine_metadata"]


def best_of(repeats: int, fn: Callable[[], T]) -> Tuple[float, T]:
    """Run ``fn`` ``repeats`` times; return ``(best_seconds, last_result)``.

    Best-of-N with :func:`time.perf_counter` is the standard defence
    against noisy-neighbour intervals on shared CI runners — a single
    unlucky timing cannot trip a regression gate with no code change.  The
    *last* result is returned (all repeats compute the same thing).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    result: T = None  # type: ignore[assignment]
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _commit_hash() -> str:
    """Current commit: ``GITHUB_SHA`` on CI, ``git rev-parse`` locally."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True, timeout=5,
                              check=False)
        if proc.returncode == 0:
            return proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def machine_metadata() -> Dict[str, Any]:
    """The ``host``/``python``/``commit`` block shared by bench artifacts."""
    return {
        "host": platform.node() or "unknown",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "commit": _commit_hash(),
    }
