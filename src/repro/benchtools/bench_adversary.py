"""Adversary-engine micro-benchmark: per-round overhead vs legacy attacks.

Times the same small GuanYu scenario four ways — honest, legacy stateless
attack (``little_is_enough`` through the per-node seam), the collusion
adversary, and the omniscient inner-optimisation adversary — and reports
the per-round cost each adds over the honest run.  The interesting number
is the omniscient adversary's inner search (a few dozen GAR evaluations
per round); the engine itself (coordinator, plan cache, adapters) should
be noise.

Writes ``BENCH_adversary.json``; CI uploads it as an artifact next to
``BENCH_aggregation.json`` so the overhead trajectory is comparable across
commits.

Usage::

    python -m repro.benchtools.bench_adversary --steps 30 \
        --output BENCH_adversary.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional

from repro.benchtools.util import best_of, machine_metadata


def run_benchmark(steps: int = 30, repeats: int = 1) -> Dict:
    """Time honest / legacy / adversary variants; returns the report dict.

    ``repeats > 1`` keeps the best run per variant (see
    :func:`repro.benchtools.util.best_of`) — the usual defence against
    noisy-neighbour intervals on shared CI runners.
    """
    from repro.campaign.spec import ScenarioSpec
    from repro.runtime import run as run_scenario

    repeats = max(repeats, 1)
    variants = {
        "honest": {},
        "legacy_little_is_enough": {
            "worker_attack": {"name": "little_is_enough"}},
        "adversary_collusion": {"adversary": {"name": "collusion"}},
        "adversary_omniscient": {
            "adversary": {"name": "omniscient_descent"}},
    }
    seconds: Dict[str, float] = {}
    for name, fields in variants.items():
        spec = ScenarioSpec(name=name, num_steps=steps, **fields)
        seconds[name], _ = best_of(repeats,
                                   lambda spec=spec: run_scenario(spec))

    honest = seconds["honest"]
    report = {
        "benchmark": "adversary_overhead",
        "steps": steps,
        "repeats": repeats,
        "machine": machine_metadata(),
        "variants": {
            name: {
                "seconds": value,
                "seconds_per_round": value / steps,
                "overhead_vs_honest_per_round": (value - honest) / steps,
                "relative_to_honest": value / honest if honest > 0 else None,
            }
            for name, value in seconds.items()
        },
    }
    legacy = seconds["legacy_little_is_enough"]
    report["engine_overhead_per_round"] = (
        (seconds["adversary_collusion"] - legacy) / steps)
    return report


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="adversary-engine per-round overhead benchmark")
    parser.add_argument("--steps", type=int, default=30)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--output", default="BENCH_adversary.json")
    parser.add_argument("--max-slowdown", type=float, default=None,
                        help="fail when the omniscient adversary is slower "
                             "than this factor of the honest run")
    args = parser.parse_args(argv)

    report = run_benchmark(steps=args.steps, repeats=args.repeats)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    for name, row in report["variants"].items():
        print(f"{name:<26} {row['seconds']:.3f}s "
              f"({row['seconds_per_round'] * 1000:.2f} ms/round, "
              f"{row['relative_to_honest']:.2f}x honest)")
    print(f"engine overhead (collusion vs legacy): "
          f"{report['engine_overhead_per_round'] * 1000:.3f} ms/round")
    print(f"wrote {args.output}")

    if args.max_slowdown is not None:
        slowdown = report["variants"]["adversary_omniscient"][
            "relative_to_honest"]
        if slowdown > args.max_slowdown:
            print(f"FAIL: omniscient adversary is {slowdown:.2f}x honest "
                  f"(limit {args.max_slowdown:.2f}x)", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
