"""Seed-sweep campaign benchmark: batched runtime vs sequential execution.

Times ``R`` seeds of the small-scale GuanYu scenario twice — once as one
vectorised multi-replica execution (:mod:`repro.batch`), once as ``R``
sequential simulations — verifies the histories are bit-identical, and
writes the result as ``BENCH_campaign.json``.  CI uploads the file as an
artifact on every run, populating the repository's performance trajectory;
``--min-speedup`` turns it into a gate.

``--lanes`` shards the batched side's replica lanes over a process pool
and ``--kernel-backend`` selects the :mod:`repro.kernels` backend for both
sides; the report records both (plus the host's core count) so multicore
artifacts such as ``BENCH_campaign_multicore.json`` are self-describing.

Usage::

    python -m repro.benchtools.bench_campaign --replicas 16 \
        --output BENCH_campaign.json --min-speedup 5.0
    python -m repro.benchtools.bench_campaign --replicas 16 --lanes 4 \
        --kernel-backend numpy-opt --output BENCH_campaign_multicore.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.benchtools.util import best_of, machine_metadata


def run_benchmark(replicas: int = 16, steps: int = 60, repeats: int = 1,
                  lanes: Optional[int] = None,
                  kernel_backend: Optional[str] = None) -> Dict:
    """Time the batched vs sequential seed sweep; returns the report dict.

    ``repeats > 1`` times each side that many times and keeps the **best**
    run per side (see :func:`repro.benchtools.util.best_of`), so a single
    unlucky timing on a shared CI runner cannot trip the ``--min-speedup``
    gate with no code change.  ``lanes`` and ``kernel_backend`` select
    lane sharding and the kernel backend for the batched side (the
    backend also applies to the sequential side — both must stay
    bit-identical regardless).
    """
    from repro.batch import run_batched_scenarios
    from repro.campaign.spec import ScenarioSpec
    from repro.kernels import active_backend, use_backend
    from repro.runtime import run as run_scenario

    repeats = max(repeats, 1)
    specs = [ScenarioSpec(name=f"seed={seed}", seed=seed, num_steps=steps)
             for seed in range(replicas)]

    with use_backend(kernel_backend):
        backend_name = active_backend().name
        batched_seconds, batched = best_of(
            repeats, lambda: run_batched_scenarios(specs, lanes=lanes))
        sequential_seconds, sequential = best_of(
            repeats, lambda: [run_scenario(spec).history for spec in specs])

    bit_identical = all(
        batched_history.to_dict() == sequential_history.to_dict()
        for batched_history, sequential_history
        in zip(batched, sequential))

    return {
        "benchmark": "campaign_seed_sweep",
        "scale": "small",
        "scenario": {"trainer": "guanyu", "model": "softmax",
                     "num_steps": steps},
        "replicas": replicas,
        "repeats": repeats,
        "lanes": lanes if lanes else 1,
        "kernel_backend": backend_name,
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "speedup": sequential_seconds / batched_seconds,
        "sequential_seconds_per_replica": sequential_seconds / replicas,
        "batched_seconds_per_replica": batched_seconds / replicas,
        "bit_identical": bit_identical,
        "machine": machine_metadata(),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchtools.bench_campaign",
        description="Benchmark the batched seed-sweep runtime vs "
                    "sequential execution.")
    parser.add_argument("--replicas", type=int, default=16,
                        help="seeds per sweep (default 16)")
    parser.add_argument("--steps", type=int, default=60,
                        help="training steps per scenario (default 60)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing rounds per side; the best round counts "
                             "(use >1 on noisy shared runners)")
    parser.add_argument("--lanes", type=int, default=None,
                        help="shard the batched side's replica lanes over "
                             "this many worker processes (default: single "
                             "process)")
    parser.add_argument("--kernel-backend", default=None,
                        help="kernel backend for both sides (default: the "
                             "process default, see repro.kernels)")
    parser.add_argument("--output", default="BENCH_campaign.json",
                        help="where to write the JSON report")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail (exit 1) when the batched speedup falls "
                             "below this factor")
    args = parser.parse_args(argv)

    report = run_benchmark(replicas=args.replicas, steps=args.steps,
                           repeats=args.repeats, lanes=args.lanes,
                           kernel_backend=args.kernel_backend)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"bench-campaign: R={report['replicas']} steps="
          f"{report['scenario']['num_steps']} lanes={report['lanes']} "
          f"backend={report['kernel_backend']}: sequential "
          f"{report['sequential_seconds']:.2f}s, batched "
          f"{report['batched_seconds']:.2f}s, speedup "
          f"{report['speedup']:.1f}x, bit_identical="
          f"{report['bit_identical']} -> {args.output}")

    if not report["bit_identical"]:
        print("bench-campaign: batched histories are NOT bit-identical to "
              "sequential execution", file=sys.stderr)
        return 1
    if args.min_speedup is not None and report["speedup"] < args.min_speedup:
        print(f"bench-campaign: speedup {report['speedup']:.2f}x below the "
              f"required {args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
