"""Seed-sweep campaign benchmark: batched runtime vs sequential execution.

Times ``R`` seeds of the small-scale GuanYu scenario twice — once as one
vectorised multi-replica execution (:mod:`repro.batch`), once as ``R``
sequential simulations — verifies the histories are bit-identical, and
writes the result as ``BENCH_campaign.json``.  CI uploads the file as an
artifact on every run, populating the repository's performance trajectory;
``--min-speedup`` turns it into a gate.

Usage::

    python -m repro.benchtools.bench_campaign --replicas 16 \
        --output BENCH_campaign.json --min-speedup 5.0
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.benchtools.util import best_of, machine_metadata


def run_benchmark(replicas: int = 16, steps: int = 60,
                  repeats: int = 1) -> Dict:
    """Time the batched vs sequential seed sweep; returns the report dict.

    ``repeats > 1`` times each side that many times and keeps the **best**
    run per side (see :func:`repro.benchtools.util.best_of`), so a single
    unlucky timing on a shared CI runner cannot trip the ``--min-speedup``
    gate with no code change.
    """
    from repro.batch import run_batched_scenarios
    from repro.campaign.engine import execute_scenario
    from repro.campaign.spec import ScenarioSpec

    repeats = max(repeats, 1)
    specs = [ScenarioSpec(name=f"seed={seed}", seed=seed, num_steps=steps)
             for seed in range(replicas)]

    batched_seconds, batched = best_of(
        repeats, lambda: run_batched_scenarios(specs))
    sequential_seconds, sequential = best_of(
        repeats, lambda: [execute_scenario(spec) for spec in specs])

    bit_identical = all(
        batched_history.to_dict() == sequential_history.to_dict()
        for batched_history, sequential_history
        in zip(batched, sequential))

    return {
        "benchmark": "campaign_seed_sweep",
        "scale": "small",
        "scenario": {"trainer": "guanyu", "model": "softmax",
                     "num_steps": steps},
        "replicas": replicas,
        "repeats": repeats,
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "speedup": sequential_seconds / batched_seconds,
        "sequential_seconds_per_replica": sequential_seconds / replicas,
        "batched_seconds_per_replica": batched_seconds / replicas,
        "bit_identical": bit_identical,
        "machine": machine_metadata(),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchtools.bench_campaign",
        description="Benchmark the batched seed-sweep runtime vs "
                    "sequential execution.")
    parser.add_argument("--replicas", type=int, default=16,
                        help="seeds per sweep (default 16)")
    parser.add_argument("--steps", type=int, default=60,
                        help="training steps per scenario (default 60)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing rounds per side; the best round counts "
                             "(use >1 on noisy shared runners)")
    parser.add_argument("--output", default="BENCH_campaign.json",
                        help="where to write the JSON report")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail (exit 1) when the batched speedup falls "
                             "below this factor")
    args = parser.parse_args(argv)

    report = run_benchmark(replicas=args.replicas, steps=args.steps,
                           repeats=args.repeats)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"bench-campaign: R={report['replicas']} steps="
          f"{report['scenario']['num_steps']}: sequential "
          f"{report['sequential_seconds']:.2f}s, batched "
          f"{report['batched_seconds']:.2f}s, speedup "
          f"{report['speedup']:.1f}x, bit_identical="
          f"{report['bit_identical']} -> {args.output}")

    if not report["bit_identical"]:
        print("bench-campaign: batched histories are NOT bit-identical to "
              "sequential execution", file=sys.stderr)
        return 1
    if args.min_speedup is not None and report["speedup"] < args.min_speedup:
        print(f"bench-campaign: speedup {report['speedup']:.2f}x below the "
              f"required {args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
