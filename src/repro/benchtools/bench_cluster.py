"""Process-cluster runtime benchmark: socket cluster vs threaded execution.

Times one small GuanYu scenario twice — once on the process cluster
runtime (every node a separate OS process over sockets, see
``docs/cluster.md``) and once on the in-process threaded runtime —
verifies the loss trajectories are bit-identical, and writes the result
as ``BENCH_cluster.json``.  The weekly bench-trajectory job archives the
file, so the per-step socket overhead and process-startup cost are
tracked over time; there is no pass/fail threshold — real-process
numbers on shared runners are too noisy to gate on.

On hosts that cannot bind sockets (sandboxes), the report records the
skip instead of failing: the benchmark is trajectory data, not a gate.

Usage::

    python -m repro.benchtools.bench_cluster --steps 4 \
        --output BENCH_cluster.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.benchtools.util import best_of, machine_metadata


def _bench_spec(steps: int, seed: int):
    """The benchmark scenario: smallest admissible cluster, full quorums
    and median-family rules so both runtimes are bit-identical."""
    from repro.campaign.spec import ScenarioSpec

    return ScenarioSpec(
        name="bench-cluster", trainer="guanyu_threaded",
        num_workers=4, num_servers=3,
        declared_byzantine_workers=0, declared_byzantine_servers=0,
        model_quorum=3, gradient_quorum=4,
        gradient_rule="median", model_rule="median",
        num_steps=steps, seed=seed)


def run_benchmark(steps: int = 4, seed: int = 42, repeats: int = 1,
                  transport: str = "auto") -> Dict:
    """Time the cluster vs threaded runtime; returns the report dict.

    ``repeats > 1`` keeps the **best** run per side (a single unlucky
    process-spawn storm on a shared runner should not distort the
    trajectory).
    """
    from repro.campaign.engine import build_trainer
    from repro.runtime.cluster import (
        ClusterOptions,
        ClusterRuntime,
        cluster_available,
    )

    repeats = max(repeats, 1)
    spec = _bench_spec(steps, seed)
    report: Dict = {
        "benchmark": "cluster_runtime",
        "scale": "small",
        "scenario": {"trainer": "guanyu_threaded",
                     "num_servers": spec.num_servers,
                     "num_workers": spec.num_workers,
                     "gradient_rule": spec.gradient_rule,
                     "num_steps": steps, "seed": seed},
        "repeats": repeats,
        "machine": machine_metadata(),
    }
    if not cluster_available():
        report["skipped"] = True
        report["reason"] = "host cannot bind sockets"
        return report

    threaded_seconds, threaded_history = best_of(
        repeats, lambda: build_trainer(spec).run(steps))

    cluster_spec = spec.replace(runtime="cluster")
    options = ClusterOptions(transport=transport)

    def run_cluster():
        runtime = ClusterRuntime(cluster_spec, options=options)
        history = runtime.run(steps)
        return history, runtime.report()

    cluster_seconds, (cluster_history, cluster_report) = best_of(
        repeats, run_cluster)

    threaded_losses = [record.train_loss for record in threaded_history.records]
    cluster_losses = [record.train_loss for record in cluster_history.records]
    report.update({
        "skipped": False,
        "transport": cluster_report["transport"],
        "num_processes": spec.num_servers + spec.num_workers,
        "threaded_seconds": threaded_seconds,
        "cluster_seconds": cluster_seconds,
        "cluster_seconds_per_step": cluster_seconds / steps,
        "overhead_factor": (cluster_seconds / threaded_seconds
                            if threaded_seconds > 0 else float("inf")),
        "losses_identical": threaded_losses == cluster_losses,
    })
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchtools.bench_cluster",
        description="Benchmark the process cluster runtime vs the "
                    "threaded runtime.")
    parser.add_argument("--steps", type=int, default=4,
                        help="training steps per run (default 4)")
    parser.add_argument("--seed", type=int, default=42, help="scenario seed")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing rounds per side; the best round counts")
    parser.add_argument("--transport", choices=("auto", "unix", "tcp"),
                        default="auto", help="socket family for the cluster")
    parser.add_argument("--output", default="BENCH_cluster.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    report = run_benchmark(steps=args.steps, seed=args.seed,
                           repeats=args.repeats, transport=args.transport)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if report.get("skipped"):
        print(f"bench-cluster: skipped ({report['reason']}) -> {args.output}")
        return 0
    print(f"bench-cluster: {report['num_processes']} processes x "
          f"{args.steps} steps over {report['transport']} sockets: "
          f"threaded {report['threaded_seconds']:.2f}s, cluster "
          f"{report['cluster_seconds']:.2f}s "
          f"({report['cluster_seconds_per_step']:.2f}s/step, "
          f"{report['overhead_factor']:.1f}x), losses_identical="
          f"{report['losses_identical']} -> {args.output}")
    if not report["losses_identical"]:
        print("bench-cluster: cluster losses are NOT bit-identical to the "
              "threaded runtime", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
