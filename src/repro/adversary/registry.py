"""Registry mapping adversary names to strategy classes.

Any name in the legacy Byzantine attack registry resolves too: it is
wrapped on the fly into a :class:`~repro.adversary.base.StatelessAdversary`
whose behaviour is bit-identical to installing the attack through the
legacy per-node seam — so every existing attack is usable wherever an
adversary is expected, without duplicate registration.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.adversary.base import Adversary, StatelessAdversary
from repro.adversary.strategies import (
    CollusionAdversary,
    OmniscientDescentAdversary,
    OscillatingAdversary,
    SleeperAdversary,
)
from repro.byzantine.registry import available_attacks, get_attack

_REGISTRY: Dict[str, Type[Adversary]] = {}


def register_adversary(adversary_class: Type[Adversary]) -> Type[Adversary]:
    """Register an adversary class under its :attr:`name` attribute."""
    name = adversary_class.name
    if not name or name.startswith("abstract"):
        raise ValueError("adversary classes must define a non-empty 'name'")
    if name in available_attacks():
        raise ValueError(
            f"adversary name '{name}' collides with a registered attack")
    _REGISTRY[name] = adversary_class
    return adversary_class


for _adversary in (OmniscientDescentAdversary, CollusionAdversary,
                   SleeperAdversary, OscillatingAdversary):
    register_adversary(_adversary)


def available_adversaries() -> List[str]:
    """Names of the natively registered (stateful) adversaries, sorted."""
    return sorted(_REGISTRY)


def get_adversary(name: str, **kwargs) -> Adversary:
    """Instantiate an adversary by name.

    Native adversary names build their strategy class; legacy attack names
    build the attack and wrap it as a stateless adversary.
    """
    adversary_class = _REGISTRY.get(name)
    if adversary_class is not None:
        return adversary_class(**kwargs)
    if name in available_attacks():
        return StatelessAdversary(get_attack(name, **kwargs))
    raise KeyError(
        f"unknown adversary '{name}'; native: {available_adversaries()}, "
        f"wrappable attacks: {available_attacks()}")
