"""Runtime wiring: drive an :class:`Adversary` through the attack seams.

The trainers and runtimes only know the legacy
:class:`~repro.byzantine.base.WorkerAttack` / ``ServerAttack`` interface;
:class:`AdversaryWorkerAttack` / :class:`AdversaryServerAttack` are
adapters installed on each controlled node that route every corruption
query to one shared :class:`AdversaryCoordinator`.

The coordinator owns the per-round plan cache and the synchronisation
needed by the three runtimes:

* **sequential / batched** — the honest gradients of the round arrive
  inside the :class:`~repro.byzantine.base.AttackContext` (``peer_values``)
  of the first corruption query; the plan is computed lazily from it;
* **threaded** — Byzantine node threads race the honest ones, so the
  runtime arms an *observation board*: honest workers publish their
  gradients as they compute them and corruption queries block until every
  expected publisher for the step has reported (the in-process equivalent
  of the paper's adversary reading every node's memory).

Plans are cached per step and every random draw is keyed by
``(seed, step)``, so the corruption bytes are independent of thread
scheduling and call order — the engine-level equivalence tests drive the
same adversary through all three wirings and compare bits.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.adversary.base import Adversary, RoundObservation, RoundPlan, RunBinding
from repro.byzantine.base import AttackContext, ServerAttack, WorkerAttack
from repro.obs.tracer import get_tracer

#: callable returning the honest worker ids expected to publish at a step
ExpectedPublishers = Callable[[int], Sequence[str]]

#: plans/boards older than this many steps behind the slowest controlled
#: worker are dropped
_PLAN_RETENTION_STEPS = 4
#: absolute skew bound: a controlled worker lagging (or crashed) more than
#: this many steps behind the newest activity no longer pins retention
_PLAN_HARD_RETENTION_STEPS = 64


class ObservationTimeout(RuntimeError):
    """The observation board never completed for a step (threaded mode)."""


class AdversaryCoordinator:
    """Shared state between the adapter attacks of one adversary run."""

    def __init__(self, adversary: Adversary, binding: RunBinding) -> None:
        adversary.bind(binding)
        self.adversary = adversary
        self.binding = binding
        self._condition = threading.Condition()
        self._plans: Dict[int, RoundPlan] = {}
        self._board: Dict[int, Dict[str, np.ndarray]] = {}
        self._board_enabled = False
        self._expected_fn: Optional[ExpectedPublishers] = None
        self._timeout = 60.0
        #: newest step each controlled worker has queried — retention floor
        self._query_floor: Dict[str, int] = {}
        #: steps whose plan is being computed outside the lock (board mode)
        self._building: set = set()
        #: steps below this were pruned and can never complete on the board
        self._pruned_horizon = -1

    # ------------------------------------------------------------------ #
    # Threaded-runtime observation board
    # ------------------------------------------------------------------ #
    def enable_board(self, expected_fn: ExpectedPublishers,
                     timeout: float = 60.0) -> None:
        """Arm the observation board (threaded runtime only)."""
        with self._condition:
            self._board_enabled = True
            self._expected_fn = expected_fn
            self._timeout = timeout

    def publish(self, worker_id: str, step: int,
                gradient: np.ndarray) -> None:
        """An honest worker's gradient became observable (threaded mode)."""
        with self._condition:
            if not self._board_enabled:
                return  # nobody will ever read (or prune) the copy
            board = self._board.setdefault(step, {})
            board.setdefault(worker_id,
                             np.array(gradient, dtype=np.float64, copy=True))
            # Publishing advances the hard-retention horizon too, so the
            # board stays bounded even while every controlled worker is
            # crashed and nothing is querying.
            self._prune(activity_step=step)
            self._condition.notify_all()

    # ------------------------------------------------------------------ #
    # Plan computation
    # ------------------------------------------------------------------ #
    def _round_rng(self, step: int) -> np.random.Generator:
        entropy = np.random.SeedSequence(
            entropy=[self.binding.seed % (2 ** 63), step])
        return np.random.default_rng(entropy)

    def _observation(self, step: int, honest: List[np.ndarray],
                     model: Optional[np.ndarray]) -> RoundObservation:
        return RoundObservation(
            step=step,
            honest_gradients=honest,
            model=None if model is None else np.asarray(model,
                                                        dtype=np.float64),
            rng=self._round_rng(step))

    def _install(self, step: int, plan: RoundPlan) -> None:
        """Record a finished plan (caller holds the condition lock)."""
        self._plans[step] = plan
        self._board.pop(step, None)
        self._prune()
        tracer = get_tracer()
        if tracer.enabled:
            # Observability only: which controlled nodes act this round and
            # how (explicit payload / silence / scaled-honest fallback).
            explicit = sorted(node_id for node_id, payload
                              in plan.payloads.items() if payload is not None)
            silenced = sorted(node_id for node_id, payload
                              in plan.payloads.items() if payload is None)
            tracer.event("adversary.plan", step=step,
                         adversary=type(self.adversary).__name__,
                         explicit_payloads=explicit, silenced=silenced,
                         fallback_scale=plan.fallback_scale)

    def _prune(self, activity_step: Optional[int] = None) -> None:
        """Drop plans/board entries no controlled worker can still need.

        The retention floor is the *slowest* Byzantine worker's last
        queried step (workers that have not queried yet count as step -1)
        — in the threaded runtime node threads progress at different
        rates, so pruning relative to the newest plan would starve a
        lagging worker whose honest peers never republish.  A worker more
        than the hard-retention bound behind the newest activity (e.g.
        crashed under a fault schedule, so it never queries again) stops
        pinning retention, which keeps memory bounded over arbitrarily
        long runs.
        """
        floors = [self._query_floor.get(worker_id, -1)
                  for worker_id in self.binding.byzantine_workers]
        if not floors:
            return
        newest = max([*floors, activity_step if activity_step is not None
                      else -1])
        floor = max(min(floors), newest - _PLAN_HARD_RETENTION_STEPS)
        threshold = floor - _PLAN_RETENTION_STEPS
        self._pruned_horizon = max(self._pruned_horizon, threshold)
        for stale in [s for s in self._plans if s < threshold]:
            del self._plans[stale]
        for stale in [s for s in self._board if s < threshold]:
            del self._board[stale]

    def _plan_for(self, node_id: str, context: AttackContext) -> RoundPlan:
        step = context.step
        with self._condition:
            floor = self._query_floor.get(node_id, -1)
            if step > floor:
                self._query_floor[node_id] = step
                self._prune()
            plan = self._plans.get(step)
            if plan is not None:
                return plan
            if not self._board_enabled:
                # Sequential/batched wiring: single-threaded per
                # coordinator, so computing under the lock contends with
                # nobody.
                honest = [np.asarray(value, dtype=np.float64)
                          for value in context.peer_values]
                plan = self.adversary.plan_round(
                    self._observation(step, honest, context.model))
                self._install(step, plan)
                return plan
            if step <= self._pruned_horizon:
                # The board for this step fell past the hard-retention
                # horizon (a worker lagging further than any plausible
                # skew): the honest gradients will never be republished,
                # so degrade to the no-observation fallback instead of
                # blocking until a timeout aborts the run.
                plan = self.adversary.plan_round(
                    self._observation(step, [], None))
                self._install(step, plan)
                self._condition.notify_all()
                return plan
            if not self.adversary.observation_needed(step):
                # Dormant round of a time-coupled adversary: the plan is
                # honest regardless of the observation, so don't block on
                # (or copy) the honest gradients at all.
                plan = self.adversary.plan_round(
                    self._observation(step, [], None))
                self._install(step, plan)
                self._condition.notify_all()
                return plan
            expected = list(self._expected_fn(step))
            deadline = time.monotonic() + self._timeout
            honest = None
            while honest is None:
                plan = self._plans.get(step)
                if plan is not None:
                    return plan
                board = self._board.get(step, {})
                if step not in self._building \
                        and all(worker_id in board
                                for worker_id in expected):
                    self._building.add(step)
                    honest = [board[worker_id] for worker_id in expected]
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    if step in self._building:
                        # A peer is computing the plan right now; the wait
                        # is bounded by local compute, not by missing
                        # messages — extend rather than raise spuriously.
                        deadline = time.monotonic() + self._timeout
                        continue
                    missing = [w for w in expected if w not in board]
                    raise ObservationTimeout(
                        f"adversary '{self.adversary.name}' timed out "
                        f"waiting for honest gradients {missing} at step "
                        f"{step}")
                self._condition.wait(timeout=remaining)
        # The (possibly expensive) inner optimisation runs *outside* the
        # lock so honest worker threads can keep publishing; peers
        # querying the same step wait on the `_building` marker.  Board
        # mode deliberately omits the model: whichever Byzantine thread
        # wins the race holds *its own* phase-1 aggregate, and letting the
        # winner's model into the observation would make the plan
        # scheduler-dependent.
        try:
            plan = self.adversary.plan_round(
                self._observation(step, honest, None))
        except BaseException:
            with self._condition:
                self._building.discard(step)
                self._condition.notify_all()
            raise
        with self._condition:
            self._building.discard(step)
            self._install(step, plan)
            self._condition.notify_all()
        return plan

    # ------------------------------------------------------------------ #
    # Adapter entry points
    # ------------------------------------------------------------------ #
    def worker_gradient(self, node_id: str,
                        context: AttackContext) -> Optional[np.ndarray]:
        if not self.adversary.attacks_workers:
            return context.honest_value
        if not self.adversary.requires_observation:
            return self.adversary.worker_gradient(context)
        plan = self._plan_for(node_id, context)
        return plan.payload_for(node_id, context.honest_value)

    def poison_batch(self, node_id: str, features, labels,
                     context: AttackContext):
        return self.adversary.poison_batch(features, labels, context)

    def server_model(self, node_id: str,
                     context: AttackContext) -> Optional[np.ndarray]:
        return self.adversary.server_model(context)


class AdversaryWorkerAttack(WorkerAttack):
    """Per-node worker seam adapter delegating to the shared coordinator."""

    def __init__(self, coordinator: AdversaryCoordinator,
                 node_id: str) -> None:
        self.coordinator = coordinator
        self.node_id = node_id
        self.name = coordinator.adversary.name

    def corrupt_gradient(self, context: AttackContext) -> Optional[np.ndarray]:
        return self.coordinator.worker_gradient(self.node_id, context)

    def poison_batch(self, features, labels, context: AttackContext):
        return self.coordinator.poison_batch(self.node_id, features, labels,
                                             context)


class AdversaryServerAttack(ServerAttack):
    """Per-node server seam adapter delegating to the shared coordinator."""

    def __init__(self, coordinator: AdversaryCoordinator,
                 node_id: str) -> None:
        self.coordinator = coordinator
        self.node_id = node_id
        self.name = coordinator.adversary.name

    def corrupt_model(self, context: AttackContext) -> Optional[np.ndarray]:
        return self.coordinator.server_model(self.node_id, context)


def make_binding(adversary: Adversary, *, seed: int,
                 worker_ids: Sequence[str], server_ids: Sequence[str],
                 num_attacking_workers: int, num_attacking_servers: int,
                 gradient_rule_name: str, declared_byzantine_workers: int,
                 declared_byzantine_servers: int, gradient_quorum: int,
                 model_quorum: int) -> RunBinding:
    """Build the :class:`RunBinding` a trainer hands its adversary.

    The controlled nodes are the *last* ids of each role — the same
    placement convention every runtime applies to legacy attacks
    (:func:`repro.core.trainer.attacking_node_ids`).  Worker (server)
    attackers are only materialised when the adversary actually corrupts
    that side.
    """
    from repro.aggregation import get_rule

    workers = (list(worker_ids[len(worker_ids) - num_attacking_workers:])
               if num_attacking_workers > 0 and adversary.attacks_workers
               else [])
    servers = (list(server_ids[len(server_ids) - num_attacking_servers:])
               if num_attacking_servers > 0 and adversary.attacks_servers
               else [])
    return RunBinding(
        seed=seed,
        worker_ids=list(worker_ids),
        server_ids=list(server_ids),
        byzantine_workers=workers,
        byzantine_servers=servers,
        gradient_rule_name=gradient_rule_name,
        gradient_rule=get_rule(gradient_rule_name,
                               num_byzantine=declared_byzantine_workers),
        declared_byzantine_workers=declared_byzantine_workers,
        declared_byzantine_servers=declared_byzantine_servers,
        gradient_quorum=gradient_quorum,
        model_quorum=model_quorum,
    )


def build_adversary_attacks(adversary: Adversary, binding: RunBinding):
    """``(coordinator, worker_attack_map, server_attack_map)`` for a run.

    The maps assign one adapter per controlled node (all sharing the one
    coordinator) and ``None`` for honest nodes, ready to slot into the
    per-node ``attack`` fields both runtimes already use.
    """
    coordinator = AdversaryCoordinator(adversary, binding)
    worker_attacks = {
        worker_id: (AdversaryWorkerAttack(coordinator, worker_id)
                    if worker_id in set(binding.byzantine_workers) else None)
        for worker_id in binding.worker_ids}
    server_attacks = {
        server_id: (AdversaryServerAttack(coordinator, server_id)
                    if server_id in set(binding.byzantine_servers) else None)
        for server_id in binding.server_ids}
    return coordinator, worker_attacks, server_attacks


def wire_attacks(*, config, seed: int,
                 worker_attack=None, num_attacking_workers: int = 0,
                 server_attack=None, num_attacking_servers: int = 0,
                 gradient_rule_name: str = "multi_krum",
                 adversary: Optional[Adversary] = None):
    """The one attack-wiring path shared by all three runtimes.

    Returns ``(coordinator, worker_attack_map, server_attack_map,
    attacking_workers, attacking_servers)``: per-node attack maps (adapter
    attacks for an adversary, the shared legacy instance otherwise, and
    ``None`` for honest nodes) plus the id sets of actually-attacking
    nodes.  Keeping the binding construction and the legacy fallback in
    one place is what keeps the sequential, threaded and batched runtimes
    from silently diverging.
    """
    from repro.core.trainer import attacking_node_ids  # no module cycle:
    # core.trainer imports this module lazily inside its constructors

    worker_ids = config.worker_ids()
    server_ids = config.server_ids()
    if adversary is not None:
        if worker_attack is not None or server_attack is not None:
            raise ValueError("give either an adversary or legacy per-node "
                             "attacks, not both")
        binding = make_binding(
            adversary, seed=seed, worker_ids=worker_ids,
            server_ids=server_ids,
            num_attacking_workers=num_attacking_workers,
            num_attacking_servers=num_attacking_servers,
            gradient_rule_name=gradient_rule_name,
            declared_byzantine_workers=config.num_byzantine_workers,
            declared_byzantine_servers=config.num_byzantine_servers,
            gradient_quorum=config.gradient_quorum,
            model_quorum=config.model_quorum)
        coordinator, worker_attacks, server_attacks = \
            build_adversary_attacks(adversary, binding)
        return (coordinator, worker_attacks, server_attacks,
                set(binding.byzantine_workers),
                set(binding.byzantine_servers))
    attacking_workers = attacking_node_ids(worker_ids, num_attacking_workers)
    attacking_servers = attacking_node_ids(server_ids, num_attacking_servers)
    worker_attacks = {wid: (worker_attack if wid in attacking_workers
                            else None)
                      for wid in worker_ids}
    server_attacks = {sid: (server_attack if sid in attacking_servers
                            else None)
                      for sid in server_ids}
    return (None, worker_attacks, server_attacks, attacking_workers,
            attacking_servers)
