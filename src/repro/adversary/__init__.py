"""Adaptive adversary engine: stateful, omniscient, colluding attacks.

The legacy :mod:`repro.byzantine` attacks are stateless per-call
transforms of one gradient or model; this package reproduces the *strong*
half of the paper's threat model — a single adversary that controls every
Byzantine node, observes the honest gradients of the round, the current
model and the deployed GAR, and emits coordinated, time-coupled
corruptions.  See ``docs/adversaries.md`` for the taxonomy and the
determinism contract, and :mod:`repro.experiments.breakdown` for the
empirical breakdown-point search built on top.
"""

from repro.adversary.base import (
    HONEST_PLAN,
    Adversary,
    RoundObservation,
    RoundPlan,
    RunBinding,
    StatelessAdversary,
)
from repro.adversary.engine import (
    AdversaryCoordinator,
    AdversaryServerAttack,
    AdversaryWorkerAttack,
    ObservationTimeout,
    build_adversary_attacks,
    make_binding,
)
from repro.adversary.registry import (
    available_adversaries,
    get_adversary,
    register_adversary,
)
from repro.adversary.strategies import (
    CollusionAdversary,
    OmniscientDescentAdversary,
    OscillatingAdversary,
    SleeperAdversary,
)

__all__ = [
    "Adversary",
    "StatelessAdversary",
    "RunBinding",
    "RoundObservation",
    "RoundPlan",
    "HONEST_PLAN",
    "AdversaryCoordinator",
    "AdversaryWorkerAttack",
    "AdversaryServerAttack",
    "ObservationTimeout",
    "build_adversary_attacks",
    "make_binding",
    "OmniscientDescentAdversary",
    "CollusionAdversary",
    "SleeperAdversary",
    "OscillatingAdversary",
    "available_adversaries",
    "get_adversary",
    "register_adversary",
]
