"""Core abstractions of the adaptive adversary engine.

The paper proves resilience against a single *omniscient, colluding,
adaptive* adversary that controls every Byzantine node at once.  The legacy
:mod:`repro.byzantine` attacks are stateless per-call transforms of one
gradient; an :class:`Adversary` instead owns **all** Byzantine nodes of a
run, observes everything the paper's threat model allows it to observe —
the honest gradients of the round, the current model, the deployed GAR and
its declared ``f`` (:class:`RunBinding` / :class:`RoundObservation`) — and
emits one *coordinated* corruption plan per round (:class:`RoundPlan`).

Determinism contract
--------------------
Every random draw an adversary makes comes from ``RoundObservation.rng``,
a generator freshly derived from ``(seed, step)`` — never from a stream
shared across rounds or nodes.  A round plan is therefore a pure function
of ``(seed, step, observed honest gradients, model)``, which makes the
emitted corruption bit-identical no matter which runtime drives the seam:
the sequential trainer, the threaded runtime (where Byzantine node threads
race each other) and the batched multi-replica runtime all obtain the same
bytes for the same observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.byzantine.base import AttackContext, ServerAttack, WorkerAttack


@dataclass
class RunBinding:
    """Everything the adversary knows about a run before it starts.

    This is the static half of the paper's omniscience: the adversary reads
    the deployment — which nodes it controls, which GAR the servers run and
    the ``f`` it is configured for, the quorum sizes — at bind time.  The
    dynamic half (gradients, models) arrives per round as a
    :class:`RoundObservation`.
    """

    seed: int
    worker_ids: List[str]
    server_ids: List[str]
    #: the Byzantine nodes this adversary controls, in cluster-index order
    byzantine_workers: List[str]
    byzantine_servers: List[str]
    gradient_rule_name: str = "multi_krum"
    #: the *actual* GAR instance the correct servers aggregate with
    gradient_rule: Optional[object] = None
    declared_byzantine_workers: int = 0
    declared_byzantine_servers: int = 0
    gradient_quorum: int = 0
    model_quorum: int = 0

    def honest_workers(self) -> List[str]:
        """Worker ids the adversary does *not* control, in cluster order."""
        controlled = set(self.byzantine_workers)
        return [wid for wid in self.worker_ids if wid not in controlled]


@dataclass
class RoundObservation:
    """What the omniscient adversary sees in one protocol round.

    ``honest_gradients`` are the correct workers' gradients of the round in
    cluster-index order (empty when the runtime cannot expose them — see
    the sequential-fallback notes in ``docs/adversaries.md``); ``model`` is
    the parameter vector the observing Byzantine worker computed its honest
    gradient at (``None`` under the threaded runtime's observation board,
    where exposing one racing thread's model would make plans
    scheduler-dependent).  ``rng`` is derived from ``(seed, step)`` so
    draws are independent of call order — see the module docstring.
    """

    step: int
    honest_gradients: List[np.ndarray] = field(default_factory=list)
    model: Optional[np.ndarray] = None
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def honest_mean(self) -> Optional[np.ndarray]:
        if not self.honest_gradients:
            return None
        return np.stack(self.honest_gradients).mean(axis=0)


#: marker distinguishing "behave honestly" from "stay silent" (``None``)
_HONEST = object()


@dataclass
class RoundPlan:
    """The adversary's decision for one round.

    ``payloads`` maps a Byzantine worker id to the vector it submits
    (``None`` = silence).  Workers absent from the map fall back to
    ``fallback_scale * honest_gradient`` when a scale is set, or to honest
    behaviour otherwise — the fallback is what keeps an adversary dangerous
    on rounds where no honest gradients were observable.
    """

    payloads: Dict[str, Optional[np.ndarray]] = field(default_factory=dict)
    fallback_scale: Optional[float] = None

    def payload_for(self, node_id: str,
                    honest_value: np.ndarray) -> Optional[np.ndarray]:
        payload = self.payloads.get(node_id, _HONEST)
        if payload is _HONEST:
            if self.fallback_scale is not None:
                return self.fallback_scale * honest_value
            return honest_value
        return payload


HONEST_PLAN = RoundPlan()


class Adversary:
    """A stateful entity controlling every Byzantine node of one run.

    Subclasses implement :meth:`plan_round` (coordinated adversaries) or
    the per-call hooks (:meth:`worker_gradient` / :meth:`server_model`,
    used when :attr:`requires_observation` is ``False``).  Instances are
    single-run: :meth:`bind` installs the run's :class:`RunBinding` and is
    called exactly once by the runtime wiring.
    """

    name: str = "abstract_adversary"
    #: whether the adversary needs the round's honest gradients before it
    #: can corrupt (drives the observation plumbing in the runtimes)
    requires_observation: bool = True
    #: whether this adversary corrupts worker gradients / server models
    attacks_workers: bool = True
    attacks_servers: bool = False

    def __init__(self) -> None:
        self.binding: Optional[RunBinding] = None

    def bind(self, binding: RunBinding) -> None:
        """Attach the run's static knowledge; one binding per instance."""
        if self.binding is not None:
            raise RuntimeError(
                f"adversary '{self.name}' is already bound to a run; "
                f"build a fresh instance per run")
        self.binding = binding

    # ------------------------------------------------------------------ #
    # Coordinated path (requires_observation = True)
    # ------------------------------------------------------------------ #
    def plan_round(self, observation: RoundObservation) -> RoundPlan:
        """Decide what every controlled worker submits this round."""
        raise NotImplementedError

    def observation_needed(self, step: int) -> bool:
        """Whether this round's plan actually depends on the observation.

        The threaded runtime's observation board blocks Byzantine threads
        until every honest gradient of the step is published; time-coupled
        adversaries override this to skip that wait during their dormant
        windows (where :meth:`plan_round` returns the honest plan no
        matter what was observed).
        """
        return self.requires_observation

    # ------------------------------------------------------------------ #
    # Per-call path (requires_observation = False, e.g. legacy wrappers)
    # ------------------------------------------------------------------ #
    def worker_gradient(self,
                        context: AttackContext) -> Optional[np.ndarray]:
        """Gradient a controlled worker sends (per-call adversaries only)."""
        return context.honest_value

    def poison_batch(self, features: np.ndarray, labels: np.ndarray,
                     context: AttackContext):
        """Optional data poisoning hook (mirrors ``WorkerAttack``)."""
        return features, labels

    # ------------------------------------------------------------------ #
    # Server side (never needs the round plan: phase 1 precedes gradients)
    # ------------------------------------------------------------------ #
    def server_model(self, context: AttackContext) -> Optional[np.ndarray]:
        """Model a controlled server sends; default: behave honestly."""
        return context.honest_value

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"


class StatelessAdversary(Adversary):
    """A legacy per-node attack lifted into the adversary interface.

    The wrapper is deliberately transparent: the wrapped attack receives
    the exact :class:`AttackContext` (including the node's own generator)
    the legacy seam would have handed it, so a scenario run through
    ``adversary="sign_flip"`` is bit-identical to the same scenario run
    through ``worker_attack="sign_flip"``.
    """

    requires_observation = False

    def __init__(self, attack) -> None:
        super().__init__()
        if not isinstance(attack, (WorkerAttack, ServerAttack)):
            raise TypeError(
                f"StatelessAdversary wraps WorkerAttack/ServerAttack "
                f"instances, got {type(attack).__name__}")
        self.attack = attack
        self.name = attack.name
        self.attacks_workers = isinstance(attack, WorkerAttack)
        self.attacks_servers = isinstance(attack, ServerAttack)

    def worker_gradient(self, context: AttackContext) -> Optional[np.ndarray]:
        if isinstance(self.attack, WorkerAttack):
            return self.attack.corrupt_gradient(context)
        return context.honest_value

    def poison_batch(self, features, labels, context: AttackContext):
        if isinstance(self.attack, WorkerAttack):
            return self.attack.poison_batch(features, labels, context)
        return features, labels

    def server_model(self, context: AttackContext) -> Optional[np.ndarray]:
        if isinstance(self.attack, ServerAttack):
            return self.attack.corrupt_model(context)
        return context.honest_value

    def __repr__(self) -> str:  # pragma: no cover
        return f"StatelessAdversary({self.attack!r})"
