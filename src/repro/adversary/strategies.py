"""Built-in adversary strategies.

Three families, mirroring the strongest parts of the paper's threat model:

* :class:`OmniscientDescentAdversary` — the worst-case omniscient attack:
  an inner numerical optimisation against the *actual* deployed GAR
  searches the aggregation rule's most vulnerable direction each round
  (generalising the closed-form "a little is enough" heuristic).
* :class:`CollusionAdversary` — all Byzantine workers submit the **same**
  crafted vector, computed once per round from the observed honest
  gradients (maximum voting weight behind a single lie).
* :class:`SleeperAdversary` / :class:`OscillatingAdversary` — time-coupled
  adversaries that flip between honest and attacking behaviour on a step
  schedule (the sleeper reuses :mod:`repro.faults` attack gating; the
  oscillator alternates with a fixed period).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.adversary.base import (
    HONEST_PLAN,
    Adversary,
    RoundObservation,
    RoundPlan,
    RunBinding,
)
from repro.byzantine.base import AttackContext, ServerAttack
from repro.byzantine.registry import get_attack


def _build_server_attack(name: Optional[str],
                         kwargs: Optional[Dict]) -> Optional[ServerAttack]:
    """Build the optional server-side component of a coordinated adversary."""
    if name is None:
        return None
    attack = get_attack(name, **(kwargs or {}))
    if not isinstance(attack, ServerAttack):
        raise ValueError(
            f"server_attack '{name}' is not a server attack")
    return attack


class _CoordinatedAdversary(Adversary):
    """Shared plumbing: optional server-side corruption component.

    The worker side of a coordinated adversary is the round plan; the
    server side (phase-1/3 model corruption happens *before* the round's
    gradients exist, so it never depends on the plan) routes through an
    optional legacy :class:`~repro.byzantine.base.ServerAttack`.
    """

    def __init__(self, server_attack: Optional[str] = None,
                 server_kwargs: Optional[Dict] = None) -> None:
        super().__init__()
        self.server_attack = server_attack
        self.server_kwargs = dict(server_kwargs or {})
        self._server_attack = _build_server_attack(server_attack,
                                                   server_kwargs)
        self.attacks_servers = self._server_attack is not None

    def server_model(self, context: AttackContext) -> Optional[np.ndarray]:
        if self._server_attack is None:
            return context.honest_value
        return self._server_attack.corrupt_model(context)


class OmniscientDescentAdversary(_CoordinatedAdversary):
    """Worst-case omniscient attack: search the GAR's vulnerable direction.

    Each round the adversary reads the honest gradients, then runs an inner
    optimisation **against the actual aggregation rule** the servers
    deploy: for a small family of candidate directions (the coordinate-wise
    standard deviation of the honest gradients — the "a little is enough"
    envelope — the honest mean itself, its sign vector, and one random
    probe), it line-searches the amplitude ``λ`` of the colluding
    submission ``mean − λ·direction`` and keeps the candidate that drags
    the simulated aggregate furthest *against* the honest descent
    direction.  With ``num_amplitudes × 4`` GAR evaluations per round this
    generalises :class:`~repro.byzantine.worker_attacks.LittleIsEnoughAttack`
    from a fixed ``z`` to the empirically worst admissible one.
    """

    name = "omniscient_descent"

    def __init__(self, max_amplitude: float = 8.0, num_amplitudes: int = 9,
                 server_attack: Optional[str] = None,
                 server_kwargs: Optional[Dict] = None) -> None:
        super().__init__(server_attack=server_attack,
                         server_kwargs=server_kwargs)
        if max_amplitude <= 0:
            raise ValueError("max_amplitude must be positive")
        if num_amplitudes < 2:
            raise ValueError("num_amplitudes must be at least 2")
        self.max_amplitude = float(max_amplitude)
        self.num_amplitudes = int(num_amplitudes)

    # ------------------------------------------------------------------ #
    def _damage(self, candidate: np.ndarray, honest: np.ndarray,
                mean_unit: np.ndarray, copies: int) -> float:
        """How far the aggregate moves against honest descent.

        Simulates the server-side aggregation the way the deployment
        actually performs it: ``copies`` colluding submissions of
        ``candidate`` race ahead of the honest gradients (the covert
        channel delivers Byzantine messages first, so they are always
        inside the quorum) and the server stops at ``gradient_quorum``
        inputs — the remaining honest slots are approximated by the first
        honest workers in cluster order, since which of them actually
        arrive first depends on delays the plan must not sample.
        """
        quorum = self.binding.gradient_quorum
        if quorum > copies:
            honest = honest[:quorum - copies]
        elif quorum > 0:
            honest = honest[:0]
        inputs = np.concatenate(
            [np.tile(candidate, (copies, 1)), honest], axis=0)
        try:
            aggregate = self.binding.gradient_rule(inputs)
        except ValueError:
            return -np.inf
        return -float(np.dot(aggregate, mean_unit))

    def plan_round(self, observation: RoundObservation) -> RoundPlan:
        if self.binding is None:
            raise RuntimeError("adversary is not bound to a run")
        honest = observation.honest_gradients
        copies = len(self.binding.byzantine_workers)
        if not honest or copies == 0:
            # Nothing observable this round: fall back to plain reversal.
            return RoundPlan(fallback_scale=-self.max_amplitude)
        stacked = np.stack(honest)
        mean = stacked.mean(axis=0)
        mean_norm = float(np.linalg.norm(mean))
        if mean_norm == 0.0:
            return RoundPlan(fallback_scale=-self.max_amplitude)
        mean_unit = mean / mean_norm

        directions = [stacked.std(axis=0), mean,
                      np.sign(mean) * mean_norm / np.sqrt(mean.size)]
        probe = observation.rng.normal(0.0, 1.0, size=mean.shape)
        directions.append(probe * (mean_norm / max(np.linalg.norm(probe),
                                                   1e-12)))
        amplitudes = np.linspace(0.0, self.max_amplitude,
                                 self.num_amplitudes)[1:]

        best_vector, best_damage = None, -np.inf
        for direction in directions:
            if float(np.linalg.norm(direction)) == 0.0:
                continue
            for amplitude in amplitudes:
                candidate = mean - amplitude * direction
                damage = self._damage(candidate, stacked, mean_unit, copies)
                if damage > best_damage:
                    best_damage, best_vector = damage, candidate
        if best_vector is None:
            return RoundPlan(fallback_scale=-self.max_amplitude)
        return RoundPlan(payloads={wid: best_vector for wid
                                   in self.binding.byzantine_workers})


class CollusionAdversary(_CoordinatedAdversary):
    """All Byzantine workers submit one identical crafted vector.

    The vector is produced once per round by an inner attack from the
    Byzantine registry, evaluated at the honest mean with full peer
    visibility — so ``f̄`` colluding workers put their entire voting weight
    behind a single lie instead of ``f̄`` independent ones (the difference
    matters to selection rules like Multi-Krum, where identical vectors
    score each other at distance zero).
    """

    name = "collusion"

    def __init__(self, attack: str = "little_is_enough",
                 attack_kwargs: Optional[Dict] = None,
                 server_attack: Optional[str] = None,
                 server_kwargs: Optional[Dict] = None) -> None:
        super().__init__(server_attack=server_attack,
                         server_kwargs=server_kwargs)
        self.attack = attack
        self.attack_kwargs = dict(attack_kwargs or {})
        self._inner = get_attack(attack, **self.attack_kwargs)
        if isinstance(self._inner, ServerAttack):
            raise ValueError(
                f"collusion crafts worker gradients; '{attack}' is a "
                f"server attack (use server_attack for the server side)")

    def plan_round(self, observation: RoundObservation) -> RoundPlan:
        if self.binding is None:
            raise RuntimeError("adversary is not bound to a run")
        honest = observation.honest_gradients
        if not honest:
            return RoundPlan(fallback_scale=-1.0)
        reference = observation.honest_mean()
        context = AttackContext(step=observation.step,
                                honest_value=reference,
                                peer_values=list(honest),
                                rng=observation.rng)
        vector = self._inner.corrupt_gradient(context)
        return RoundPlan(payloads={wid: vector for wid
                                   in self.binding.byzantine_workers})


class _GatedAdversary(Adversary):
    """Time-coupled wrapper: honest outside the active window(s).

    The inner strategy is any registered adversary — including a wrapped
    legacy attack — built via the adversary registry (lazily, to avoid a
    registry import cycle).
    """

    def __init__(self, inner: str = "omniscient_descent",
                 inner_kwargs: Optional[Dict] = None) -> None:
        super().__init__()
        from repro.adversary.registry import get_adversary  # cycle guard
        self.inner = inner
        self.inner_kwargs = dict(inner_kwargs or {})
        self._inner = get_adversary(inner, **self.inner_kwargs)
        if isinstance(self._inner, _GatedAdversary):
            raise ValueError("time-coupled adversaries cannot nest")
        self.requires_observation = self._inner.requires_observation
        self.attacks_workers = self._inner.attacks_workers
        self.attacks_servers = self._inner.attacks_servers

    def bind(self, binding: RunBinding) -> None:
        super().bind(binding)
        self._inner.bind(binding)

    def _active(self, step: int) -> bool:
        raise NotImplementedError

    def observation_needed(self, step: int) -> bool:
        # Dormant rounds return HONEST_PLAN regardless of what was
        # observed, so the threaded board must not block for them.
        return self.requires_observation and self._active(step)

    # -- coordinated path ------------------------------------------------ #
    def plan_round(self, observation: RoundObservation) -> RoundPlan:
        if not self._active(observation.step):
            return HONEST_PLAN
        return self._inner.plan_round(observation)

    # -- per-call path (inner is a stateless wrapper) -------------------- #
    def worker_gradient(self, context: AttackContext) -> Optional[np.ndarray]:
        if not self._active(context.step):
            return context.honest_value
        return self._inner.worker_gradient(context)

    def poison_batch(self, features, labels, context: AttackContext):
        if not self._active(context.step):
            return features, labels
        return self._inner.poison_batch(features, labels, context)

    def server_model(self, context: AttackContext) -> Optional[np.ndarray]:
        if not self._active(context.step):
            return context.honest_value
        return self._inner.server_model(context)


class SleeperAdversary(_GatedAdversary):
    """Behave honestly until ``wake_step``, then unleash the inner strategy.

    The step window is expressed as a :mod:`repro.faults` attack-gating
    schedule (``activate_attack`` / ``deactivate_attack`` events) and
    judged by a :class:`~repro.faults.FaultController`, so sleeper timing
    follows exactly the same step semantics as declarative fault
    injection — both runtimes gate on the node's own protocol step.
    """

    name = "sleeper"
    _GATE_NODE = "adversary"

    def __init__(self, wake_step: int = 20, sleep_step: Optional[int] = None,
                 inner: str = "omniscient_descent",
                 inner_kwargs: Optional[Dict] = None) -> None:
        super().__init__(inner=inner, inner_kwargs=inner_kwargs)
        from repro.faults import FaultController, FaultEvent, FaultSchedule
        if wake_step < 0:
            raise ValueError("wake_step must be non-negative")
        if sleep_step is not None and sleep_step <= wake_step:
            raise ValueError("sleep_step must be after wake_step")
        self.wake_step = int(wake_step)
        self.sleep_step = None if sleep_step is None else int(sleep_step)
        events = [FaultEvent(step=self.wake_step, kind="activate_attack",
                             nodes=[self._GATE_NODE])]
        if self.sleep_step is not None:
            events.append(FaultEvent(step=self.sleep_step,
                                     kind="deactivate_attack",
                                     nodes=[self._GATE_NODE]))
        self._gate = FaultController(FaultSchedule(events=events))

    def _active(self, step: int) -> bool:
        return self._gate.attack_active(self._GATE_NODE, step)


class OscillatingAdversary(_GatedAdversary):
    """Alternate honest and attacking phases with a fixed period.

    Steps ``[0, period)`` are honest, ``[period, 2·period)`` attack, and so
    on — an on/off duty cycle that defeats defences calibrated on a
    stationary corruption rate.
    """

    name = "oscillating"

    def __init__(self, period: int = 10, start_active: bool = False,
                 inner: str = "omniscient_descent",
                 inner_kwargs: Optional[Dict] = None) -> None:
        super().__init__(inner=inner, inner_kwargs=inner_kwargs)
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = int(period)
        self.start_active = bool(start_active)

    def _active(self, step: int) -> bool:
        phase = (step // self.period) % 2
        return phase == (0 if self.start_active else 1)
