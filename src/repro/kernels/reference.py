"""The ``reference`` kernel backend.

This is the code every other backend is measured against: the hot-kernel
implementations extracted verbatim from where they grew up —
``repro.aggregation.krum`` (the Gram/pairwise kernel and Krum neighbour
sums), the mean/median rule bodies, and
``repro.batch.models.BatchedDenseStack`` (the replica-batched dense
forward/backward).  It is bit-identical to the pre-backend code *by
construction*: the expressions are the same, only their home moved.

Keep this backend boring.  Optimisations belong in ``numpy-opt`` (or a
future backend); the reference exists so the bitwise property suite has a
fixed point to compare against.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.kernels.base import DensePlan, KernelBackend


class ReferenceBackend(KernelBackend):
    """Extracted current implementations — the bitwise fixed point."""

    name = "reference"

    # ------------------------------------------------------------------ #
    # Pairwise squared distances
    # ------------------------------------------------------------------ #
    def pairwise_squared_distances(self, stacked: np.ndarray) -> np.ndarray:
        stacked = np.asarray(stacked, dtype=np.float64)
        norms = np.einsum("ij,ij->i", stacked, stacked)
        squared = (norms[:, None] + norms[None, :]
                   - 2.0 * (stacked @ stacked.T))
        np.fill_diagonal(squared, 0.0)
        return np.maximum(squared, 0.0)

    def pairwise_squared_distances_batched(self,
                                           stacked: np.ndarray) -> np.ndarray:
        stacked = np.asarray(stacked, dtype=np.float64)
        norms = np.einsum("rij,rij->ri", stacked, stacked)
        squared = (norms[:, :, None] + norms[:, None, :]
                   - 2.0 * (stacked @ stacked.transpose(0, 2, 1)))
        diagonal = np.arange(stacked.shape[1])
        squared[:, diagonal, diagonal] = 0.0
        return np.maximum(squared, 0.0)

    def krum_neighbor_sums(self, squared: np.ndarray,
                           num_neighbors: int) -> np.ndarray:
        nearest = np.sort(squared, axis=1)[:, :num_neighbors]
        return nearest.sum(axis=1)

    def krum_neighbor_sums_batched(self, squared: np.ndarray,
                                   num_neighbors: int) -> np.ndarray:
        nearest = np.sort(squared, axis=2)[:, :, :num_neighbors]
        return nearest.sum(axis=2)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def mean(self, stacked: np.ndarray, axis: int) -> np.ndarray:
        return stacked.mean(axis=axis)

    def trimmed_mean(self, stacked: np.ndarray, trim: int,
                     axis: int) -> np.ndarray:
        if trim == 0:
            return stacked.mean(axis=axis)
        ordered = np.sort(stacked, axis=axis)
        window = [slice(None)] * ordered.ndim
        window[axis] = slice(trim, -trim)
        return ordered[tuple(window)].mean(axis=axis)

    def median(self, stacked: np.ndarray, axis: int) -> np.ndarray:
        return np.median(stacked, axis=axis)

    # ------------------------------------------------------------------ #
    # Replica-batched dense forward/backward
    # ------------------------------------------------------------------ #
    def dense_forward_logits(self, plan: DensePlan, flat: np.ndarray,
                             features: np.ndarray,
                             caches: Optional[list] = None) -> np.ndarray:
        hidden = features
        if hidden.ndim > 3:  # image input: flatten like the sequential models
            hidden = hidden.reshape(hidden.shape[0], hidden.shape[1], -1)
        for entry in plan:
            if entry[0] == "dense":
                _, in_f, out_f, w_slice, b_slice = entry
                weight = flat[:, w_slice].reshape(-1, in_f, out_f)
                bias = flat[:, b_slice]
                if caches is not None:
                    caches.append((hidden, weight))
                hidden = hidden @ weight
                hidden = hidden + bias[:, None, :]
            else:  # relu
                mask = (hidden > 0).astype(np.float64)
                if caches is not None:
                    caches.append(mask)
                hidden = hidden * mask
        return hidden

    def dense_forward_backward(self, plan: DensePlan, num_parameters: int,
                               flat: np.ndarray, features: np.ndarray,
                               labels: np.ndarray
                               ) -> Tuple[np.ndarray, np.ndarray]:
        flat = np.asarray(flat, dtype=np.float64)
        caches: list = []
        logits = self.dense_forward_logits(plan, flat, features, caches)
        replicas, batch, _ = logits.shape

        shift = logits.max(axis=2, keepdims=True)
        shifted = logits - shift
        exps = np.exp(shifted)
        normaliser = exps.sum(axis=2, keepdims=True)
        log_norm = np.log(normaliser)
        log_probs = shifted - log_norm

        lanes = np.arange(replicas)[:, None]
        rows = np.arange(batch)[None, :]
        picked = log_probs[lanes, rows, labels]
        losses = -(picked.sum(axis=1) * (1.0 / batch))

        # Backward: d(loss)/d(log_probs) is −1/B at the target entries; the
        # log-softmax pullback adds softmax/B (computed exactly as the tape
        # does: the log/sum/exp chain, not a fused softmax).
        picked_grad = -1.0 * (1.0 / batch)
        d_log_probs = np.zeros_like(log_probs)
        d_log_probs[lanes, rows, labels] = picked_grad
        d_log_norm = -(d_log_probs.sum(axis=2, keepdims=True))
        d_normaliser = d_log_norm / normaliser
        d_shifted = d_log_probs + d_normaliser * exps
        d_hidden = d_shifted  # the max-shift is a constant under the tape

        grads: List = [None] * len(plan)
        for index in range(len(plan) - 1, -1, -1):
            entry = plan[index]
            if entry[0] == "dense":
                layer_in, weight = caches[index]
                bias_grad = d_hidden.sum(axis=1)
                weight_grad = layer_in.transpose(0, 2, 1) @ d_hidden
                grads[index] = (weight_grad, bias_grad)
                if index > 0:  # the batch input needs no gradient
                    d_hidden = d_hidden @ weight.transpose(0, 2, 1)
            else:  # relu
                d_hidden = d_hidden * caches[index]

        pieces = []
        for entry, grad in zip(plan, grads):
            if entry[0] == "dense":
                weight_grad, bias_grad = grad
                pieces.append(weight_grad.reshape(replicas, -1))
                pieces.append(bias_grad)
        return losses, np.concatenate(pieces, axis=1)
