"""Backend registry and active-backend resolution.

Selection precedence, strongest first:

1. an explicit :func:`set_backend` / :func:`use_backend` in this process
   (``ScenarioSpec.kernels`` and the ``--kernel-backend`` CLI flag land
   here),
2. the ``REPRO_KERNEL_BACKEND`` environment variable,
3. the ``reference`` backend.

Backends are process-wide singletons: they may carry reusable scratch
buffers, and every trainer in the process shares one instance per name.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, Optional, Tuple

from repro.kernels.base import KernelBackend
from repro.kernels.numpy_opt import NumpyOptBackend
from repro.kernels.reference import ReferenceBackend

ENV_VAR = "REPRO_KERNEL_BACKEND"
DEFAULT_BACKEND = "reference"

_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {
    "reference": ReferenceBackend,
    "numpy-opt": NumpyOptBackend,
}
_INSTANCES: Dict[str, KernelBackend] = {}
_ACTIVE: Optional[str] = None  # explicit in-process override


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def register_backend(name: str,
                     factory: Callable[[], KernelBackend]) -> None:
    """Register ``factory`` under ``name`` (e.g. an optional numba build).

    Re-registering an existing name replaces it and drops its cached
    instance.
    """
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """The singleton backend for ``name``; ``None`` resolves like
    :func:`active_backend`."""
    if name is None:
        name = _resolve_name()
    backend = _INSTANCES.get(name)
    if backend is None:
        factory = _FACTORIES.get(name)
        if factory is None:
            known = ", ".join(available_backends())
            raise ValueError(
                f"unknown kernel backend {name!r} (available: {known})")
        backend = factory()
        _INSTANCES[name] = backend
    return backend


def _resolve_name() -> str:
    if _ACTIVE is not None:
        return _ACTIVE
    env = os.environ.get(ENV_VAR)
    if env:
        return env
    return DEFAULT_BACKEND


def active_backend() -> KernelBackend:
    """The backend hot kernels should use right now."""
    return get_backend(_resolve_name())


def set_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide explicit override."""
    global _ACTIVE
    if name is not None:
        get_backend(name)  # validate eagerly
    _ACTIVE = name


@contextmanager
def use_backend(name: Optional[str]):
    """Temporarily select ``name``; ``None`` leaves the selection as-is.

    Tolerating ``None`` lets callers write ``with use_backend(spec.kernels)``
    without special-casing legacy specs.
    """
    global _ACTIVE
    if name is None:
        yield active_backend()
        return
    get_backend(name)  # validate before flipping the override
    previous = _ACTIVE
    _ACTIVE = name
    try:
        yield get_backend(name)
    finally:
        _ACTIVE = previous
