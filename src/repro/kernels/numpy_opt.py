"""The ``numpy-opt`` kernel backend.

Same bits, less work: every method is bit-identical to the ``reference``
backend (the property suite in ``tests/test_kernels.py`` enforces this for
all registered GARs) but avoids the expensive parts of the reference
expressions:

* **Selection via ``np.partition``** — Krum neighbour sums, the trimmed
  mean and the coordinate-wise median only need the k smallest (or the
  middle block) in order, not a fully sorted axis.  Partitioning to the
  boundary and ascending-sorting just the selected block feeds the exact
  same summands in the exact same order into the same pairwise-summation
  reduction, so the result is bitwise unchanged.  For the median this also
  skips ``np.median``'s ``_ureduce`` dispatch overhead, which profiles as
  the dominant cost at campaign sizes.
* **Preallocated scratch buffers + ``out=`` ufuncs** — the Gram/pairwise
  kernel and the replica-batched dense forward/backward reuse per-shape
  buffers instead of allocating fresh intermediates every step.  The
  floating-point operations and their order are identical; only the
  destination memory changes.

Buffer-lifetime caveat: arrays returned by the pairwise-distance methods
are views into reusable scratch storage and are only valid until this
backend's next call with the same shape.  Every in-repo caller consumes
them immediately (Krum scores, spread diagnostics); hold a ``.copy()`` if
you need one to survive.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.kernels.base import DensePlan, KernelBackend


class NumpyOptBackend(KernelBackend):
    """Partition-based selections and buffer-reusing dense kernels."""

    name = "numpy-opt"

    def __init__(self) -> None:
        self._buffers: Dict[Tuple, np.ndarray] = {}

    def _scratch(self, key, shape: Tuple[int, ...]) -> np.ndarray:
        """A reusable float64 buffer for ``key`` at ``shape``.

        Keys include the plan step where aliasing would matter (forward
        activations are cached for the backward pass), so two live
        tensors never share storage within one call.
        """
        buf = self._buffers.get((key, shape))
        if buf is None:
            buf = np.empty(shape, dtype=np.float64)
            self._buffers[(key, shape)] = buf
        return buf

    # ------------------------------------------------------------------ #
    # Pairwise squared distances
    # ------------------------------------------------------------------ #
    def pairwise_squared_distances(self, stacked: np.ndarray) -> np.ndarray:
        stacked = np.asarray(stacked, dtype=np.float64)
        n = stacked.shape[0]
        norms = np.einsum("ij,ij->i", stacked, stacked)
        gram = self._scratch("gram", (n, n))
        np.matmul(stacked, stacked.T, out=gram)
        squared = self._scratch("pairwise", (n, n))
        # (a + b) - 2*g, exactly the reference association
        np.add(norms[:, None], norms[None, :], out=squared)
        np.multiply(gram, 2.0, out=gram)
        np.subtract(squared, gram, out=squared)
        np.fill_diagonal(squared, 0.0)
        np.maximum(squared, 0.0, out=squared)
        return squared

    def pairwise_squared_distances_batched(self,
                                           stacked: np.ndarray) -> np.ndarray:
        stacked = np.asarray(stacked, dtype=np.float64)
        replicas, n, _ = stacked.shape
        norms = np.einsum("rij,rij->ri", stacked, stacked)
        gram = self._scratch("gram_batched", (replicas, n, n))
        np.matmul(stacked, stacked.transpose(0, 2, 1), out=gram)
        squared = self._scratch("pairwise_batched", (replicas, n, n))
        np.add(norms[:, :, None], norms[:, None, :], out=squared)
        np.multiply(gram, 2.0, out=gram)
        np.subtract(squared, gram, out=squared)
        diagonal = np.arange(n)
        squared[:, diagonal, diagonal] = 0.0
        np.maximum(squared, 0.0, out=squared)
        return squared

    def krum_neighbor_sums(self, squared: np.ndarray,
                           num_neighbors: int) -> np.ndarray:
        return self._neighbor_sums(squared, num_neighbors, axis=1)

    def krum_neighbor_sums_batched(self, squared: np.ndarray,
                                   num_neighbors: int) -> np.ndarray:
        return self._neighbor_sums(squared, num_neighbors, axis=2)

    @staticmethod
    def _neighbor_sums(squared: np.ndarray, num_neighbors: int,
                       axis: int) -> np.ndarray:
        length = squared.shape[axis]
        if num_neighbors < 1 or num_neighbors >= length:
            window = [slice(None)] * squared.ndim
            window[axis] = slice(None, num_neighbors)
            return np.sort(squared, axis=axis)[tuple(window)].sum(axis=axis)
        window = [slice(None)] * squared.ndim
        window[axis] = slice(None, num_neighbors)
        nearest = np.partition(squared, num_neighbors - 1,
                               axis=axis)[tuple(window)]
        nearest.sort(axis=axis)  # ascending, like the reference's full sort
        return nearest.sum(axis=axis)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def mean(self, stacked: np.ndarray, axis: int) -> np.ndarray:
        return stacked.mean(axis=axis)

    def trimmed_mean(self, stacked: np.ndarray, trim: int,
                     axis: int) -> np.ndarray:
        if trim == 0:
            return stacked.mean(axis=axis)
        length = stacked.shape[axis]
        part = np.partition(stacked, (trim - 1, length - trim), axis=axis)
        window = [slice(None)] * part.ndim
        window[axis] = slice(trim, length - trim)
        middle = part[tuple(window)]
        middle.sort(axis=axis)  # ascending so the mean sums like reference
        return middle.mean(axis=axis)

    def median(self, stacked: np.ndarray, axis: int) -> np.ndarray:
        length = stacked.shape[axis]
        half = length // 2
        if length % 2:
            part = np.partition(stacked, half, axis=axis)
            return np.take(part, half, axis=axis)
        part = np.partition(stacked, (half - 1, half), axis=axis)
        low = np.take(part, half - 1, axis=axis)
        high = np.take(part, half, axis=axis)
        return (low + high) / 2.0

    # ------------------------------------------------------------------ #
    # Replica-batched dense forward/backward
    # ------------------------------------------------------------------ #
    def dense_forward_logits(self, plan: DensePlan, flat: np.ndarray,
                             features: np.ndarray,
                             caches: Optional[list] = None) -> np.ndarray:
        hidden = features
        if hidden.ndim > 3:
            hidden = hidden.reshape(hidden.shape[0], hidden.shape[1], -1)
        owns_hidden = False  # never write in place into the caller's batch
        for index, entry in enumerate(plan):
            if entry[0] == "dense":
                _, in_f, out_f, w_slice, b_slice = entry
                weight = flat[:, w_slice].reshape(-1, in_f, out_f)
                bias = flat[:, b_slice]
                if caches is not None:
                    caches.append((hidden, weight))
                out = self._scratch(("fwd", index),
                                    (hidden.shape[0], hidden.shape[1], out_f))
                np.matmul(hidden, weight, out=out)
                np.add(out, bias[:, None, :], out=out)
                hidden = out
                owns_hidden = True
            else:  # relu
                mask = self._scratch(("mask", index), hidden.shape)
                np.greater(hidden, 0.0, out=mask)
                if caches is not None:
                    caches.append(mask)
                if owns_hidden:
                    np.multiply(hidden, mask, out=hidden)
                else:  # pragma: no cover - plans always start with a dense
                    hidden = hidden * mask
                    owns_hidden = True
        return hidden

    def dense_forward_backward(self, plan: DensePlan, num_parameters: int,
                               flat: np.ndarray, features: np.ndarray,
                               labels: np.ndarray
                               ) -> Tuple[np.ndarray, np.ndarray]:
        flat = np.asarray(flat, dtype=np.float64)
        caches: list = []
        logits = self.dense_forward_logits(plan, flat, features, caches)
        replicas, batch, _ = logits.shape
        shape = logits.shape

        shift = logits.max(axis=2, keepdims=True)
        shifted = self._scratch("shifted", shape)
        np.subtract(logits, shift, out=shifted)
        exps = self._scratch("exps", shape)
        np.exp(shifted, out=exps)
        normaliser = exps.sum(axis=2, keepdims=True)
        log_norm = np.log(normaliser)
        log_probs = self._scratch("log_probs", shape)
        np.subtract(shifted, log_norm, out=log_probs)

        lanes = np.arange(replicas)[:, None]
        rows = np.arange(batch)[None, :]
        picked = log_probs[lanes, rows, labels]
        losses = -(picked.sum(axis=1) * (1.0 / batch))

        picked_grad = -1.0 * (1.0 / batch)
        d_log_probs = self._scratch("d_log_probs", shape)
        d_log_probs.fill(0.0)
        d_log_probs[lanes, rows, labels] = picked_grad
        d_log_norm = -(d_log_probs.sum(axis=2, keepdims=True))
        d_normaliser = d_log_norm / normaliser
        # d_shifted = d_log_probs + d_normaliser * exps, reusing exps as the
        # product target (IEEE multiply and add are commutative bitwise)
        np.multiply(exps, d_normaliser, out=exps)
        np.add(d_log_probs, exps, out=d_log_probs)
        d_hidden = d_log_probs

        grads: list = [None] * len(plan)
        for index in range(len(plan) - 1, -1, -1):
            entry = plan[index]
            if entry[0] == "dense":
                layer_in, weight = caches[index]
                bias_grad = d_hidden.sum(axis=1)
                weight_grad = self._scratch(
                    ("wgrad", index),
                    (replicas, layer_in.shape[2], d_hidden.shape[2]))
                np.matmul(layer_in.transpose(0, 2, 1), d_hidden,
                          out=weight_grad)
                grads[index] = (weight_grad, bias_grad)
                if index > 0:
                    nxt = self._scratch(
                        ("bwd", index),
                        (replicas, d_hidden.shape[1], layer_in.shape[2]))
                    np.matmul(d_hidden, weight.transpose(0, 2, 1), out=nxt)
                    d_hidden = nxt
            else:  # relu
                np.multiply(d_hidden, caches[index], out=d_hidden)

        pieces = []
        for entry, grad in zip(plan, grads):
            if entry[0] == "dense":
                weight_grad, bias_grad = grad
                pieces.append(weight_grad.reshape(replicas, -1))
                pieces.append(bias_grad)
        return losses, np.concatenate(pieces, axis=1)
