"""The kernel backend contract.

A :class:`KernelBackend` implements the system's hot numerical kernels —
the Gram/pairwise squared-distance kernel behind Krum/Multi-Krum/Bulyan,
the mean/trimmed-mean/median reductions every GAR is built from, and the
replica-batched dense forward/backward of :mod:`repro.batch.models` — so
that an optimised implementation can be swapped in without touching the
protocol or aggregation layers.

The contract is strict: **every backend must be bit-identical to the
``reference`` backend on every input** (same IEEE-754 doubles, not merely
close).  Cross-runtime equivalence is the repository's load-bearing
invariant — sequential↔batched full-history bit-identity rests on these
kernels — so a backend that is "just" numerically close would silently
break the tier-1 suites.  ``tests/test_kernels.py`` enforces the bitwise
gate for every registered backend against every registered GAR.

Safe optimisation levers (used by ``numpy-opt``): preallocated scratch
buffers, ``out=`` ufunc targets, ``np.partition`` followed by an ascending
sort of the selected block (the summands and their order are unchanged),
and fused/stacked GEMMs (NumPy runs the identical GEMM per slice).  Unsafe:
anything that reorders a floating-point reduction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

#: the dense-stack plan entries: ("dense", in_f, out_f, w_slice, b_slice)
#: or ("relu",) — see :class:`repro.batch.models.BatchedDenseStack`
DensePlan = List[Tuple]


class KernelBackend:
    """Abstract kernel backend.

    Subclasses implement every method; the registry
    (:mod:`repro.kernels.registry`) instantiates one singleton per backend.
    Backends must be stateless apart from reusable scratch buffers — one
    instance is shared by every trainer in the process.
    """

    #: registry name (``reference``, ``numpy-opt``, ...)
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # Pairwise squared distances (Krum / Multi-Krum / Bulyan / spread)
    # ------------------------------------------------------------------ #
    def pairwise_squared_distances(self, stacked: np.ndarray) -> np.ndarray:
        """``(n, d)`` stack → ``(n, n)`` squared Euclidean distances.

        Zero diagonal, clamped at 0 (the Gram identity can go slightly
        negative through cancellation).
        """
        raise NotImplementedError

    def pairwise_squared_distances_batched(self,
                                           stacked: np.ndarray) -> np.ndarray:
        """``(R, n, d)`` stack → ``(R, n, n)``; slice ``r`` must be
        bit-identical to :meth:`pairwise_squared_distances` on
        ``stacked[r]``."""
        raise NotImplementedError

    def krum_neighbor_sums(self, squared: np.ndarray,
                           num_neighbors: int) -> np.ndarray:
        """Sum of each row's ``num_neighbors`` smallest entries, ascending.

        ``squared`` is a pairwise matrix with the diagonal already set to
        ``inf`` (so a vector is never its own neighbour); the reduction
        must sum the selected values in ascending order, exactly like
        ``np.sort(...)[..., :k].sum(-1)``.
        """
        raise NotImplementedError

    def krum_neighbor_sums_batched(self, squared: np.ndarray,
                                   num_neighbors: int) -> np.ndarray:
        """Batched :meth:`krum_neighbor_sums` over a ``(R, n, n)`` stack."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Reductions (mean / trimmed mean / median families)
    # ------------------------------------------------------------------ #
    def mean(self, stacked: np.ndarray, axis: int) -> np.ndarray:
        """Arithmetic mean along ``axis`` (``np.mean`` semantics)."""
        raise NotImplementedError

    def trimmed_mean(self, stacked: np.ndarray, trim: int,
                     axis: int) -> np.ndarray:
        """Discard the ``trim`` smallest and largest per coordinate, then
        mean the rest **in ascending order** (the reference sorts the whole
        axis and means the middle slice)."""
        raise NotImplementedError

    def median(self, stacked: np.ndarray, axis: int) -> np.ndarray:
        """Coordinate-wise median along ``axis`` (``np.median`` bitwise)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Replica-batched dense forward/backward
    # ------------------------------------------------------------------ #
    def dense_forward_logits(self, plan: DensePlan, flat: np.ndarray,
                             features: np.ndarray,
                             caches: Optional[list] = None) -> np.ndarray:
        """Logits ``(R, B, C)`` for parameters ``(R, D)``.

        When ``caches`` is a list it receives per-layer values the backward
        pass needs (layer inputs, weight views, ReLU masks), one entry per
        plan step.
        """
        raise NotImplementedError

    def dense_forward_backward(self, plan: DensePlan, num_parameters: int,
                               flat: np.ndarray, features: np.ndarray,
                               labels: np.ndarray
                               ) -> Tuple[np.ndarray, np.ndarray]:
        """Cross-entropy losses ``(R,)`` and flat gradients ``(R, D)``.

        Must mirror the sequential autograd tape op for op: stable
        log-softmax (max-shift, exp, sum, log), NLL mean, reverse sweep.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<KernelBackend {self.name!r}>"
