"""Pluggable hot-kernel backends.

The numerical hot loops — the Gram/pairwise distance kernel behind
Krum/Multi-Krum/Bulyan, the mean/trimmed-mean/median reductions, and the
replica-batched dense forward/backward — live behind the
:class:`~repro.kernels.base.KernelBackend` interface.  Two backends ship:
``reference`` (the extracted original code, the bitwise fixed point) and
``numpy-opt`` (partition-based selections, preallocated buffers).  Select
one with :func:`use_backend`/:func:`set_backend`, the
``REPRO_KERNEL_BACKEND`` environment variable, ``ScenarioSpec.kernels``,
or the ``--kernel-backend`` CLI flag.  See ``docs/kernels.md``.

This package must import nothing from ``repro`` outside itself (only
NumPy) so that every layer — aggregation, batch, runtime — can depend on
it without cycles.
"""

from repro.kernels.base import DensePlan, KernelBackend
from repro.kernels.numpy_opt import NumpyOptBackend
from repro.kernels.reference import ReferenceBackend
from repro.kernels.registry import (
    DEFAULT_BACKEND,
    ENV_VAR,
    active_backend,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)

__all__ = [
    "DEFAULT_BACKEND",
    "DensePlan",
    "ENV_VAR",
    "KernelBackend",
    "NumpyOptBackend",
    "ReferenceBackend",
    "active_backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]
