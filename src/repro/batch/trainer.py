"""Vectorised multi-replica GuanYu runtime.

:class:`BatchedGuanYuTrainer` executes ``R`` seeds of **one** scenario in a
single process by stacking every per-replica quantity along a leading
replica axis:

* server parameters are ``(R, D)`` arrays (one row per replica),
* the vectors entering an aggregation are ``(R, n, D)`` stacks routed
  through :meth:`GradientAggregationRule.aggregate_batched`,
* worker gradients come from the replica-batched dense stack
  (:mod:`repro.batch.models`),
* simulated clocks and message delivery times are ``(R,)`` arrays.

Everything that must differ per replica stays per replica: each lane owns
the delay generator the sequential :class:`NetworkSimulator` would have
used (seeded with the replica's seed and consumed in the identical order),
its own data loaders, attack instances and attack generators, and its own
:class:`~repro.faults.FaultController` for probabilistic drop decisions.
The result is **bit-identical per seed** to running the scenario through
:class:`~repro.core.trainer.GuanYuTrainer` — the tier-1 equivalence test
(``tests/test_batch_equivalence.py``) compares full histories.

Scenarios the batched formulation cannot express (convolutional models,
non-``guanyu`` trainers) raise :class:`BatchingUnsupported`; transient
conditions a single replica would have failed on (quorum starvation under
heavy message loss) raise :class:`BatchedExecutionError`.  The campaign
engine responds to either by falling back to sequential execution, so
``--batch-seeds`` is always safe to request.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.aggregation import get_rule, pairwise_squared_distances_batched
from repro.kernels import active_backend
from repro.batch.models import (
    BATCHABLE_MODELS,
    BatchedDenseStack,
    BatchingUnsupported,
)
from repro.core.nodes import (
    GradientResult,
    apply_server_attack,
    apply_worker_attack,
    poison_worker_batch,
)
from repro.core.trainer import attacking_node_ids, validate_attack_counts
from repro.data.loader import DataLoader, partition_dataset
from repro.faults import FaultController
from repro.hetero import DEFAULT_PROFILE
from repro.metrics.accuracy import evaluate_accuracy
from repro.obs.history import StepRecord, TrainingHistory
from repro.obs.telemetry import get_registry
from repro.obs.tracer import get_tracer
from repro.network.message import MessageKind


class BatchedExecutionError(RuntimeError):
    """A replica hit a condition the batched runtime cannot isolate.

    The campaign engine catches this and re-runs the affected scenarios
    sequentially, where per-scenario failure isolation applies.
    """


def spec_supports_batching(spec) -> bool:
    """Whether a :class:`ScenarioSpec` can run on the batched runtime."""
    return spec.trainer == "guanyu" and spec.model in BATCHABLE_MODELS


def _seedless_payload(spec) -> Dict:
    payload = spec.to_dict()
    payload.pop("name")
    payload.pop("seed")
    return payload


# --------------------------------------------------------------------------- #
# Per-replica state
# --------------------------------------------------------------------------- #
class _Lane:
    """Everything that is private to one replica."""

    __slots__ = ("spec", "seed", "test_dataset", "eval_model", "loaders",
                 "worker_rngs", "server_rngs", "worker_attacks",
                 "server_attacks", "delay_rng", "fault_controller", "history")

    def __init__(self) -> None:
        self.fault_controller: Optional[FaultController] = None


class _PhaseBuffer:
    """Vectorised mailboxes of one protocol phase.

    ``times[j, s, r]`` is the delivery time of sender ``s``'s message to
    recipient ``j`` in replica ``r`` (``inf`` when suppressed or silent).
    Honest payloads are stored once per sender (``(R, D)``); Byzantine
    equivocation stores a per-``(recipient, sender)`` override.  Quorum
    collection replays the sequential simulator's rule exactly: messages
    are ranked by delivery time with ties broken by send order, which the
    stable argsort over the send-ordered sender axis reproduces.
    """

    def __init__(self, num_recipients: int, num_senders: int,
                 num_replicas: int, dimension: int) -> None:
        self.times = np.full((num_recipients, num_senders, num_replicas),
                             np.inf)
        self.payloads = np.zeros((num_senders, num_replicas, dimension))
        self._overrides: Dict[int, Dict[int, np.ndarray]] = {}
        self._num_replicas = num_replicas

    def reset(self) -> None:
        """Make the buffer reusable for the next step.

        Only delivery times and overrides carry meaning across collection:
        stale payload rows belong to senders whose times are ``inf`` and can
        never enter a quorum (starvation raises first), so the payload
        storage is reused as-is.
        """
        self.times.fill(np.inf)
        self._overrides.clear()

    def add_broadcast(self, sender_index: int, payload: np.ndarray,
                      delivered: np.ndarray, times: np.ndarray) -> None:
        """Record one honest broadcast: same payload to every recipient."""
        self.payloads[sender_index] = payload
        self.times[:, sender_index, :] = np.where(delivered, times, np.inf)

    def add_directed(self, recipient_index: int, sender_index: int,
                     payload_rows: np.ndarray, present: np.ndarray,
                     times: np.ndarray) -> None:
        """Record one per-recipient (possibly equivocating) send.

        ``present`` marks replicas whose attack produced a message at all
        (silent replicas deliver nothing); ``payload_rows`` is ``(R, D)``
        with arbitrary content on silent rows.
        """
        self.times[recipient_index, sender_index, :] = np.where(
            present, times, np.inf)
        self._overrides.setdefault(recipient_index, {})[sender_index] = \
            payload_rows

    def collect(self, recipient_index: int, recipient_id: str, quorum: int,
                not_before: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """First-``quorum`` payload stack ``(R, q, D)`` and completion times."""
        times = self.times[recipient_index]  # (S, R)
        order = np.argsort(times, axis=0, kind="stable")
        selected = order[:quorum]  # (q, R)
        lanes = np.arange(times.shape[1])
        if not np.all(np.isfinite(times[selected, lanes[None, :]])):
            starved = np.nonzero(
                ~np.isfinite(times[selected[quorum - 1], lanes]))[0]
            raise BatchedExecutionError(
                f"replica(s) {starved.tolist()}: {recipient_id} needed a "
                f"quorum of {quorum} messages but fewer senders delivered; "
                f"falling back to sequential execution")
        completion = np.maximum(not_before,
                                times[selected[quorum - 1], lanes])
        stacked = self.payloads[selected, lanes[None, :], :]  # (q, R, D)
        for sender_index, rows in self._overrides.get(recipient_index,
                                                      {}).items():
            hits = selected == sender_index
            if hits.any():
                row_pos, lane_pos = np.nonzero(hits)
                stacked[row_pos, lane_pos] = rows[lane_pos]
        return stacked.transpose(1, 0, 2), completion


# --------------------------------------------------------------------------- #
# The batched trainer
# --------------------------------------------------------------------------- #
class BatchedGuanYuTrainer:
    """Run ``R`` seeds of one GuanYu scenario in lock-step, vectorised.

    Parameters
    ----------
    specs:
        Validated :class:`~repro.campaign.spec.ScenarioSpec` instances that
        are identical except for ``name`` and ``seed`` — one per replica.
        Replica ``r`` reproduces, bit for bit, the history the sequential
        trainer produces for ``specs[r]``.

    Raises
    ------
    BatchingUnsupported
        For scenarios outside the batched envelope (non-``guanyu`` trainer,
        convolutional model).
    ValueError
        For specs that differ in anything but name/seed, or fail the same
        admissibility checks the sequential trainer applies.
    """

    def __init__(self, specs: Sequence) -> None:
        specs = list(specs)
        if not specs:
            raise ValueError("need at least one scenario spec")
        base = specs[0]
        if not spec_supports_batching(base):
            raise BatchingUnsupported(
                f"trainer '{base.trainer}' / model '{base.model}' has no "
                f"batched formulation")
        reference = _seedless_payload(base)
        for spec in specs[1:]:
            if _seedless_payload(spec) != reference:
                raise ValueError(
                    "batched execution requires scenarios that differ only "
                    "in seed (and name)")

        self.specs = specs
        self.num_replicas = len(specs)
        self.config = base.cluster_config()
        self.gradient_rule_name = base.gradient_rule
        self.model_rule_name = base.model_rule
        self.cost_model = base.build_cost_model()
        self.delay_model = base.build_delay_model()
        self.schedule = None  # set from the first lane bundle below

        self.worker_ids = self.config.worker_ids()
        self.server_ids = self.config.server_ids()
        num_attacking_workers = base.resolved_num_attacking_workers()
        num_attacking_servers = base.resolved_num_attacking_servers()
        self.attacking_workers = attacking_node_ids(self.worker_ids,
                                                    num_attacking_workers)
        self.attacking_servers = attacking_node_ids(self.server_ids,
                                                    num_attacking_servers)

        self.gradient_rule = get_rule(
            self.gradient_rule_name,
            num_byzantine=self.config.num_byzantine_workers)
        self.model_rule = get_rule(
            self.model_rule_name,
            num_byzantine=self.config.num_byzantine_servers)

        self.hetero = base.hetero
        #: per-worker heterogeneity profiles (shared across lanes: the
        #: hetero spec is seed-independent, only the partitions vary)
        self.profiles = [
            self.hetero.profile_for(index) if self.hetero else DEFAULT_PROFILE
            for index in range(len(self.worker_ids))]

        self.lanes: List[_Lane] = []
        template = None
        for spec in specs:
            lane, lane_template = self._build_lane(spec)
            self.lanes.append(lane)
            if template is None:
                template = lane_template

        # Hetero partitions vary per seed, and a shard smaller than the
        # requested batch size clamps its loader — per-lane batch shapes
        # would then disagree and the (R, B, ...) stacks could not form.
        for index in range(len(self.worker_ids)):
            lane_batch_sizes = {lane.loaders[index].batch_size
                                for lane in self.lanes}
            if len(lane_batch_sizes) > 1:
                raise BatchedExecutionError(
                    f"worker {self.worker_ids[index]}: per-seed hetero "
                    f"partitions clamp the batch size differently across "
                    f"replicas ({sorted(lane_batch_sizes)}); falling back "
                    f"to sequential execution")

        self.dense_stack = BatchedDenseStack(template)
        self.num_parameters = template.num_parameters()
        self.billed_parameters = (base.billed_parameters
                                  if base.billed_parameters
                                  else self.num_parameters)
        self._message_bytes = 64 + 4 * self.num_parameters
        self._serialization = self.cost_model.serialization_time(
            self.billed_parameters)
        self.has_faults = base.faults is not None
        if self.has_faults:
            base.faults.validate(known_nodes=self.worker_ids + self.server_ids)
        # With no probabilistic drops, every fault decision is a pure
        # function of (schedule, step) — judge lane 0 once and share it.
        self._lane_invariant_faults = self.has_faults and \
            base.faults.drop_rate == 0 and \
            not any(event.kind == "drop_rate" for event in base.faults.events)
        # With no fault schedule and a link-independent latency, every
        # honest broadcast of a phase delivers everywhere with one plain
        # draw per message — so a phase's draws can be merged into a single
        # sample_batch call per lane (bit-identical: same generator, same
        # stream order).
        self._fast_delays = (not self.has_faults) and \
            self.delay_model.latency_is_link_independent

        num_workers = len(self.worker_ids)
        num_servers = len(self.server_ids)
        self._buffer1 = _PhaseBuffer(num_workers, num_servers,
                                     self.num_replicas, self.num_parameters)
        self._buffer2 = _PhaseBuffer(num_servers, num_workers,
                                     self.num_replicas, self.num_parameters)
        self._buffer3 = _PhaseBuffer(num_servers, num_servers,
                                     self.num_replicas, self.num_parameters)

        # θ stack: server axis × replica axis × parameter axis.  Every
        # replica starts all of its servers from that replica's θ0.
        theta0 = np.stack([lane.eval_model.get_flat_parameters()
                           for lane in self.lanes])  # (R, D)
        self.theta = np.broadcast_to(
            theta0, (len(self.server_ids),) + theta0.shape).copy()
        self.worker_clock = np.zeros((len(self.worker_ids),
                                      self.num_replicas))
        self.server_clock = np.zeros((len(self.server_ids),
                                      self.num_replicas))

        self._correct_server_idx = [
            index for index, server_id in enumerate(self.server_ids)
            if server_id not in self.attacking_servers]

        shared_config = {
            **self.config.as_dict(),
            "batch_size": base.batch_size,
            "gradient_rule": self.gradient_rule_name,
            "model_rule": self.model_rule_name,
            "num_attacking_workers": num_attacking_workers,
            "num_attacking_servers": num_attacking_servers,
            "worker_attack": (base.worker_attack.name
                              if base.worker_attack else None),
            "server_attack": (base.server_attack.name
                              if base.server_attack else None),
            "adversary": base.adversary.name if base.adversary else None,
            "faults": base.faults.to_dict() if base.faults else None,
            "hetero": base.hetero.to_dict() if base.hetero else None,
        }
        for lane in self.lanes:
            lane.history.config = dict(shared_config)

    # ------------------------------------------------------------------ #
    def _build_lane(self, spec) -> Tuple[_Lane, object]:
        from repro.experiments.common import (  # lazy: avoids import cycle
            build_scale_bundle,
        )

        lane = _Lane()
        lane.spec = spec
        lane.seed = spec.seed
        train, test, model_fn, schedule = build_scale_bundle(spec.to_scale())
        if self.schedule is None:
            self.schedule = schedule
        lane.test_dataset = test
        lane.eval_model = model_fn()
        lane.delay_rng = np.random.default_rng(spec.seed)
        if spec.faults is not None:
            lane.fault_controller = FaultController(spec.faults,
                                                    seed=spec.seed)

        worker_attack = (spec.worker_attack.build()
                         if spec.worker_attack else None)
        server_attack = (spec.server_attack.build()
                         if spec.server_attack else None)
        adversary = spec.adversary.build() if spec.adversary else None
        validate_attack_counts(self.config, worker_attack,
                               spec.resolved_num_attacking_workers(),
                               server_attack,
                               spec.resolved_num_attacking_servers(),
                               adversary=adversary)

        shards = partition_dataset(train, len(self.worker_ids),
                                   sharding=spec.sharding, hetero=spec.hetero,
                                   seed=spec.seed)
        lane.loaders = [
            DataLoader(shards[index],
                       batch_size=(self.profiles[index].batch_size
                                   or spec.batch_size),
                       seed=spec.seed + 1000 + index)
            for index in range(len(self.worker_ids))]
        lane.worker_rngs = [np.random.default_rng(spec.seed + 2000 + index)
                            for index in range(len(self.worker_ids))]
        lane.server_rngs = [np.random.default_rng(spec.seed + 3000 + index)
                            for index in range(len(self.server_ids))]

        # Each replica owns a full, independent attack/adversary set (state
        # and derived randomness keyed by the lane's own seed), replayed in
        # the same order the sequential trainer would have driven it.
        from repro.adversary.engine import wire_attacks  # lazy: mirrors trainers

        _, lane.worker_attacks, lane.server_attacks, _, _ = wire_attacks(
            config=self.config, seed=spec.seed,
            worker_attack=worker_attack,
            num_attacking_workers=spec.resolved_num_attacking_workers(),
            server_attack=server_attack,
            num_attacking_servers=spec.resolved_num_attacking_servers(),
            gradient_rule_name=self.gradient_rule_name, adversary=adversary)
        if lane.fault_controller is not None:
            for node_id in [*self.worker_ids, *self.server_ids]:
                attacks = (lane.worker_attacks if node_id in
                           lane.worker_attacks else lane.server_attacks)
                attacks[node_id] = lane.fault_controller.gate_attack(
                    node_id, attacks[node_id])

        lane.history = TrainingHistory(label=spec.name)
        return lane, lane.eval_model

    # ------------------------------------------------------------------ #
    # Fault / delay plumbing (per logical message, vectorised over lanes)
    # ------------------------------------------------------------------ #
    def _judge(self, sender: str, recipients: Sequence[str], kind: str,
               step: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(delivered (n, R), factor (n,), extra (n,))`` for one broadcast.

        Crash/partition suppression and link slow-downs are pure functions
        of ``(schedule, step)`` — identical across replicas; only the
        probabilistic drop decision differs per lane (hash-based sampling
        keyed by the lane seed, exactly as the sequential controller).
        """
        count = len(recipients)
        if not self.has_faults:
            return (np.ones((count, self.num_replicas), dtype=bool),
                    np.ones(count), np.zeros(count))
        delivered = np.zeros((count, self.num_replicas), dtype=bool)
        factor = np.ones(count)
        extra = np.zeros(count)
        for j, recipient in enumerate(recipients):
            if self._lane_invariant_faults:
                decision = self.lanes[0].fault_controller.on_send(
                    sender, recipient, kind, step)
                delivered[j, :] = decision.deliver
                if decision.deliver:
                    factor[j] = decision.delay_factor
                    extra[j] = decision.extra_delay
                continue
            for r, lane in enumerate(self.lanes):
                decision = lane.fault_controller.on_send(sender, recipient,
                                                         kind, step)
                delivered[j, r] = decision.deliver
                if decision.deliver:
                    factor[j] = decision.delay_factor
                    extra[j] = decision.extra_delay
        return delivered, factor, extra

    def _broadcast_times(self, sender: str, recipients: Sequence[str],
                         kind: MessageKind, step: int, send_time: np.ndarray,
                         skip_draw: Optional[Set[int]] = None,
                         override: Optional[float] = None
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Delivery times ``(n, R)`` of one sender's messages to ``recipients``.

        Replays the sequential send loop: per replica, one latency draw per
        *delivered* message in recipient order (a single vectorised request
        on the lane generator yields the identical subsequence).  Messages
        with a delay override — Byzantine covert-channel sends
        (``override=0.0``) and a server's message to itself
        (``skip_draw``) — consume no randomness, exactly like the
        sequential simulator.
        """
        delivered, factor, extra = self._judge(sender, recipients,
                                               kind.value, step)
        count = len(recipients)
        delays = np.zeros((count, self.num_replicas))
        if override is None:
            draw_mask = np.ones(count, dtype=bool)
            if skip_draw:
                draw_mask[list(skip_draw)] = False
            for r, lane in enumerate(self.lanes):
                lane_mask = delivered[:, r] & draw_mask
                draws = self.delay_model.sample_batch(
                    lane.delay_rng, sender, None, self._message_bytes,
                    int(lane_mask.sum()))
                delays[lane_mask, r] = draws
        else:
            delays[:] = max(float(override), 0.0)
        delays = delays * factor[:, None] + extra[:, None]
        return delivered, send_time[None, :] + delays

    def _flush_merged(self, buffer: _PhaseBuffer,
                      sends: List[Tuple[int, np.ndarray, np.ndarray,
                                        Optional[int]]],
                      num_recipients: int) -> None:
        """Record a phase's honest broadcasts with one delay draw per lane.

        ``sends`` holds ``(sender_index, payload (R, D), send_time (R,),
        skip)`` in the order the slow path would have drawn them; ``skip``
        is the recipient index whose message consumes no randomness (a
        server's message to itself).  Only valid under ``_fast_delays``:
        with no fault schedule every message delivers with factor 1 and no
        extra delay, and a link-independent latency makes the concatenated
        per-lane draw bit-identical to the per-send ``sample_batch`` calls
        on the same generator.
        """
        counts = [num_recipients - (0 if skip is None else 1)
                  for _, _, _, skip in sends]
        total = sum(counts)
        draws = np.empty((self.num_replicas, total))
        for r, lane in enumerate(self.lanes):
            draws[r] = self.delay_model.sample_batch(
                lane.delay_rng, None, None, self._message_bytes, total)
        offset = 0
        for (s_index, payload, send_time, skip), count in zip(sends, counts):
            segment = draws[:, offset:offset + count]  # (R, count)
            offset += count
            buffer.payloads[s_index] = payload
            times = buffer.times[:, s_index, :]  # (num_recipients, R) view
            if skip is None:
                times[...] = send_time[None, :] + segment.T
            else:
                mask = np.ones(num_recipients, dtype=bool)
                mask[skip] = False
                times[mask] = send_time[None, :] + segment.T
                times[skip] = send_time

    def _server_spreads(self) -> np.ndarray:
        """Per-replica ``max_pairwise_distance`` over the correct servers.

        One batched Gram kernel replaces R sequential calls; like the
        sequential helper, the winning pair's norm is re-evaluated directly
        so exact agreement reports exactly zero.
        """
        if len(self._correct_server_idx) < 2:
            return np.zeros(self.num_replicas)
        stacked = np.ascontiguousarray(
            self.theta[self._correct_server_idx].transpose(1, 0, 2))
        squared = pairwise_squared_distances_batched(stacked)
        n = stacked.shape[1]
        winners = squared.reshape(self.num_replicas, -1).argmax(axis=1)
        rows, cols = np.unravel_index(winners, (n, n))
        return np.array([
            float(np.linalg.norm(stacked[r, rows[r]] - stacked[r, cols[r]]))
            for r in range(self.num_replicas)])

    # ------------------------------------------------------------------ #
    # Protocol helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _mean_over_nodes(clock: np.ndarray, indices: List[int]) -> np.ndarray:
        """Per-replica mean of ``clock[indices]`` — sequential-identical.

        The sequential trainer means a 1-D list per replica, which NumPy
        reduces with its pairwise base case; reducing the *outer* axis of a
        2-D slice uses a different accumulation order once more than eight
        nodes are involved.  Transposing to a contiguous last-axis
        reduction restores the 1-D order bit for bit.
        """
        return np.mean(np.ascontiguousarray(clock[indices].T), axis=1)

    def _participants(self, step: int) -> Tuple[Set[str], Set[str]]:
        if not self.has_faults:
            return set(self.worker_ids), set(self.server_ids)
        workers, servers = self.lanes[0].fault_controller.participating_nodes(
            self.worker_ids, self.server_ids, self.config.model_quorum,
            self.config.gradient_quorum, step)
        return set(workers), set(servers)

    def _forward_backward(self, w_index: int, worker_id: str,
                          theta: np.ndarray, step_index: int
                          ) -> Tuple[np.ndarray, np.ndarray, int]:
        """One replica-batched gradient for worker ``w_index`` at ``theta``.

        Draws the next mini-batch of every lane (running any data-poisoning
        hook at the parameters the gradient is computed at, exactly like
        :meth:`WorkerNode.compute_gradient`) and returns
        ``(losses (R,), gradients (R, D), samples per lane)``.
        """
        features_rows, labels_rows = [], []
        for r, lane in enumerate(self.lanes):
            features, labels = lane.loaders[w_index].next_batch()
            features, labels = poison_worker_batch(
                lane.worker_attacks[worker_id],
                lane.worker_rngs[w_index], theta[r], step_index,
                features, labels)
            features_rows.append(features)
            labels_rows.append(np.asarray(labels, dtype=np.int64))
        features_batch = np.stack(features_rows)
        labels_batch = np.stack(labels_rows)
        losses, gradients = self.dense_stack.forward_backward(
            theta, features_batch, labels_batch)
        return losses, gradients, labels_batch.shape[1]

    def _corrupt_models(self, server_index: int, step: int,
                        recipient: str) -> Tuple[np.ndarray, np.ndarray]:
        """Per-lane Byzantine model payloads ``(R, D)`` + presence mask."""
        server_id = self.server_ids[server_index]
        payloads = np.zeros((self.num_replicas, self.num_parameters))
        present = np.zeros(self.num_replicas, dtype=bool)
        for r, lane in enumerate(self.lanes):
            value = apply_server_attack(lane.server_attacks[server_id],
                                        lane.server_rngs[server_index],
                                        self.theta[server_index, r], step,
                                        recipient=recipient)
            if value is not None:
                payloads[r] = value
                present[r] = True
        return payloads, present

    # ------------------------------------------------------------------ #
    def step(self, step_index: int) -> List[StepRecord]:
        """One three-phase GuanYu step across all replicas.

        Returns one :class:`StepRecord` per replica, bit-identical to the
        record the sequential trainer produces for that replica's seed.
        """
        config = self.config
        cost = self.cost_model
        d = self.billed_parameters
        serialization = self._serialization
        replicas = self.num_replicas
        tracer = get_tracer()
        registry = get_registry()
        trace_on = tracer.enabled
        tele_on = registry.enabled
        obs_on = trace_on or tele_on
        mark = time.perf_counter() if obs_on else 0.0

        if self.has_faults:
            for lane in self.lanes:
                lane.fault_controller.on_step(step_index)
        active_workers, active_servers = self._participants(step_index)
        if self.has_faults:
            server_alive = self.lanes[0].fault_controller.alive_mask(
                self.server_ids, step_index)
        else:
            server_alive = np.ones(len(self.server_ids), dtype=bool)
        alive_correct_idx = [index for index in self._correct_server_idx
                             if server_alive[index]]
        if not alive_correct_idx:
            raise RuntimeError(
                f"fault schedule leaves no correct server alive at step "
                f"{step_index}; the protocol cannot make progress")
        phase_start = self.server_clock[alive_correct_idx].min(axis=0)

        # ------------------------- Phase 1 ------------------------------ #
        fast = self._fast_delays
        buffer1 = self._buffer1
        buffer1.reset()
        merged: List[Tuple[int, np.ndarray, np.ndarray, Optional[int]]] = []
        for s_index, server_id in enumerate(self.server_ids):
            if server_id not in active_servers:
                continue
            if server_id in self.attacking_servers:
                for w_index, worker_id in enumerate(self.worker_ids):
                    payloads, present = self._corrupt_models(
                        s_index, step_index, recipient=worker_id)
                    delivered, times = self._broadcast_times(
                        server_id, [worker_id], MessageKind.MODEL_TO_WORKER,
                        step_index, phase_start, override=0.0)
                    buffer1.add_directed(w_index, s_index, payloads,
                                         present & delivered[0], times[0])
            else:
                send_time = self.server_clock[s_index] + serialization
                if fast:
                    merged.append((s_index, self.theta[s_index], send_time,
                                   None))
                else:
                    delivered, times = self._broadcast_times(
                        server_id, self.worker_ids,
                        MessageKind.MODEL_TO_WORKER, step_index, send_time)
                    buffer1.add_broadcast(s_index, self.theta[s_index],
                                          delivered, times)
        if merged:
            self._flush_merged(buffer1, merged, len(self.worker_ids))
        if obs_on:
            now = time.perf_counter()
            if trace_on:
                tracer.record_span("batch.step.broadcast", mark, now,
                                   step=step_index, replicas=replicas)
            if tele_on:
                registry.observe("repro_step_phase_seconds", now - mark,
                                 runtime="batch", phase="broadcast")
            mark = now

        gradient_stack: Dict[int, np.ndarray] = {}
        loss_stack: Dict[int, np.ndarray] = {}
        batch_sizes: Dict[int, int] = {}
        #: per-attacking-worker aggregated models (observable by adversaries)
        model_stack: Dict[int, np.ndarray] = {}
        active_worker_indices = [index for index, worker_id
                                 in enumerate(self.worker_ids)
                                 if worker_id in active_workers]
        for w_index in active_worker_indices:
            worker_id = self.worker_ids[w_index]
            stacked, completion = buffer1.collect(
                w_index, worker_id, config.model_quorum,
                not_before=self.worker_clock[w_index])
            aggregated = self.model_rule.aggregate_batched(stacked)

            profile = self.profiles[w_index]
            if profile.local_steps == 1:
                losses, gradients, samples = self._forward_backward(
                    w_index, worker_id, aggregated, step_index)
                gradient_stack[w_index] = gradients
                loss_stack[w_index] = losses
                batch_sizes[w_index] = samples
            else:
                # Replays WorkerNode's local-SGD walk op-for-op per lane:
                # k sequential forward/backwards from the aggregated
                # model, mean gradient along the trajectory.
                eta = self.schedule(step_index)
                theta = aggregated
                gradient_sum = np.zeros_like(aggregated)
                lane_losses: List[List[float]] = [[] for _ in
                                                  range(replicas)]
                total_samples = 0
                for _ in range(profile.local_steps):
                    losses, gradients, samples = self._forward_backward(
                        w_index, worker_id, theta, step_index)
                    gradient_sum += gradients
                    for r in range(replicas):
                        lane_losses[r].append(float(losses[r]))
                    total_samples += samples
                    theta = theta - eta * gradients
                gradient_stack[w_index] = gradient_sum / profile.local_steps
                loss_stack[w_index] = np.array(
                    [float(np.mean(entry)) for entry in lane_losses])
                batch_sizes[w_index] = total_samples
            if worker_id in self.attacking_workers:
                model_stack[w_index] = aggregated
            compute_time = profile.delay_multiplier * (
                cost.median_time(config.model_quorum, d)
                + cost.gradient_time(batch_sizes[w_index], d))
            self.worker_clock[w_index] = completion + compute_time

        if obs_on:
            now = time.perf_counter()
            if trace_on:
                tracer.record_span("batch.step.compute", mark, now,
                                   step=step_index, replicas=replicas)
            if tele_on:
                registry.observe("repro_step_phase_seconds", now - mark,
                                 runtime="batch", phase="compute")
            mark = now
        alive_correct_worker_idx = [
            index for index in active_worker_indices
            if self.worker_ids[index] not in self.attacking_workers]
        if alive_correct_worker_idx:
            phase1_end = self._mean_over_nodes(self.worker_clock,
                                               alive_correct_worker_idx)
        else:
            phase1_end = phase_start

        # ------------------------- Phase 2 ------------------------------ #
        peer_gradients = [
            [gradient_stack[index][r] for index in alive_correct_worker_idx]
            for r in range(replicas)]
        buffer2 = self._buffer2
        buffer2.reset()
        merged = []
        for w_index in active_worker_indices:
            worker_id = self.worker_ids[w_index]
            if worker_id in self.attacking_workers:
                for s_index, server_id in enumerate(self.server_ids):
                    payloads = np.zeros((replicas, self.num_parameters))
                    present = np.zeros(replicas, dtype=bool)
                    for r, lane in enumerate(self.lanes):
                        result = GradientResult(
                            gradient=gradient_stack[w_index][r],
                            loss=float(loss_stack[w_index][r]),
                            batch_size=batch_sizes[w_index])
                        value = apply_worker_attack(
                            lane.worker_attacks[worker_id],
                            lane.worker_rngs[w_index], result, step_index,
                            peer_gradients=peer_gradients[r],
                            recipient=server_id,
                            model=model_stack[w_index][r])
                        if value is not None:
                            payloads[r] = value
                            present[r] = True
                    delivered, times = self._broadcast_times(
                        worker_id, [server_id],
                        MessageKind.GRADIENT_TO_SERVER, step_index,
                        phase_start, override=0.0)
                    buffer2.add_directed(s_index, w_index, payloads,
                                         present & delivered[0], times[0])
            else:
                send_time = self.worker_clock[w_index] + serialization
                if fast:
                    merged.append((w_index, gradient_stack[w_index],
                                   send_time, None))
                else:
                    delivered, times = self._broadcast_times(
                        worker_id, self.server_ids,
                        MessageKind.GRADIENT_TO_SERVER, step_index, send_time)
                    buffer2.add_broadcast(w_index, gradient_stack[w_index],
                                          delivered, times)
        if merged:
            self._flush_merged(buffer2, merged, len(self.server_ids))
        if obs_on:
            now = time.perf_counter()
            if trace_on:
                tracer.record_span("batch.step.gather", mark, now,
                                   step=step_index, replicas=replicas)
            if tele_on:
                registry.observe("repro_step_phase_seconds", now - mark,
                                 runtime="batch", phase="gather")
            mark = now

        active_correct_server_idx = [
            index for index in alive_correct_idx
            if self.server_ids[index] in active_servers]
        learning_rate = self.schedule(step_index)
        for s_index in active_correct_server_idx:
            stacked, completion = buffer2.collect(
                s_index, self.server_ids[s_index], config.gradient_quorum,
                not_before=self.server_clock[s_index])
            aggregated = self.gradient_rule.aggregate_batched(stacked)
            self.theta[s_index] = self.theta[s_index] \
                - learning_rate * aggregated
            compute_time = (cost.aggregation_time(self.gradient_rule_name,
                                                  config.gradient_quorum, d)
                            + cost.update_time(d))
            self.server_clock[s_index] = completion + compute_time
        phase2_end = self._mean_over_nodes(self.server_clock,
                                           alive_correct_idx)
        if obs_on:
            now = time.perf_counter()
            if trace_on:
                tracer.record_span("batch.step.aggregate", mark, now,
                                   step=step_index, replicas=replicas)
            if tele_on:
                registry.observe("repro_step_phase_seconds", now - mark,
                                 runtime="batch", phase="aggregate")
            mark = now

        # ------------------------- Phase 3 ------------------------------ #
        buffer3 = self._buffer3
        buffer3.reset()
        merged = []
        for s_index, server_id in enumerate(self.server_ids):
            if server_id not in active_servers:
                continue
            if server_id in self.attacking_servers:
                for peer_index, peer_id in enumerate(self.server_ids):
                    payloads, present = self._corrupt_models(
                        s_index, step_index, recipient=peer_id)
                    delivered, times = self._broadcast_times(
                        server_id, [peer_id], MessageKind.MODEL_TO_SERVER,
                        step_index, phase_start, override=0.0)
                    buffer3.add_directed(peer_index, s_index, payloads,
                                         present & delivered[0], times[0])
            else:
                send_time = self.server_clock[s_index] + serialization
                if fast:
                    merged.append((s_index, self.theta[s_index], send_time,
                                   s_index))
                else:
                    delivered, times = self._broadcast_times(
                        server_id, self.server_ids,
                        MessageKind.MODEL_TO_SERVER, step_index, send_time,
                        skip_draw={s_index})
                    buffer3.add_broadcast(s_index, self.theta[s_index].copy(),
                                          delivered, times)
        if merged:
            self._flush_merged(buffer3, merged, len(self.server_ids))

        for s_index in active_correct_server_idx:
            stacked, completion = buffer3.collect(
                s_index, self.server_ids[s_index], config.model_quorum,
                not_before=self.server_clock[s_index])
            self.theta[s_index] = self.model_rule.aggregate_batched(stacked)
            self.server_clock[s_index] = completion \
                + cost.median_time(config.model_quorum, d)
        phase3_end = self._mean_over_nodes(self.server_clock,
                                           alive_correct_idx)
        if obs_on:
            now = time.perf_counter()
            if trace_on:
                tracer.record_span("batch.step.apply", mark, now,
                                   step=step_index, replicas=replicas)
            if tele_on:
                registry.observe("repro_step_phase_seconds", now - mark,
                                 runtime="batch", phase="apply")

        # ------------------------- Records ------------------------------ #
        simulated_time = self.server_clock[alive_correct_idx].max(axis=0)
        spreads = self._server_spreads()
        records = []
        for r in range(replicas):
            if alive_correct_worker_idx:
                train_loss = float(np.mean(
                    [loss_stack[index][r]
                     for index in alive_correct_worker_idx]))
            else:
                train_loss = None
            spread = float(spreads[r])
            records.append(StepRecord(
                step=step_index,
                simulated_time=float(simulated_time[r]),
                train_loss=train_loss,
                max_server_spread=spread,
                learning_rate=self.schedule(step_index),
                phase_durations={
                    "phase1_models_and_gradients":
                        float(phase1_end[r] - phase_start[r]),
                    "phase2_server_update":
                        float(phase2_end[r] - phase1_end[r]),
                    "phase3_server_exchange":
                        float(phase3_end[r] - phase2_end[r]),
                },
            ))
        return records

    # ------------------------------------------------------------------ #
    def global_parameters(self) -> np.ndarray:
        """``(R, D)`` observer view: per-replica median of correct servers."""
        return np.median(self.theta[self._correct_server_idx], axis=0)

    def _evaluate(self, lane: _Lane, parameters: np.ndarray,
                  max_samples: Optional[int]) -> float:
        lane.eval_model.set_flat_parameters(parameters)
        return evaluate_accuracy(lane.eval_model, lane.test_dataset,
                                 max_samples=max_samples)

    def run(self, num_steps: int, eval_every: int = 10,
            max_eval_samples: Optional[int] = 512) -> List[TrainingHistory]:
        """Run ``num_steps`` updates; returns one history per replica."""
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        for step_index in range(num_steps):
            records = self.step(step_index)
            is_eval_step = (step_index % eval_every == 0) \
                or (step_index == num_steps - 1)
            if is_eval_step:
                observer = self.global_parameters()
                for r, lane in enumerate(self.lanes):
                    if lane.test_dataset is not None:
                        records[r].test_accuracy = self._evaluate(
                            lane, observer[r], max_eval_samples)
            for r, lane in enumerate(self.lanes):
                lane.history.add(records[r])
        return [lane.history for lane in self.lanes]


def _run_single_process(specs: Sequence) -> List[TrainingHistory]:
    trainer = BatchedGuanYuTrainer(specs)
    base = specs[0]
    return trainer.run(base.num_steps, eval_every=base.eval_every,
                       max_eval_samples=base.max_eval_samples)


def _run_lane_chunk(task: Tuple[List[Dict], str]
                    ) -> Tuple[List[TrainingHistory], float]:
    """Pool worker: run one contiguous chunk of replica lanes.

    Receives ``(spec payload dicts, backend name)`` — payloads because
    worker processes may be spawned rather than forked, and the backend
    name because an in-process :func:`~repro.kernels.set_backend` override
    in the parent would otherwise not survive a spawn.  Returns the chunk
    histories plus the chunk's wall-clock seconds, which the parent feeds
    to the telemetry registry (a chunk worker's own registry is the
    process-default no-op).
    """
    from repro.campaign.spec import ScenarioSpec  # lazy: avoid import cycle
    from repro.kernels import use_backend

    payloads, backend = task
    specs = [ScenarioSpec.from_dict(payload) for payload in payloads]
    started = time.perf_counter()
    with use_backend(backend):
        histories = _run_single_process(specs)
    return histories, time.perf_counter() - started


def run_batched_scenarios(specs: Sequence, lanes: Optional[int] = None,
                          lane_chunk: Optional[int] = None
                          ) -> List[TrainingHistory]:
    """Execute seed-replica scenarios on the batched runtime.

    ``specs`` must be :class:`~repro.campaign.spec.ScenarioSpec` instances
    identical except for ``name``/``seed``.  Returns one history per spec,
    in order, each bit-identical to ``execute_scenario`` on that spec.

    With ``lanes > 1`` the replica lanes are split into contiguous chunks
    of ``lane_chunk`` specs (default ``ceil(len(specs) / lanes)``), each
    executed as its own :class:`BatchedGuanYuTrainer` in a process pool of
    ``lanes`` workers.  Lane→chunk assignment is deterministic (chunk ``i``
    holds ``specs[i * lane_chunk : (i + 1) * lane_chunk]``) and every lane
    is fully independent of the others, so the merged histories are
    bit-identical to the single-process batched run — and therefore to the
    sequential trainer — per seed.  The active kernel backend propagates
    to the chunk workers.  Exceptions raised inside a chunk (including
    :class:`BatchedExecutionError`) propagate to the caller, where the
    campaign engine's sequential fallback applies as usual.
    """
    specs = list(specs)
    for spec in specs:
        spec.validate()
    if specs and not spec_supports_batching(specs[0]):
        raise BatchingUnsupported(
            f"trainer '{specs[0].trainer}' / model '{specs[0].model}' has "
            f"no batched formulation")
    # The cross-spec check must run in the parent: chunks only see their
    # own slice, and a mixed group split across chunks would otherwise be
    # silently accepted.
    reference = _seedless_payload(specs[0]) if specs else None
    for spec in specs[1:]:
        if _seedless_payload(spec) != reference:
            raise ValueError(
                "batched execution requires scenarios that differ only "
                "in seed (and name)")

    if lanes is None:
        lanes = 1
    if lanes < 1:
        raise ValueError("lanes must be a positive integer")
    if lane_chunk is not None and lane_chunk < 1:
        raise ValueError("lane_chunk must be a positive integer")
    if multiprocessing.current_process().daemon:
        # Daemonic pool workers (the campaign engine's scenario pool)
        # cannot fork children of their own.
        lanes = 1
    chunk_size = lane_chunk if lane_chunk is not None \
        else -(-len(specs) // max(lanes, 1))
    if lanes <= 1 or not specs or chunk_size >= len(specs):
        return _run_single_process(specs)

    backend = active_backend().name
    chunks = [specs[start: start + chunk_size]
              for start in range(0, len(specs), chunk_size)]
    tasks = [([spec.to_dict() for spec in chunk], backend)
             for chunk in chunks]
    with multiprocessing.get_context().Pool(
            processes=min(lanes, len(chunks))) as pool:
        chunk_results = pool.map(_run_lane_chunk, tasks)
    registry = get_registry()
    if registry.enabled:
        for _, elapsed in chunk_results:
            registry.observe("repro_batch_lane_chunk_seconds", elapsed,
                             backend=backend)
    return [history for chunk, _ in chunk_results for history in chunk]
