"""Replica-batched forward/backward for the dense model zoo.

The sequential runtime computes every worker gradient through the autograd
graph (:mod:`repro.tensor`).  The batched runtime replaces that with a
hand-derived forward/backward that adds one leading **replica axis** —
parameters ``(R, D)``, activations ``(R, B, ...)`` — and is constructed to
be **bit-identical** to the autograd path per replica slice:

* every elementwise operation (shift, exp, log, ReLU mask, bias add) is the
  same IEEE-754 expression evaluated per element;
* every reduction (softmax normaliser, loss mean, bias gradient) reduces the
  same number of elements along the same axis, which NumPy evaluates with
  the same pairwise order per output element regardless of the extra
  leading axis;
* every matrix product is a stacked ``np.matmul``, which runs the identical
  GEMM per replica slice.

``tests/test_batch_equivalence.py`` pins this guarantee against the real
trainers.  Only the dense models (``softmax``, ``mlp``) are supported — the
convolutional models go through :class:`BatchingUnsupported` and the caller
falls back to sequential execution.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.kernels import active_backend
from repro.nn.layers import Dense, ReLU
from repro.nn.models import MLP, SoftmaxRegression
from repro.nn.module import Module

#: ``ScenarioSpec.model`` names the batched runtime can execute
BATCHABLE_MODELS = ("softmax", "mlp")


class BatchingUnsupported(Exception):
    """The scenario cannot run on the batched runtime (caller falls back)."""


def _forward_layers(template: Module) -> List[Module]:
    """The template's layers in forward order, dense/ReLU only."""
    if isinstance(template, SoftmaxRegression):
        return [template.linear]
    if isinstance(template, MLP):
        return list(template.net.layers)
    raise BatchingUnsupported(
        f"model {type(template).__name__} has no replica-batched "
        f"formulation; only dense stacks ({', '.join(BATCHABLE_MODELS)}) "
        f"are supported")


class BatchedDenseStack:
    """Replica-batched view of a dense classifier (softmax / MLP).

    Parameters are *not* stored here: every call takes a ``(R, D)`` stack of
    flat parameter vectors (the replica-axis memory model of
    :mod:`repro.batch`) and slices it into per-layer weight/bias views using
    the template's flat layout, so the batched trainer can keep one
    contiguous array per server and per worker aggregation.
    """

    def __init__(self, template: Module) -> None:
        self.num_parameters = template.num_parameters()
        self._plan: List[Tuple] = []
        offset = 0
        for layer in _forward_layers(template):
            if isinstance(layer, Dense):
                if layer.bias is None:
                    raise BatchingUnsupported(
                        "dense layers without bias are not used by the model "
                        "zoo and have no batched formulation")
                in_f, out_f = layer.in_features, layer.out_features
                w_slice = slice(offset, offset + in_f * out_f)
                offset += in_f * out_f
                b_slice = slice(offset, offset + out_f)
                offset += out_f
                self._plan.append(("dense", in_f, out_f, w_slice, b_slice))
            elif isinstance(layer, ReLU):
                self._plan.append(("relu",))
            else:
                raise BatchingUnsupported(
                    f"layer {type(layer).__name__} has no replica-batched "
                    f"formulation")
        if offset != self.num_parameters:
            raise BatchingUnsupported(
                "flat-parameter layout does not match the dense plan")

    # ------------------------------------------------------------------ #
    def forward_logits(self, flat: np.ndarray, features: np.ndarray,
                       caches: list = None) -> np.ndarray:
        """Logits ``(R, B, C)`` for parameters ``(R, D)``, inputs ``(R, B, …)``.

        When ``caches`` is a list it receives the per-layer values the
        backward pass needs (layer inputs, weight views, ReLU masks).
        Delegates to the active kernel backend (see :mod:`repro.kernels`);
        every backend is bit-identical to ``reference`` by contract.
        """
        return active_backend().dense_forward_logits(
            self._plan, flat, features, caches)

    def forward_backward(self, flat: np.ndarray, features: np.ndarray,
                         labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Cross-entropy losses ``(R,)`` and flat gradients ``(R, D)``.

        Mirrors ``WorkerNode.compute_gradient``'s autograd tape op by op:
        stable log-softmax (max-shift, exp, sum, log), NLL mean, and the
        reverse sweep through the dense stack.  Delegates to the active
        kernel backend.
        """
        return active_backend().dense_forward_backward(
            self._plan, self.num_parameters, flat, features, labels)
