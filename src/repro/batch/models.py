"""Replica-batched forward/backward for the dense model zoo.

The sequential runtime computes every worker gradient through the autograd
graph (:mod:`repro.tensor`).  The batched runtime replaces that with a
hand-derived forward/backward that adds one leading **replica axis** —
parameters ``(R, D)``, activations ``(R, B, ...)`` — and is constructed to
be **bit-identical** to the autograd path per replica slice:

* every elementwise operation (shift, exp, log, ReLU mask, bias add) is the
  same IEEE-754 expression evaluated per element;
* every reduction (softmax normaliser, loss mean, bias gradient) reduces the
  same number of elements along the same axis, which NumPy evaluates with
  the same pairwise order per output element regardless of the extra
  leading axis;
* every matrix product is a stacked ``np.matmul``, which runs the identical
  GEMM per replica slice.

``tests/test_batch_equivalence.py`` pins this guarantee against the real
trainers.  Only the dense models (``softmax``, ``mlp``) are supported — the
convolutional models go through :class:`BatchingUnsupported` and the caller
falls back to sequential execution.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.nn.layers import Dense, ReLU
from repro.nn.models import MLP, SoftmaxRegression
from repro.nn.module import Module

#: ``ScenarioSpec.model`` names the batched runtime can execute
BATCHABLE_MODELS = ("softmax", "mlp")


class BatchingUnsupported(Exception):
    """The scenario cannot run on the batched runtime (caller falls back)."""


def _forward_layers(template: Module) -> List[Module]:
    """The template's layers in forward order, dense/ReLU only."""
    if isinstance(template, SoftmaxRegression):
        return [template.linear]
    if isinstance(template, MLP):
        return list(template.net.layers)
    raise BatchingUnsupported(
        f"model {type(template).__name__} has no replica-batched "
        f"formulation; only dense stacks ({', '.join(BATCHABLE_MODELS)}) "
        f"are supported")


class BatchedDenseStack:
    """Replica-batched view of a dense classifier (softmax / MLP).

    Parameters are *not* stored here: every call takes a ``(R, D)`` stack of
    flat parameter vectors (the replica-axis memory model of
    :mod:`repro.batch`) and slices it into per-layer weight/bias views using
    the template's flat layout, so the batched trainer can keep one
    contiguous array per server and per worker aggregation.
    """

    def __init__(self, template: Module) -> None:
        self.num_parameters = template.num_parameters()
        self._plan: List[Tuple] = []
        offset = 0
        for layer in _forward_layers(template):
            if isinstance(layer, Dense):
                if layer.bias is None:
                    raise BatchingUnsupported(
                        "dense layers without bias are not used by the model "
                        "zoo and have no batched formulation")
                in_f, out_f = layer.in_features, layer.out_features
                w_slice = slice(offset, offset + in_f * out_f)
                offset += in_f * out_f
                b_slice = slice(offset, offset + out_f)
                offset += out_f
                self._plan.append(("dense", in_f, out_f, w_slice, b_slice))
            elif isinstance(layer, ReLU):
                self._plan.append(("relu",))
            else:
                raise BatchingUnsupported(
                    f"layer {type(layer).__name__} has no replica-batched "
                    f"formulation")
        if offset != self.num_parameters:
            raise BatchingUnsupported(
                "flat-parameter layout does not match the dense plan")

    # ------------------------------------------------------------------ #
    def forward_logits(self, flat: np.ndarray, features: np.ndarray,
                       caches: list = None) -> np.ndarray:
        """Logits ``(R, B, C)`` for parameters ``(R, D)``, inputs ``(R, B, …)``.

        When ``caches`` is a list it receives the per-layer values the
        backward pass needs (layer inputs, weight views, ReLU masks).
        """
        hidden = features
        if hidden.ndim > 3:  # image input: flatten like the sequential models
            hidden = hidden.reshape(hidden.shape[0], hidden.shape[1], -1)
        for entry in self._plan:
            if entry[0] == "dense":
                _, in_f, out_f, w_slice, b_slice = entry
                weight = flat[:, w_slice].reshape(-1, in_f, out_f)
                bias = flat[:, b_slice]
                if caches is not None:
                    caches.append((hidden, weight))
                hidden = hidden @ weight
                hidden = hidden + bias[:, None, :]
            else:  # relu
                mask = (hidden > 0).astype(np.float64)
                if caches is not None:
                    caches.append(mask)
                hidden = hidden * mask
        return hidden

    def forward_backward(self, flat: np.ndarray, features: np.ndarray,
                         labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Cross-entropy losses ``(R,)`` and flat gradients ``(R, D)``.

        Mirrors ``WorkerNode.compute_gradient``'s autograd tape op by op:
        stable log-softmax (max-shift, exp, sum, log), NLL mean, and the
        reverse sweep through the dense stack.
        """
        flat = np.asarray(flat, dtype=np.float64)
        caches: list = []
        logits = self.forward_logits(flat, features, caches)
        replicas, batch, _ = logits.shape

        shift = logits.max(axis=2, keepdims=True)
        shifted = logits - shift
        exps = np.exp(shifted)
        normaliser = exps.sum(axis=2, keepdims=True)
        log_norm = np.log(normaliser)
        log_probs = shifted - log_norm

        lanes = np.arange(replicas)[:, None]
        rows = np.arange(batch)[None, :]
        picked = log_probs[lanes, rows, labels]
        losses = -(picked.sum(axis=1) * (1.0 / batch))

        # Backward: d(loss)/d(log_probs) is −1/B at the target entries; the
        # log-softmax pullback adds softmax/B (computed exactly as the tape
        # does: the log/sum/exp chain, not a fused softmax).
        picked_grad = -1.0 * (1.0 / batch)
        d_log_probs = np.zeros_like(log_probs)
        d_log_probs[lanes, rows, labels] = picked_grad
        d_log_norm = -(d_log_probs.sum(axis=2, keepdims=True))
        d_normaliser = d_log_norm / normaliser
        d_shifted = d_log_probs + d_normaliser * exps
        d_hidden = d_shifted  # the max-shift is a constant under the tape

        grads: List[np.ndarray] = [None] * len(self._plan)
        for index in range(len(self._plan) - 1, -1, -1):
            entry = self._plan[index]
            if entry[0] == "dense":
                layer_in, weight = caches[index]
                bias_grad = d_hidden.sum(axis=1)
                weight_grad = layer_in.transpose(0, 2, 1) @ d_hidden
                grads[index] = (weight_grad, bias_grad)
                if index > 0:  # the batch input needs no gradient
                    d_hidden = d_hidden @ weight.transpose(0, 2, 1)
            else:  # relu
                d_hidden = d_hidden * caches[index]

        pieces = []
        for entry, grad in zip(self._plan, grads):
            if entry[0] == "dense":
                weight_grad, bias_grad = grad
                pieces.append(weight_grad.reshape(replicas, -1))
                pieces.append(bias_grad)
        return losses, np.concatenate(pieces, axis=1)
