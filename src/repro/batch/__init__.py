"""Batched multi-replica execution: R seeds of one scenario per process.

The paper's claims are statistical — every table cell wants many seeds —
yet running each seed as a separate simulation repays the whole Python
protocol overhead per replica.  This package stacks the replicas along a
leading axis instead (parameters ``(R, D)``, aggregation inputs
``(R, n, D)``) and executes them in lock-step, bit-identical per seed to
the sequential :class:`~repro.core.trainer.GuanYuTrainer`.

See ``docs/performance.md`` for the memory model, the supported scenario
envelope, and how the campaign engine routes seed-only sweeps here.
"""

from repro.batch.models import (
    BATCHABLE_MODELS,
    BatchedDenseStack,
    BatchingUnsupported,
)
from repro.batch.trainer import (
    BatchedExecutionError,
    BatchedGuanYuTrainer,
    run_batched_scenarios,
    spec_supports_batching,
)

__all__ = [
    "BATCHABLE_MODELS",
    "BatchedDenseStack",
    "BatchingUnsupported",
    "BatchedExecutionError",
    "BatchedGuanYuTrainer",
    "run_batched_scenarios",
    "spec_supports_batching",
]
