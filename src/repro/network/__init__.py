"""Asynchronous network simulation.

The original GuanYu deployment runs over gRPC on a Grid5000 cluster; the
algorithmically relevant properties of that network are (a) unbounded,
variable message delays and (b) the resulting "first q received" delivery
order at each node.  This package provides a seeded, discrete-event message
simulator reproducing exactly those properties, with pluggable delay models
(constant, uniform, exponential, log-normal, per-link heterogeneity, slow
nodes, partition bursts) and controller-backed fault injection — message
loss/duplication plus the timed crashes, partitions and delay spikes of
:mod:`repro.faults`.
"""

from repro.network.message import Message, MessageKind
from repro.network.delays import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    HeterogeneousDelay,
    LogNormalDelay,
    PartitionDelay,
    UniformDelay,
)
from repro.network.simulator import DeliveryRecord, NetworkSimulator, NetworkStats

__all__ = [
    "Message",
    "MessageKind",
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "ExponentialDelay",
    "LogNormalDelay",
    "HeterogeneousDelay",
    "PartitionDelay",
    "NetworkSimulator",
    "NetworkStats",
    "DeliveryRecord",
]
