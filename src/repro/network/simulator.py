"""Discrete-event message delivery simulator.

The simulator keeps one mailbox per recipient.  Senders call :meth:`send`
with a send timestamp; the simulator samples a delay from the configured
:class:`~repro.network.delays.DelayModel`, consults the optional
:class:`~repro.faults.FaultController` (crashes, partitions, drop rates,
delay spikes, duplication), and records the delivery.  Receivers call
:meth:`collect_quorum` to obtain the *first q* messages of a given kind and
step — exactly the delivery rule of GuanYu (Figure 2, "late messages being
discarded") — together with the simulated time at which the q-th message
arrived.

The simulator never assumes a bound on delays: quorum collection only
requires that enough correct senders eventually respond, which the caller
guarantees by construction (quorums ≤ number of correct nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.faults import FaultController, FaultSchedule
from repro.network.delays import ConstantDelay, DelayModel
from repro.network.message import Message, MessageKind


@dataclass
class NetworkStats:
    """Aggregate statistics maintained by the simulator.

    ``messages_delivered`` counts actual mailbox deliveries — duplicates
    included — and is the divisor of :attr:`mean_delay`, so duplicated
    deliveries (whose delay also accrues to ``total_delay``) cannot skew
    the mean.  ``messages_blocked`` counts deterministic fault suppression
    (crashed endpoints, active partitions), kept separate from the
    probabilistic ``messages_dropped``.
    """

    messages_sent: int = 0
    messages_dropped: int = 0
    messages_blocked: int = 0
    messages_duplicated: int = 0
    messages_delivered: int = 0
    bytes_sent: int = 0
    total_delay: float = 0.0

    @property
    def mean_delay(self) -> float:
        return (self.total_delay / self.messages_delivered
                if self.messages_delivered > 0 else 0.0)


@dataclass
class DeliveryRecord:
    """Result of a quorum collection."""

    messages: List[Message]
    completion_time: float
    waited_for: int

    @property
    def payloads(self) -> List[np.ndarray]:
        return [m.payload for m in self.messages]

    @property
    def senders(self) -> List[str]:
        return [m.sender for m in self.messages]


class NetworkSimulator:
    """Seeded asynchronous message-passing simulator.

    Parameters
    ----------
    delay_model:
        Delay distribution applied to every message.
    seed:
        Seed of the simulator's random generator (delays) and of the
        implicit fault controller's hash-based sampling.
    drop_probability:
        Probability that a message is silently lost.  The GuanYu protocol
        layer re-reads quorums, so occasional losses only slow progress.
        Back-compat shorthand for a :class:`FaultSchedule` with the same
        ``drop_rate``; ignored when ``fault_controller`` is given.
    duplicate_probability:
        Probability that a message is delivered twice (the protocol layer
        deduplicates by sender).  Back-compat shorthand like
        ``drop_probability``.
    fault_controller:
        Full declarative fault injection (crashes, partitions, per-link
        delay spikes / drop rates, duplication).  Supersedes the two
        probability shorthands.
    """

    def __init__(self, delay_model: Optional[DelayModel] = None, seed: int = 0,
                 drop_probability: float = 0.0,
                 duplicate_probability: float = 0.0,
                 fault_controller: Optional[FaultController] = None) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if not 0.0 <= duplicate_probability < 1.0:
            raise ValueError("duplicate_probability must be in [0, 1)")
        self.delay_model = delay_model if delay_model is not None else ConstantDelay()
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        if fault_controller is None and (drop_probability or duplicate_probability):
            fault_controller = FaultController(
                FaultSchedule(drop_rate=drop_probability,
                              duplicate_rate=duplicate_probability), seed=seed)
        self.faults = fault_controller
        self._rng = np.random.default_rng(seed)
        self._mailboxes: Dict[str, List[Message]] = {}
        self.stats = NetworkStats()

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    def send(self, sender: str, recipient: str, kind: MessageKind, step: int,
             payload: Optional[np.ndarray], send_time: float,
             delay_override: Optional[float] = None) -> Optional[Message]:
        """Send one message; returns the scheduled message or ``None`` if lost.

        ``delay_override`` lets Byzantine senders use the adversary's
        arbitrarily fast covert channel (the paper allows Byzantine nodes to
        coordinate out of band and to race honest messages).
        """
        if payload is None:
            # Silent behaviour: nothing ever reaches the network.
            return None
        message = Message(sender=sender, recipient=recipient, kind=kind,
                          step=step, payload=np.asarray(payload, dtype=np.float64),
                          send_time=send_time)
        self.stats.messages_sent += 1
        self.stats.bytes_sent += message.size_bytes

        decision = None
        if self.faults is not None:
            decision = self.faults.on_send(sender, recipient, kind.value, step)
            if not decision.deliver:
                if decision.blocked_by == "drop":
                    self.stats.messages_dropped += 1
                else:  # crash / partition: deterministic suppression
                    self.stats.messages_blocked += 1
                return None

        if delay_override is not None:
            delay = max(float(delay_override), 0.0)
        else:
            delay = self.delay_model.sample(self._rng, sender, recipient,
                                            message.size_bytes)
        if decision is not None:
            delay = decision.apply_to_delay(delay)
        message.deliver_time = send_time + delay
        self.stats.total_delay += delay
        self.stats.messages_delivered += 1
        self._mailboxes.setdefault(recipient, []).append(message)

        if decision is not None and decision.duplicate:
            duplicate = Message(sender=sender, recipient=recipient, kind=kind,
                                step=step, payload=message.payload,
                                send_time=send_time,
                                deliver_time=message.deliver_time + delay)
            self._mailboxes.setdefault(recipient, []).append(duplicate)
            self.stats.messages_duplicated += 1
            self.stats.messages_delivered += 1
            self.stats.total_delay += 2 * delay
        return message

    def broadcast(self, sender: str, recipients: List[str], kind: MessageKind,
                  step: int, payload: Optional[np.ndarray], send_time: float) -> None:
        """Send the same payload to every recipient."""
        for recipient in recipients:
            self.send(sender, recipient, kind, step, payload, send_time)

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #
    def collect_quorum(self, recipient: str, kind: MessageKind, step: int,
                       quorum: int, not_before: float = 0.0) -> DeliveryRecord:
        """Return the first ``quorum`` messages of the given kind and step.

        The receiver starts waiting at ``not_before`` (its local clock);
        messages delivered earlier are buffered and still count towards the
        quorum.  Duplicate senders are collapsed to their earliest delivery —
        a Byzantine sender cannot fill the quorum with copies of itself.

        Raises
        ------
        RuntimeError
            If fewer than ``quorum`` distinct senders ever deliver a message
            of this kind/step.  Under a correct configuration (quorum ≤
            number of correct senders) this indicates a protocol bug, so the
            error is loud rather than a silent stall.
        """
        if quorum <= 0:
            raise ValueError("quorum must be positive")
        mailbox = self._mailboxes.get(recipient, [])
        candidates = [m for m in mailbox if m.kind == kind and m.step == step]

        # Deduplicate by sender, keeping the earliest delivery.
        by_sender: Dict[str, Message] = {}
        for message in sorted(candidates):
            if message.sender not in by_sender:
                by_sender[message.sender] = message
        ordered = sorted(by_sender.values())

        if len(ordered) < quorum:
            raise RuntimeError(
                f"{recipient} needed a quorum of {quorum} '{kind.value}' messages "
                f"for step {step} but only {len(ordered)} distinct senders delivered"
            )
        chosen = ordered[:quorum]
        completion = max(not_before, chosen[-1].deliver_time)

        # Late messages are discarded (paper, Figure 2): remove every message
        # of this kind/step from the mailbox, delivered or not.
        self._mailboxes[recipient] = [
            m for m in mailbox if not (m.kind == kind and m.step == step)
        ]
        return DeliveryRecord(messages=chosen, completion_time=completion,
                              waited_for=quorum)

    def pending_count(self, recipient: str) -> int:
        """Number of messages currently buffered for ``recipient``."""
        return len(self._mailboxes.get(recipient, []))

    def purge_step(self, step: int) -> int:
        """Discard all buffered messages belonging to ``step``; returns count."""
        removed = 0
        for recipient, mailbox in self._mailboxes.items():
            kept = [m for m in mailbox if m.step != step]
            removed += len(mailbox) - len(kept)
            self._mailboxes[recipient] = kept
        return removed
