"""Message delay models.

A delay model maps ``(sender, recipient, size_bytes)`` to a latency sample in
seconds.  All models add a bandwidth term ``size / bandwidth`` on top of
their latency distribution so that exchanging a 1.75 M-parameter model is
visibly more expensive than exchanging a small control message — this is
what produces the communication-bound overheads reported in the paper's
Figure 3(b)/(d).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np


class DelayModel:
    """Base delay model.

    Parameters
    ----------
    bandwidth_bytes_per_second:
        Link bandwidth used for the serialisation/transfer term.  The default
        corresponds to the paper's 10 Gbps Ethernet (1.25e9 bytes/s).
    """

    #: True when :meth:`latency` ignores both ``sender`` and ``recipient``,
    #: i.e. every link draws from one shared distribution.  The batched
    #: runtime uses this to merge a phase's per-send draws into one
    #: ``sample_batch`` call per lane (the concatenated stream is
    #: bit-identical to consecutive per-send calls on the same generator).
    #: Link-dependent models (per-node factors, partitions) must set this
    #: False.
    latency_is_link_independent = True

    def __init__(self, bandwidth_bytes_per_second: float = 1.25e9) -> None:
        if bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth_bytes_per_second

    def latency(self, rng: np.random.Generator, sender: str, recipient: str) -> float:
        """Sample the pure latency component (seconds)."""
        raise NotImplementedError

    def latency_batch(self, rng: np.random.Generator, sender: str,
                      recipient: Optional[str], count: int) -> np.ndarray:
        """Sample ``count`` consecutive latencies from one generator.

        Must be **bit-identical** to ``count`` successive :meth:`latency`
        calls on the same generator — the batched runtime relies on this to
        reproduce the sequential simulator's delay stream exactly.  The
        default literally loops; subclasses override with the equivalent
        vectorised draw (NumPy ``Generator`` fills vectorised requests from
        the same bit stream as repeated scalar draws).
        """
        return np.array([self.latency(rng, sender, recipient)
                         for _ in range(count)], dtype=np.float64)

    def sample(self, rng: np.random.Generator, sender: str, recipient: str,
               size_bytes: int) -> float:
        """Sample the total delay for a message of ``size_bytes``."""
        transfer = size_bytes / self.bandwidth
        delay = self.latency(rng, sender, recipient) + transfer
        return max(delay, 0.0)

    def sample_batch(self, rng: np.random.Generator, sender: str,
                     recipient: Optional[str], size_bytes: int,
                     count: int) -> np.ndarray:
        """``count`` consecutive :meth:`sample` draws as one array."""
        if count == 0:
            return np.zeros(0)
        transfer = size_bytes / self.bandwidth
        return np.maximum(
            self.latency_batch(rng, sender, recipient, count) + transfer, 0.0)


class ConstantDelay(DelayModel):
    """Fixed latency on every link (useful for deterministic tests)."""

    def __init__(self, delay: float = 1e-3, **kwargs) -> None:
        super().__init__(**kwargs)
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = delay

    def latency(self, rng, sender, recipient) -> float:
        return self.delay

    def latency_batch(self, rng, sender, recipient, count) -> np.ndarray:
        return np.full(count, self.delay, dtype=np.float64)


class UniformDelay(DelayModel):
    """Latency sampled uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.5e-3, high: float = 2e-3, **kwargs) -> None:
        super().__init__(**kwargs)
        if not 0 <= low <= high:
            raise ValueError("expected 0 <= low <= high")
        self.low = low
        self.high = high

    def latency(self, rng, sender, recipient) -> float:
        return float(rng.uniform(self.low, self.high))

    def latency_batch(self, rng, sender, recipient, count) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=count)


class ExponentialDelay(DelayModel):
    """Exponentially distributed latency (heavy-ish tail, memoryless)."""

    def __init__(self, mean: float = 1e-3, minimum: float = 1e-4, **kwargs) -> None:
        super().__init__(**kwargs)
        if mean <= 0 or minimum < 0:
            raise ValueError("mean must be positive and minimum non-negative")
        self.mean = mean
        self.minimum = minimum

    def latency(self, rng, sender, recipient) -> float:
        return self.minimum + float(rng.exponential(self.mean))

    def latency_batch(self, rng, sender, recipient, count) -> np.ndarray:
        return self.minimum + rng.exponential(self.mean, size=count)


class LogNormalDelay(DelayModel):
    """Log-normal latency — the classic datacentre tail-latency model."""

    def __init__(self, median: float = 1e-3, sigma: float = 0.5, **kwargs) -> None:
        super().__init__(**kwargs)
        if median <= 0 or sigma <= 0:
            raise ValueError("median and sigma must be positive")
        self.median = median
        self.sigma = sigma

    def latency(self, rng, sender, recipient) -> float:
        return float(rng.lognormal(np.log(self.median), self.sigma))

    def latency_batch(self, rng, sender, recipient, count) -> np.ndarray:
        return rng.lognormal(np.log(self.median), self.sigma, size=count)


class HeterogeneousDelay(DelayModel):
    """Wrap a base model with per-node slowdown factors.

    Useful to model stragglers: a node with factor 5.0 sees all of its links
    five times slower.  Asynchrony means GuanYu must keep working despite
    such nodes — the quorums simply exclude them.
    """

    latency_is_link_independent = False

    def __init__(self, base: DelayModel,
                 node_factors: Optional[Dict[str, float]] = None, **kwargs) -> None:
        super().__init__(bandwidth_bytes_per_second=base.bandwidth, **kwargs)
        self.base = base
        self.node_factors = dict(node_factors or {})

    def latency(self, rng, sender, recipient) -> float:
        factor = self.node_factors.get(sender, 1.0) * self.node_factors.get(recipient, 1.0)
        return factor * self.base.latency(rng, sender, recipient)


class PartitionDelay(DelayModel):
    """Simulate transient network congestion / partial partitions.

    During recurring windows of ``partition_duration`` seconds (every
    ``period`` seconds), messages crossing the partitioned set of nodes incur
    an extra ``partition_penalty`` delay — modelling the adversary's ability
    to congest parts of the network for short periods (paper Section 2,
    discussion of timing assumptions).
    """

    latency_is_link_independent = False

    def __init__(self, base: DelayModel, partitioned_nodes: Iterable[str],
                 period: float = 1.0, partition_duration: float = 0.2,
                 partition_penalty: float = 0.5, **kwargs) -> None:
        super().__init__(bandwidth_bytes_per_second=base.bandwidth, **kwargs)
        self.base = base
        self.partitioned_nodes = set(partitioned_nodes)
        self.period = period
        self.partition_duration = partition_duration
        self.partition_penalty = partition_penalty
        self._clock = 0.0

    def set_clock(self, now: float) -> None:
        """Update the wall-clock used to decide whether a partition is active."""
        self._clock = now

    def latency(self, rng, sender, recipient) -> float:
        delay = self.base.latency(rng, sender, recipient)
        crosses = (sender in self.partitioned_nodes) != (recipient in self.partitioned_nodes)
        in_window = (self._clock % self.period) < self.partition_duration
        if crosses and in_window:
            delay += self.partition_penalty
        return delay
