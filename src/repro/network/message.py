"""Message types exchanged by the distributed protocol."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

_MESSAGE_COUNTER = itertools.count()


class MessageKind(str, enum.Enum):
    """The three message types of the GuanYu protocol (Figure 2).

    ``MODEL_TO_WORKER``   — phase 1: parameter server → worker, carries θ_t.
    ``GRADIENT_TO_SERVER`` — phase 2: worker → parameter server, carries g_t.
    ``MODEL_TO_SERVER``   — phase 3: parameter server → parameter server,
    carries the locally updated model before the inter-server median.
    """

    MODEL_TO_WORKER = "model_to_worker"
    GRADIENT_TO_SERVER = "gradient_to_server"
    MODEL_TO_SERVER = "model_to_server"


@dataclass
class Message:
    """A single message in flight.

    Attributes
    ----------
    sender, recipient:
        Node identifiers (e.g. ``"ps/0"``, ``"worker/3"``).
    kind:
        One of :class:`MessageKind`.
    step:
        The learning step the message belongs to.  GuanYu is bulk-synchronous
        per step: receivers discard messages from other steps.
    payload:
        The flat parameter or gradient vector carried by the message, or
        ``None`` for a silent (never sent) message placeholder.
    send_time, deliver_time:
        Simulated timestamps in seconds.
    """

    sender: str
    recipient: str
    kind: MessageKind
    step: int
    payload: Optional[np.ndarray]
    send_time: float = 0.0
    deliver_time: float = 0.0
    message_id: int = field(default_factory=lambda: next(_MESSAGE_COUNTER))

    @property
    def size_bytes(self) -> int:
        """Approximate wire size of the payload (float32 per entry + header).

        The original implementation serialises float32 tensors into protocol
        buffers; we model the same 4-bytes-per-parameter footprint.
        """
        if self.payload is None:
            return 64
        return 64 + 4 * int(np.asarray(self.payload).size)

    def __lt__(self, other: "Message") -> bool:
        """Order messages by delivery time (ties broken by id for stability)."""
        return (self.deliver_time, self.message_id) < (other.deliver_time, other.message_id)
