"""Median-based aggregation rules.

The coordinate-wise median ``M`` is the rule GuanYu applies to *parameter
vectors*: at the workers (phase 1, aggregating the first ``q`` models
received from the parameter servers) and between parameter servers
(phase 3).  Its contraction property — the median of a cloud of replicas
stays inside the bounding box of the correct replicas as long as they form a
majority — is the backbone of the convergence proof (supplementary
Lemma 9.2.3).
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import GradientAggregationRule
from repro.kernels import active_backend


class CoordinateWiseMedian(GradientAggregationRule):
    """Coordinate-wise median ``M`` (paper Section 3.2).

    For every coordinate ``i``, the output's ``i``-th entry is the median of
    the inputs' ``i``-th entries.  With ``n`` inputs of which at most ``f``
    are Byzantine, each output coordinate is guaranteed to lie within the
    range spanned by correct inputs whenever ``n ≥ 2f + 1``.
    """

    name = "median"
    byzantine_resilient = True

    def minimum_inputs(self) -> int:
        return 2 * self.num_byzantine + 1

    def _aggregate(self, stacked: np.ndarray) -> np.ndarray:
        return active_backend().median(stacked, axis=0)

    def _aggregate_batched(self, stacked: np.ndarray) -> np.ndarray:
        return active_backend().median(stacked, axis=1)


class MarginalMedian(GradientAggregationRule):
    """Coordinate-wise median restricted to the ``n - f`` smallest-norm inputs.

    A conservative variant used in ablations: it first discards the ``f``
    inputs with the largest norms (cheap outlier rejection) and then applies
    the coordinate-wise median to the rest.
    """

    name = "marginal_median"
    byzantine_resilient = True

    def minimum_inputs(self) -> int:
        return 2 * self.num_byzantine + 2

    def _aggregate(self, stacked: np.ndarray) -> np.ndarray:
        if self.num_byzantine == 0:
            return active_backend().median(stacked, axis=0)
        norms = np.linalg.norm(stacked, axis=1)
        keep = np.argsort(norms)[: stacked.shape[0] - self.num_byzantine]
        return active_backend().median(stacked[keep], axis=0)

    def _aggregate_batched(self, stacked: np.ndarray) -> np.ndarray:
        if self.num_byzantine == 0:
            return active_backend().median(stacked, axis=1)
        norms = np.linalg.norm(stacked, axis=2)
        keep = np.argsort(norms, axis=1)[:, : stacked.shape[1] - self.num_byzantine]
        kept = np.take_along_axis(stacked, keep[:, :, None], axis=1)
        return active_backend().median(kept, axis=1)
