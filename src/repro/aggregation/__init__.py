"""Gradient Aggregation Rules (GARs).

A GAR maps ``n`` vectors of dimension ``d`` to a single vector of dimension
``d``.  GuanYu uses two of them:

* the **coordinate-wise median** ``M`` to aggregate parameter vectors (at the
  workers in phase 1 and between parameter servers in phase 3), and
* **Multi-Krum** ``F`` to aggregate gradients at the parameter servers
  (phase 2).

This package also implements the non-robust arithmetic mean (the vanilla
baseline), Krum, the trimmed mean, Bulyan and the geometric median so that
the ablation benchmarks can swap the rules at each aggregation point.
"""

from repro.aggregation.base import (
    GradientAggregationRule,
    check_vectors,
    check_vectors_batched,
)
from repro.aggregation.mean import ArithmeticMean, TrimmedMean
from repro.aggregation.median import CoordinateWiseMedian, MarginalMedian
from repro.aggregation.krum import (
    Krum,
    MultiKrum,
    krum_scores,
    krum_scores_batched,
    pairwise_squared_distances_batched,
)
from repro.aggregation.bulyan import Bulyan
from repro.aggregation.decision import GarDecision, attacker_acceptance_rate, decide
from repro.aggregation.geometric_median import GeometricMedian
from repro.aggregation.registry import available_rules, get_rule, register_rule
from repro.aggregation.resilience import (
    byzantine_resilience_report,
    krum_minimum_inputs,
    median_breakdown_point,
)

__all__ = [
    "GradientAggregationRule",
    "check_vectors",
    "check_vectors_batched",
    "ArithmeticMean",
    "TrimmedMean",
    "CoordinateWiseMedian",
    "MarginalMedian",
    "Krum",
    "MultiKrum",
    "krum_scores",
    "krum_scores_batched",
    "pairwise_squared_distances_batched",
    "Bulyan",
    "GarDecision",
    "decide",
    "attacker_acceptance_rate",
    "GeometricMedian",
    "get_rule",
    "register_rule",
    "available_rules",
    "byzantine_resilience_report",
    "krum_minimum_inputs",
    "median_breakdown_point",
]
