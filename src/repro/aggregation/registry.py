"""Registry of gradient aggregation rules.

Experiments refer to GARs by name (``"median"``, ``"multi_krum"``, ...);
the registry turns those names into configured rule instances.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.aggregation.base import GradientAggregationRule
from repro.aggregation.bulyan import Bulyan
from repro.aggregation.geometric_median import GeometricMedian
from repro.aggregation.krum import Krum, MultiKrum
from repro.aggregation.mean import ArithmeticMean, TrimmedMean
from repro.aggregation.median import CoordinateWiseMedian, MarginalMedian

_REGISTRY: Dict[str, Type[GradientAggregationRule]] = {}


def register_rule(rule_class: Type[GradientAggregationRule]) -> Type[GradientAggregationRule]:
    """Register a GAR class under its :attr:`name` attribute."""
    name = rule_class.name
    if not name or name == "abstract":
        raise ValueError("rule classes must define a non-empty 'name'")
    _REGISTRY[name] = rule_class
    return rule_class


for _rule in (ArithmeticMean, TrimmedMean, CoordinateWiseMedian, MarginalMedian,
              Krum, MultiKrum, Bulyan, GeometricMedian):
    register_rule(_rule)


def available_rules() -> List[str]:
    """Names of all registered rules, sorted."""
    return sorted(_REGISTRY)


def get_rule(name: str, num_byzantine: int = 0, **kwargs) -> GradientAggregationRule:
    """Instantiate a registered rule by name.

    Parameters
    ----------
    name:
        Registered rule name, e.g. ``"median"`` or ``"multi_krum"``.
    num_byzantine:
        Declared number of Byzantine inputs ``f``.
    kwargs:
        Extra keyword arguments forwarded to the rule constructor.
    """
    try:
        rule_class = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown aggregation rule '{name}'; available: {available_rules()}"
        ) from None
    return rule_class(num_byzantine=num_byzantine, **kwargs)
