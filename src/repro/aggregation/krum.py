"""Krum and Multi-Krum (Blanchard et al., NeurIPS 2017).

Multi-Krum ``F`` is the gradient aggregation rule GuanYu's parameter servers
apply in phase 2.  With ``n`` input gradients of which at most ``f`` are
Byzantine, it requires ``n ≥ 2f + 3`` and works as follows:

1. each input ``x_i`` is assigned a score equal to the sum of squared
   distances to its ``n − f − 2`` closest other inputs;
2. the output is the arithmetic mean of the ``n − f − 2`` smallest-scoring
   inputs (plain Krum outputs the single smallest-scoring input).

The supplementary material's Lemma 9.2.2 (bounded deviation from the
majority) holds for this construction; the reproduction validates it in
``tests/test_aggregation_properties.py``.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import GradientAggregationRule
from repro.kernels import active_backend


def pairwise_squared_distances(stacked: np.ndarray) -> np.ndarray:
    """Return the ``(n, n)`` matrix of squared Euclidean distances.

    One Gram-matrix product plus broadcasting — ``||x_i − x_j||² =
    ||x_i||² + ||x_j||² − 2⟨x_i, x_j⟩`` — instead of an ``O(n²)``
    Python-level loop.  Shared by Krum/Multi-Krum/Bulyan scoring and by the
    server-spread metric (:func:`repro.core.nodes.max_pairwise_distance`).
    Computed by the active kernel backend (:mod:`repro.kernels`); the
    result may be a view into backend scratch storage, valid until the
    backend's next same-shape call.
    """
    return active_backend().pairwise_squared_distances(stacked)


def pairwise_squared_distances_batched(stacked: np.ndarray) -> np.ndarray:
    """Batched Gram kernel: ``(R, n, d)`` stack → ``(R, n, n)`` distances.

    Replica slice ``r`` is bit-identical to
    ``pairwise_squared_distances(stacked[r])``: the stacked matmul runs the
    same GEMM per slice and the broadcasting arithmetic is elementwise.
    Backend-computed; the same scratch-storage caveat applies.
    """
    return active_backend().pairwise_squared_distances_batched(stacked)


def krum_scores(stacked: np.ndarray, num_byzantine: int) -> np.ndarray:
    """Compute the Krum score of every input vector.

    The score of ``x_i`` is the sum of squared distances from ``x_i`` to its
    ``n − f − 2`` nearest neighbours among the other inputs.
    """
    n = stacked.shape[0]
    num_neighbors = n - num_byzantine - 2
    if num_neighbors < 1:
        raise ValueError(
            f"Krum requires n - f - 2 >= 1 (got n={n}, f={num_byzantine})"
        )
    squared = pairwise_squared_distances(stacked)
    # Exclude the vector itself (distance 0 on the diagonal) from neighbours.
    np.fill_diagonal(squared, np.inf)
    return active_backend().krum_neighbor_sums(squared, num_neighbors)


def krum_scores_batched(stacked: np.ndarray, num_byzantine: int) -> np.ndarray:
    """Krum scores of an ``(R, n, d)`` replica stack, shape ``(R, n)``."""
    n = stacked.shape[1]
    num_neighbors = n - num_byzantine - 2
    if num_neighbors < 1:
        raise ValueError(
            f"Krum requires n - f - 2 >= 1 (got n={n}, f={num_byzantine})"
        )
    squared = pairwise_squared_distances_batched(stacked)
    diagonal = np.arange(n)
    squared[:, diagonal, diagonal] = np.inf
    return active_backend().krum_neighbor_sums_batched(squared, num_neighbors)


class Krum(GradientAggregationRule):
    """Krum: output the single input with the smallest score."""

    name = "krum"
    byzantine_resilient = True

    def minimum_inputs(self) -> int:
        return 2 * self.num_byzantine + 3

    def _aggregate(self, stacked: np.ndarray) -> np.ndarray:
        scores = krum_scores(stacked, self.num_byzantine)
        return stacked[int(np.argmin(scores))].copy()

    def _aggregate_batched(self, stacked: np.ndarray) -> np.ndarray:
        scores = krum_scores_batched(stacked, self.num_byzantine)
        winners = np.argmin(scores, axis=1)
        return stacked[np.arange(stacked.shape[0]), winners].copy()

    def select(self, stacked: np.ndarray) -> int:
        """Return the index of the selected input (used by Bulyan)."""
        scores = krum_scores(np.asarray(stacked, dtype=np.float64), self.num_byzantine)
        return int(np.argmin(scores))

    def selected_input_indices(self, stacked: np.ndarray) -> np.ndarray:
        return np.array([self.select(stacked)])

    def input_scores(self, stacked: np.ndarray) -> np.ndarray:
        return krum_scores(np.asarray(stacked, dtype=np.float64),
                           self.num_byzantine)


class MultiKrum(GradientAggregationRule):
    """Multi-Krum ``F``: mean of the ``n − f − 2`` smallest-scoring inputs.

    Parameters
    ----------
    num_byzantine:
        Declared number of Byzantine inputs ``f``; the rule requires at least
        ``2f + 3`` inputs.
    num_selected:
        Number ``m`` of gradients averaged.  Defaults to ``n − f − 2`` as in
        the paper; any ``1 ≤ m ≤ n − f − 2`` is accepted for ablations.
    """

    name = "multi_krum"
    byzantine_resilient = True

    def __init__(self, num_byzantine: int = 0, num_selected: int = None) -> None:
        super().__init__(num_byzantine)
        self.num_selected = num_selected

    def minimum_inputs(self) -> int:
        return 2 * self.num_byzantine + 3

    def selection_size(self, num_inputs: int) -> int:
        """Number of gradients averaged for ``num_inputs`` inputs."""
        default = num_inputs - self.num_byzantine - 2
        if self.num_selected is None:
            return default
        return max(1, min(self.num_selected, default))

    def selected_indices(self, stacked: np.ndarray) -> np.ndarray:
        """Indices of the inputs that enter the final average."""
        stacked = np.asarray(stacked, dtype=np.float64)
        scores = krum_scores(stacked, self.num_byzantine)
        size = self.selection_size(stacked.shape[0])
        return np.argsort(scores, kind="stable")[:size]

    def _aggregate(self, stacked: np.ndarray) -> np.ndarray:
        indices = self.selected_indices(stacked)
        return active_backend().mean(stacked[indices], axis=0)

    def selected_input_indices(self, stacked: np.ndarray) -> np.ndarray:
        return self.selected_indices(stacked)

    def input_scores(self, stacked: np.ndarray) -> np.ndarray:
        return krum_scores(np.asarray(stacked, dtype=np.float64),
                           self.num_byzantine)

    def _aggregate_batched(self, stacked: np.ndarray) -> np.ndarray:
        scores = krum_scores_batched(stacked, self.num_byzantine)
        size = self.selection_size(stacked.shape[1])
        indices = np.argsort(scores, axis=1, kind="stable")[:, :size]
        chosen = np.take_along_axis(stacked, indices[:, :, None], axis=1)
        return active_backend().mean(chosen, axis=1)
