"""Geometric median via Weiszfeld's algorithm.

An extension GAR (not used by GuanYu) included because the geometric median
is the canonical high-breakdown multivariate location estimator; ablations
compare it against the coordinate-wise median at the model-aggregation
points.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import GradientAggregationRule


class GeometricMedian(GradientAggregationRule):
    """Geometric (spatial) median computed with Weiszfeld iterations.

    Parameters
    ----------
    num_byzantine:
        Tolerated Byzantine inputs; requires a strict majority of correct
        inputs, i.e. ``n ≥ 2f + 1``.
    max_iterations, tolerance:
        Stopping criteria of the Weiszfeld fixed-point iteration.
    """

    name = "geometric_median"
    byzantine_resilient = True

    def __init__(self, num_byzantine: int = 0, max_iterations: int = 100,
                 tolerance: float = 1e-8) -> None:
        super().__init__(num_byzantine)
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def minimum_inputs(self) -> int:
        return 2 * self.num_byzantine + 1

    def _aggregate(self, stacked: np.ndarray) -> np.ndarray:
        estimate = np.median(stacked, axis=0)
        for _ in range(self.max_iterations):
            distances = np.linalg.norm(stacked - estimate, axis=1)
            # Avoid division by zero when the estimate coincides with a point.
            mask = distances > 1e-12
            if not np.any(mask):
                return estimate
            weights = np.zeros_like(distances)
            weights[mask] = 1.0 / distances[mask]
            new_estimate = (weights[:, None] * stacked).sum(axis=0) / weights.sum()
            shift = float(np.linalg.norm(new_estimate - estimate))
            estimate = new_estimate
            if shift < self.tolerance:
                break
        return estimate
