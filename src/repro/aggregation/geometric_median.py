"""Geometric median via Weiszfeld's algorithm.

An extension GAR (not used by GuanYu) included because the geometric median
is the canonical high-breakdown multivariate location estimator; ablations
compare it against the coordinate-wise median at the model-aggregation
points.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.aggregation.base import GradientAggregationRule


class GeometricMedian(GradientAggregationRule):
    """Geometric (spatial) median computed with Weiszfeld iterations.

    Parameters
    ----------
    num_byzantine:
        Tolerated Byzantine inputs; requires a strict majority of correct
        inputs, i.e. ``n ≥ 2f + 1``.
    max_iterations, tolerance:
        Stopping criteria of the Weiszfeld fixed-point iteration.

    Attributes
    ----------
    converged, iterations:
        Diagnostics of the most recent :meth:`aggregate` call: whether the
        fixed-point iteration met ``tolerance`` and how many iterations it
        ran.  A call that exhausts ``max_iterations`` without converging
        also emits a ``RuntimeWarning`` — the returned point is then only an
        approximation of the geometric median, which matters for benchmarks
        comparing aggregation-rule overheads at equal accuracy.
    """

    name = "geometric_median"
    byzantine_resilient = True

    def __init__(self, num_byzantine: int = 0, max_iterations: int = 100,
                 tolerance: float = 1e-8) -> None:
        super().__init__(num_byzantine)
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        #: diagnostics of the most recent aggregation (None before any call)
        self.converged = None
        self.iterations = 0

    def minimum_inputs(self) -> int:
        return 2 * self.num_byzantine + 1

    def _aggregate(self, stacked: np.ndarray) -> np.ndarray:
        estimate = np.median(stacked, axis=0)
        self.converged = False
        self.iterations = 0
        for iteration in range(self.max_iterations):
            self.iterations = iteration + 1
            distances = np.linalg.norm(stacked - estimate, axis=1)
            # Avoid division by zero when the estimate coincides with a point.
            mask = distances > 1e-12
            if not np.any(mask):
                self.converged = True
                return estimate
            weights = np.zeros_like(distances)
            weights[mask] = 1.0 / distances[mask]
            new_estimate = (weights[:, None] * stacked).sum(axis=0) / weights.sum()
            shift = float(np.linalg.norm(new_estimate - estimate))
            estimate = new_estimate
            if shift < self.tolerance:
                self.converged = True
                break
        if not self.converged:
            warnings.warn(
                f"geometric median did not converge within "
                f"{self.max_iterations} Weiszfeld iterations "
                f"(tolerance={self.tolerance}); returning the last iterate",
                RuntimeWarning, stacklevel=3)
        return estimate
