"""Averaging-based aggregation rules."""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import GradientAggregationRule
from repro.kernels import active_backend


class ArithmeticMean(GradientAggregationRule):
    """Plain arithmetic mean.

    This is the aggregation used by vanilla (non-Byzantine-resilient)
    TensorFlow deployments; a single Byzantine input can move the output
    arbitrarily far, which is exactly what Figure 4 of the paper
    demonstrates.
    """

    name = "mean"
    byzantine_resilient = False

    def _aggregate(self, stacked: np.ndarray) -> np.ndarray:
        return active_backend().mean(stacked, axis=0)

    def _aggregate_batched(self, stacked: np.ndarray) -> np.ndarray:
        return active_backend().mean(stacked, axis=1)


class TrimmedMean(GradientAggregationRule):
    """Coordinate-wise trimmed mean.

    For each coordinate, the ``num_byzantine`` largest and smallest values
    are discarded and the rest averaged.  Requires ``n > 2f``.
    """

    name = "trimmed_mean"
    byzantine_resilient = True

    def minimum_inputs(self) -> int:
        return 2 * self.num_byzantine + 1

    def _aggregate(self, stacked: np.ndarray) -> np.ndarray:
        return active_backend().trimmed_mean(stacked, self.num_byzantine,
                                             axis=0)

    def _aggregate_batched(self, stacked: np.ndarray) -> np.ndarray:
        return active_backend().trimmed_mean(stacked, self.num_byzantine,
                                             axis=1)
