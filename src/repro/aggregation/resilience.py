"""Byzantine-resilience bookkeeping for aggregation rules.

These helpers encode the arithmetic constraints of the paper:

* Multi-Krum requires ``n ≥ 2f + 3`` inputs (Section 3.1);
* the coordinate-wise median keeps every output coordinate within the range
  of correct inputs whenever correct inputs form a strict majority, giving a
  breakdown point of 1/2 in a synchronous setting;
* network asynchrony halves the effective breakdown point to 1/3
  (Section 3.5), which is where GuanYu's ``n ≥ 3f + 3`` comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


def krum_minimum_inputs(num_byzantine: int) -> int:
    """Smallest ``n`` for which (Multi-)Krum tolerates ``f`` Byzantine inputs."""
    if num_byzantine < 0:
        raise ValueError("num_byzantine must be non-negative")
    return 2 * num_byzantine + 3


def median_breakdown_point(num_inputs: int) -> float:
    """Fraction of inputs the coordinate-wise median tolerates (synchronous).

    The coordinate-wise median output stays within the correct inputs' range
    as long as correct inputs are a strict majority, i.e. up to
    ``ceil(n/2) - 1`` corrupted inputs.
    """
    if num_inputs <= 0:
        raise ValueError("num_inputs must be positive")
    tolerated = (num_inputs - 1) // 2
    return tolerated / num_inputs


def asynchronous_breakdown_point() -> float:
    """Optimal Byzantine fraction in asynchronous networks (paper §3.5).

    Synchronous robust aggregation breaks down at 1/2.  Asynchrony makes a
    slow correct node indistinguishable from a silent Byzantine one, which
    requires provisioning one extra correct node per Byzantine node, i.e.
    ``(1/2) / (3/2) = 1/3``.
    """
    return 1.0 / 3.0


@dataclass
class ResilienceReport:
    """Summary of how far an aggregation output deviates under attack."""

    rule_name: str
    num_inputs: int
    num_byzantine: int
    deviation_from_correct_mean: float
    max_correct_spread: float
    within_correct_hull: bool

    def as_dict(self) -> Dict[str, float]:
        return {
            "rule": self.rule_name,
            "n": self.num_inputs,
            "f": self.num_byzantine,
            "deviation_from_correct_mean": self.deviation_from_correct_mean,
            "max_correct_spread": self.max_correct_spread,
            "within_correct_hull": self.within_correct_hull,
        }


def byzantine_resilience_report(rule, correct_vectors: np.ndarray,
                                byzantine_vectors: np.ndarray) -> ResilienceReport:
    """Empirically measure a rule's deviation under a concrete attack.

    Parameters
    ----------
    rule:
        A configured :class:`GradientAggregationRule`.
    correct_vectors:
        Array ``(n - f, d)`` of honest inputs.
    byzantine_vectors:
        Array ``(f, d)`` of adversarial inputs.

    Returns
    -------
    ResilienceReport
        Deviation of the aggregate from the mean of correct inputs, the
        spread of correct inputs, and whether the aggregate stays inside the
        coordinate-wise bounding box of the correct inputs.
    """
    correct_vectors = np.atleast_2d(np.asarray(correct_vectors, dtype=np.float64))
    byzantine_vectors = np.atleast_2d(np.asarray(byzantine_vectors, dtype=np.float64))
    if byzantine_vectors.size == 0:
        all_vectors = correct_vectors
        num_byzantine = 0
    else:
        all_vectors = np.concatenate([correct_vectors, byzantine_vectors])
        num_byzantine = byzantine_vectors.shape[0]

    aggregate = rule(all_vectors)
    correct_mean = correct_vectors.mean(axis=0)
    deviation = float(np.linalg.norm(aggregate - correct_mean))

    if correct_vectors.shape[0] > 1:
        diffs = correct_vectors[:, None, :] - correct_vectors[None, :, :]
        spread = float(np.max(np.linalg.norm(diffs, axis=-1)))
    else:
        spread = 0.0

    lower = correct_vectors.min(axis=0) - 1e-9
    upper = correct_vectors.max(axis=0) + 1e-9
    within = bool(np.all(aggregate >= lower) and np.all(aggregate <= upper))

    return ResilienceReport(
        rule_name=getattr(rule, "name", type(rule).__name__),
        num_inputs=all_vectors.shape[0],
        num_byzantine=num_byzantine,
        deviation_from_correct_mean=deviation,
        max_correct_spread=spread,
        within_correct_hull=within,
    )
