"""Bulyan (El-Mhamdi et al., ICML 2018).

Bulyan combats the "hidden vulnerability" of distance-based rules in high
dimension by composing a selection rule (Krum here) with a per-coordinate
trimmed average.  It is not used by GuanYu itself but is included as an
ablation comparator for the server-side gradient aggregation.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import GradientAggregationRule
from repro.aggregation.krum import Krum
from repro.kernels import active_backend


class Bulyan(GradientAggregationRule):
    """Bulyan aggregation: iterated Krum selection + trimmed coordinate mean.

    Requires ``n ≥ 4f + 3`` inputs.  The rule repeatedly runs Krum to select
    ``n − 2f`` vectors, then for each coordinate averages the ``n − 4f``
    values closest to the coordinate-wise median of the selection.
    """

    name = "bulyan"
    byzantine_resilient = True

    def minimum_inputs(self) -> int:
        return 4 * self.num_byzantine + 3

    def _select(self, stacked: np.ndarray) -> list:
        """Iterated Krum selection: indices of the ``n − 2f`` chosen inputs."""
        f = self.num_byzantine
        n = stacked.shape[0]
        selection_size = n - 2 * f
        remaining = list(range(n))
        selected = []
        krum = Krum(num_byzantine=f)
        while len(selected) < selection_size:
            subset = stacked[remaining]
            # Krum needs n - f - 2 >= 1; fall back to smallest-norm choice when
            # the remaining pool becomes too small for a full Krum round.
            if subset.shape[0] - f - 2 >= 1:
                choice_local = krum.select(subset)
            else:
                choice_local = int(np.argmin(np.linalg.norm(subset, axis=1)))
            choice = remaining.pop(choice_local)
            selected.append(choice)
        return selected

    @staticmethod
    def _trimmed_coordinate_mean(chosen: np.ndarray, beta: int) -> np.ndarray:
        """Per coordinate, average the ``beta`` values closest to the median."""
        backend = active_backend()
        median = backend.median(chosen, axis=0)
        distances = np.abs(chosen - median)
        closest = np.argsort(distances, axis=0, kind="stable")[:beta]
        columns = np.arange(chosen.shape[1])
        return backend.mean(chosen[closest, columns], axis=0)

    def _beta(self, selection_size: int) -> int:
        return max(selection_size - 2 * self.num_byzantine, 1)

    def _aggregate(self, stacked: np.ndarray) -> np.ndarray:
        f = self.num_byzantine
        if f == 0:
            return active_backend().mean(stacked, axis=0)
        chosen = stacked[self._select(stacked)]
        return self._trimmed_coordinate_mean(chosen, self._beta(chosen.shape[0]))

    def selected_input_indices(self, stacked: np.ndarray):
        if self.num_byzantine == 0:
            return None  # degenerates to the mean: every input contributes
        return np.array(sorted(self._select(np.asarray(stacked, dtype=np.float64))))

    def _aggregate_batched(self, stacked: np.ndarray) -> np.ndarray:
        f = self.num_byzantine
        if f == 0:
            return active_backend().mean(stacked, axis=1)
        # The iterated selection is inherently sequential per replica (each
        # round's pool depends on the previous choice), so it stays a loop;
        # the final per-coordinate trim is vectorised over the replica axis.
        backend = active_backend()
        chosen = np.stack([replica[self._select(replica)] for replica in stacked])
        beta = self._beta(chosen.shape[1])
        median = backend.median(chosen, axis=1)
        distances = np.abs(chosen - median[:, None, :])
        closest = np.argsort(distances, axis=1, kind="stable")[:, :beta]
        gathered = np.take_along_axis(chosen, closest, axis=1)
        return backend.mean(gathered, axis=1)
