"""Base class and helpers shared by all gradient aggregation rules."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

VectorList = Union[Sequence[np.ndarray], np.ndarray]


def check_vectors(vectors: VectorList) -> np.ndarray:
    """Validate and stack a list of vectors into an ``(n, d)`` array.

    Raises
    ------
    ValueError
        If the list is empty, the vectors have mismatched shapes, or any
        entry contains NaN/Inf (a Byzantine message that reached this point
        should already have been sanitised by the node's ingress filter).
    """
    if isinstance(vectors, np.ndarray) and vectors.ndim == 2:
        stacked = np.asarray(vectors, dtype=np.float64)
    else:
        vectors = list(vectors)
        if not vectors:
            raise ValueError("cannot aggregate an empty list of vectors")
        first_shape = np.asarray(vectors[0]).shape
        for index, vector in enumerate(vectors):
            if np.asarray(vector).shape != first_shape:
                raise ValueError(
                    f"vector {index} has shape {np.asarray(vector).shape}, "
                    f"expected {first_shape}"
                )
        stacked = np.stack([np.asarray(v, dtype=np.float64).reshape(-1) for v in vectors])
    if stacked.ndim != 2:
        raise ValueError("expected a list of 1-D vectors")
    if not np.all(np.isfinite(stacked)):
        raise ValueError("aggregation input contains NaN or Inf values")
    return stacked


class GradientAggregationRule:
    """Abstract gradient aggregation rule (GAR).

    Subclasses implement :meth:`_aggregate` on a validated ``(n, d)`` array.

    Parameters
    ----------
    num_byzantine:
        The number ``f`` of inputs the rule is configured to tolerate.  The
        arithmetic mean ignores it; robust rules use it to size their
        selection sets and to validate that enough inputs were supplied.
    """

    #: short identifier used by the registry and experiment configs
    name: str = "abstract"
    #: whether the rule provides (α, f)-Byzantine resilience for f > 0
    byzantine_resilient: bool = False

    def __init__(self, num_byzantine: int = 0) -> None:
        if num_byzantine < 0:
            raise ValueError("num_byzantine must be non-negative")
        self.num_byzantine = int(num_byzantine)

    # ------------------------------------------------------------------ #
    def minimum_inputs(self) -> int:
        """Smallest number of input vectors the rule accepts."""
        return 1

    def _aggregate(self, stacked: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, vectors: VectorList) -> np.ndarray:
        """Aggregate ``vectors`` into a single vector."""
        stacked = check_vectors(vectors)
        if stacked.shape[0] < self.minimum_inputs():
            raise ValueError(
                f"{self.name} with f={self.num_byzantine} requires at least "
                f"{self.minimum_inputs()} inputs, got {stacked.shape[0]}"
            )
        return self._aggregate(stacked)

    def aggregate(self, vectors: VectorList) -> np.ndarray:
        """Alias of :meth:`__call__` for readability at call sites."""
        return self(vectors)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(num_byzantine={self.num_byzantine})"
