"""Base class and helpers shared by all gradient aggregation rules."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

VectorList = Union[Sequence[np.ndarray], np.ndarray]


def check_vectors_batched(stacked: np.ndarray) -> np.ndarray:
    """Validate an ``(R, n, d)`` replica-stacked aggregation input.

    ``R`` is the replica axis of the batched runtime
    (:mod:`repro.batch`): replica ``r`` holds the ``n`` vectors that one
    independent simulation would have aggregated.  The same NaN/Inf rule as
    :func:`check_vectors` applies to the whole stack.
    """
    stacked = np.asarray(stacked, dtype=np.float64)
    if stacked.ndim != 3:
        raise ValueError(
            f"batched aggregation expects an (R, n, d) stack, got shape "
            f"{stacked.shape}"
        )
    if stacked.shape[0] == 0:
        raise ValueError("batched aggregation needs at least one replica")
    if not np.all(np.isfinite(stacked)):
        raise ValueError("aggregation input contains NaN or Inf values")
    return stacked


def check_vectors(vectors: VectorList) -> np.ndarray:
    """Validate and stack a list of vectors into an ``(n, d)`` array.

    Raises
    ------
    ValueError
        If the list is empty, the vectors have mismatched shapes, or any
        entry contains NaN/Inf (a Byzantine message that reached this point
        should already have been sanitised by the node's ingress filter).
    """
    if isinstance(vectors, np.ndarray) and vectors.ndim == 2:
        stacked = np.asarray(vectors, dtype=np.float64)
    else:
        vectors = list(vectors)
        if not vectors:
            raise ValueError("cannot aggregate an empty list of vectors")
        first_shape = np.asarray(vectors[0]).shape
        for index, vector in enumerate(vectors):
            if np.asarray(vector).shape != first_shape:
                raise ValueError(
                    f"vector {index} has shape {np.asarray(vector).shape}, "
                    f"expected {first_shape}"
                )
        stacked = np.stack([np.asarray(v, dtype=np.float64).reshape(-1) for v in vectors])
    if stacked.ndim != 2:
        raise ValueError("expected a list of 1-D vectors")
    if not np.all(np.isfinite(stacked)):
        raise ValueError("aggregation input contains NaN or Inf values")
    return stacked


class GradientAggregationRule:
    """Abstract gradient aggregation rule (GAR).

    Subclasses implement :meth:`_aggregate` on a validated ``(n, d)`` array.

    Parameters
    ----------
    num_byzantine:
        The number ``f`` of inputs the rule is configured to tolerate.  The
        arithmetic mean ignores it; robust rules use it to size their
        selection sets and to validate that enough inputs were supplied.
    """

    #: short identifier used by the registry and experiment configs
    name: str = "abstract"
    #: whether the rule provides (α, f)-Byzantine resilience for f > 0
    byzantine_resilient: bool = False

    def __init__(self, num_byzantine: int = 0) -> None:
        if num_byzantine < 0:
            raise ValueError("num_byzantine must be non-negative")
        self.num_byzantine = int(num_byzantine)

    # ------------------------------------------------------------------ #
    def minimum_inputs(self) -> int:
        """Smallest number of input vectors the rule accepts."""
        return 1

    def _aggregate(self, stacked: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, vectors: VectorList) -> np.ndarray:
        """Aggregate ``vectors`` into a single vector."""
        stacked = check_vectors(vectors)
        if stacked.shape[0] < self.minimum_inputs():
            raise ValueError(
                f"{self.name} with f={self.num_byzantine} requires at least "
                f"{self.minimum_inputs()} inputs, got {stacked.shape[0]}"
            )
        return self._aggregate(stacked)

    def aggregate(self, vectors: VectorList) -> np.ndarray:
        """Alias of :meth:`__call__` for readability at call sites."""
        return self(vectors)

    # ------------------------------------------------------------------ #
    # Batched (multi-replica) code path
    # ------------------------------------------------------------------ #
    def _aggregate_batched(self, stacked: np.ndarray) -> np.ndarray:
        """Aggregate a validated ``(R, n, d)`` stack into ``(R, d)``.

        The default runs the sequential rule once per replica, which is
        always correct; rules with a vectorised formulation override this.
        Every override must be **bit-identical** to the per-replica loop —
        the batched runtime's equivalence guarantee rests on it, and
        ``tests/test_aggregation_batched.py`` enforces it for every
        registered rule.
        """
        return np.stack([self._aggregate(replica) for replica in stacked])

    def aggregate_batched(self, stacked: np.ndarray) -> np.ndarray:
        """Aggregate ``R`` independent replicas in one call.

        Parameters
        ----------
        stacked:
            Array of shape ``(R, n, d)``: for each of ``R`` replicas, the
            ``n`` vectors to aggregate.  Equivalent to ``R`` calls of
            :meth:`aggregate` on the ``(n, d)`` slices, but vectorised over
            the leading replica axis where the rule supports it.
        """
        stacked = check_vectors_batched(stacked)
        if stacked.shape[1] < self.minimum_inputs():
            raise ValueError(
                f"{self.name} with f={self.num_byzantine} requires at least "
                f"{self.minimum_inputs()} inputs, got {stacked.shape[1]}"
            )
        return self._aggregate_batched(stacked)

    # ------------------------------------------------------------------ #
    # Decision provenance (observability only — see aggregation.decision)
    # ------------------------------------------------------------------ #
    def selected_input_indices(self, stacked: np.ndarray):
        """Indices of the inputs that contribute to the output.

        ``None`` (the default) means "all of them" — appropriate for rules
        like the mean or coordinate-wise median where no input is formally
        discarded.  Selection-based rules (Krum family, Bulyan) override
        this; it exists purely for decision records and must never be used
        on the training path.
        """
        return None

    def input_scores(self, stacked: np.ndarray):
        """Per-input scores when the rule computes any (lower = better).

        ``None`` (the default) for score-free rules.  Observability only.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(num_byzantine={self.num_byzantine})"
