"""GAR decision provenance: *which* inputs a rule admitted, and why.

The paper's resilience claims are about selection behaviour — Multi-Krum
discarding the Byzantine gradients, Bulyan's trimmed mean neutralising the
survivors — yet an aggregated vector alone says nothing about which inputs
produced it.  :func:`decide` recomputes a rule's selection on a given input
stack and packages it as a :class:`GarDecision`: selected indices, per-input
scores, the output's distance to the honest mean, and how many known
attacker inputs made it into the selection.

Decision records are **derived observability data**: they re-run the rule's
selection logic on the side and never feed back into training, so emitting
them cannot perturb a run (they are gated behind
``Tracer.record_decisions`` because the recomputation is not free).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.aggregation.base import GradientAggregationRule, VectorList, check_vectors

__all__ = ["GarDecision", "decide", "attacker_acceptance_rate"]


@dataclass
class GarDecision:
    """One aggregation decision, reconstructed for observability.

    Attributes
    ----------
    rule:
        Registry name of the rule (``"multi_krum"``, ...).
    num_inputs / num_byzantine:
        Input count ``n`` and the rule's configured tolerance ``f``.
    selected:
        Indices (into the input stack) of the vectors that contribute to
        the output.  For selection-free rules (mean, median, trimmed mean)
        this is *all* indices — every input influences the output.
    scores:
        Per-input scores when the rule computes any (Krum family), else
        ``None``.  Lower is better.
    distance_to_honest_mean:
        ``‖output − mean(honest inputs)‖₂`` where "honest" means not listed
        in ``attacker_indices`` (all inputs when no attackers are known).
    attacker_indices / attackers_selected:
        Known attacker positions in the input stack, and how many of them
        were selected.
    acceptance_rate:
        ``attackers_selected / len(attacker_indices)`` — the per-decision
        attacker acceptance rate; ``None`` when no attacker is known.
    """

    rule: str
    num_inputs: int
    num_byzantine: int
    selected: List[int]
    scores: Optional[List[float]] = None
    distance_to_honest_mean: float = 0.0
    attacker_indices: List[int] = field(default_factory=list)
    attackers_selected: int = 0
    acceptance_rate: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule,
            "num_inputs": self.num_inputs,
            "num_byzantine": self.num_byzantine,
            "selected": self.selected,
            "distance_to_honest_mean": self.distance_to_honest_mean,
            "attacker_indices": self.attacker_indices,
            "attackers_selected": self.attackers_selected,
        }
        if self.scores is not None:
            payload["scores"] = self.scores
        if self.acceptance_rate is not None:
            payload["acceptance_rate"] = self.acceptance_rate
        return payload


def decide(rule: GradientAggregationRule, vectors: VectorList,
           attacker_indices: Optional[Sequence[int]] = None) -> GarDecision:
    """Reconstruct the decision ``rule`` makes on ``vectors``.

    The rule's output and selection are recomputed here — call sites must
    never substitute the returned data back into the training path, which
    keeps the tracing layer's zero-perturbation guarantee trivially true.
    """
    stacked = check_vectors(vectors)
    n = stacked.shape[0]
    attackers = sorted(int(i) for i in (attacker_indices or []))

    selected = rule.selected_input_indices(stacked)
    if selected is None:
        selected_list = list(range(n))
    else:
        selected_list = [int(i) for i in selected]

    raw_scores = rule.input_scores(stacked)
    scores = None if raw_scores is None else [float(s) for s in raw_scores]

    output = rule._aggregate(stacked)
    honest = [i for i in range(n) if i not in set(attackers)]
    reference = stacked[honest] if honest else stacked
    distance = float(np.linalg.norm(output - reference.mean(axis=0)))

    attackers_selected = len(set(attackers) & set(selected_list))
    acceptance = (attackers_selected / len(attackers)) if attackers else None

    return GarDecision(rule=rule.name, num_inputs=n,
                       num_byzantine=rule.num_byzantine,
                       selected=selected_list, scores=scores,
                       distance_to_honest_mean=distance,
                       attacker_indices=attackers,
                       attackers_selected=attackers_selected,
                       acceptance_rate=acceptance)


def attacker_acceptance_rate(decisions: Iterable[GarDecision]) -> float:
    """Fraction of known-attacker inputs admitted across many decisions.

    The per-rule metric of the tentpole: over every decision that saw at
    least one attacker, ``sum(attackers_selected) / sum(len(attackers))``.
    Returns NaN when no decision involved a known attacker.
    """
    admitted = 0
    offered = 0
    for decision in decisions:
        admitted += decision.attackers_selected
        offered += len(decision.attacker_indices)
    return admitted / offered if offered else float("nan")
