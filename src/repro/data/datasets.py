"""Synthetic datasets used as offline substitutes for CIFAR-10.

Design notes
------------
The paper's evaluation only needs a supervised image-classification task on
which (a) SGD makes steady progress and (b) Byzantine gradient corruption
visibly destroys progress.  Any learnable class-conditional distribution with
the right tensor shapes provides that, so the substitute datasets here are
generated from fixed class prototypes plus structured noise.  Generation is
fully deterministic given the seed, so every simulated node sees the same
data universe and sharding is reproducible.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class Dataset:
    """A simple in-memory dataset of ``(features, labels)`` arrays.

    Parameters
    ----------
    features:
        Array of shape ``(num_samples, ...)``.
    labels:
        Integer array of shape ``(num_samples,)``.
    num_classes:
        Number of distinct classes; inferred from the labels when omitted.
    """

    def __init__(self, features: np.ndarray, labels: np.ndarray,
                 num_classes: Optional[int] = None, name: str = "dataset") -> None:
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must have the same length")
        self.features = features
        self.labels = labels
        self.num_classes = int(num_classes if num_classes is not None else labels.max() + 1)
        self.name = name

    def __len__(self) -> int:
        return self.features.shape[0]

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.features[index], self.labels[index]

    @property
    def feature_shape(self) -> Tuple[int, ...]:
        return self.features.shape[1:]

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "Dataset":
        """Return a new dataset restricted to ``indices``."""
        return Dataset(
            self.features[indices],
            self.labels[indices],
            num_classes=self.num_classes,
            name=name or f"{self.name}[subset]",
        )

    def split(self, train_fraction: float, seed: int = 0) -> Tuple["Dataset", "Dataset"]:
        """Shuffle and split into train/test datasets."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        return (
            self.subset(order[:cut], name=f"{self.name}[train]"),
            self.subset(order[cut:], name=f"{self.name}[test]"),
        )

    def class_counts(self) -> np.ndarray:
        """Number of samples per class."""
        return np.bincount(self.labels, minlength=self.num_classes)


# --------------------------------------------------------------------------- #
# CIFAR-10 substitute
# --------------------------------------------------------------------------- #
class SyntheticImageDataset(Dataset):
    """Deterministic CIFAR-10-shaped synthetic image dataset.

    Each class is defined by a smooth random texture prototype (low-frequency
    sinusoid mixture per channel); samples are the prototype plus Gaussian
    pixel noise and a random global brightness shift.  The task is learnable
    by both linear models and CNNs yet non-trivial at high noise levels.

    Parameters
    ----------
    num_samples:
        Total number of images to generate.
    image_size:
        Spatial size (images are ``channels x image_size x image_size``).
    channels:
        Number of colour channels (3 to mirror CIFAR-10).
    num_classes:
        Number of classes (10 to mirror CIFAR-10).
    noise:
        Standard deviation of the per-pixel Gaussian noise.
    seed:
        Seed controlling both prototypes and samples.
    """

    def __init__(self, num_samples: int = 1000, image_size: int = 32,
                 channels: int = 3, num_classes: int = 10,
                 noise: float = 0.35, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        prototypes = self._make_prototypes(rng, num_classes, channels, image_size)
        labels = rng.integers(0, num_classes, size=num_samples)
        images = prototypes[labels]
        images = images + rng.normal(0.0, noise, size=images.shape)
        brightness = rng.normal(0.0, 0.1, size=(num_samples, 1, 1, 1))
        images = np.clip(images + brightness, -3.0, 3.0)
        super().__init__(images, labels, num_classes=num_classes,
                         name=f"synthetic-images-{image_size}")
        self.image_size = image_size
        self.channels = channels
        self.noise = noise

    @staticmethod
    def _make_prototypes(rng: np.random.Generator, num_classes: int,
                         channels: int, size: int) -> np.ndarray:
        """Build one smooth texture prototype per class."""
        ys, xs = np.meshgrid(np.linspace(0, 1, size), np.linspace(0, 1, size),
                             indexing="ij")
        prototypes = np.zeros((num_classes, channels, size, size))
        for cls in range(num_classes):
            for channel in range(channels):
                pattern = np.zeros((size, size))
                # Mixture of a few low-frequency sinusoids keeps classes
                # linearly separable in expectation but overlapping in samples.
                for _ in range(3):
                    fx, fy = rng.uniform(0.5, 3.0, size=2)
                    phase = rng.uniform(0, 2 * np.pi)
                    amplitude = rng.uniform(0.4, 1.0)
                    pattern += amplitude * np.sin(2 * np.pi * (fx * xs + fy * ys) + phase)
                prototypes[cls, channel] = pattern / 3.0
        return prototypes


class SyntheticMNIST(Dataset):
    """A small grayscale digit-like dataset (28x28x1, 10 classes).

    Digits are approximated by class-specific blob arrangements; the dataset
    exists to exercise single-channel convolution paths.
    """

    def __init__(self, num_samples: int = 1000, num_classes: int = 10,
                 noise: float = 0.25, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        size = 28
        prototypes = np.zeros((num_classes, 1, size, size))
        ys, xs = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
        for cls in range(num_classes):
            centers = rng.uniform(4, size - 4, size=(3, 2))
            widths = rng.uniform(2.0, 5.0, size=3)
            image = np.zeros((size, size))
            for (cy, cx), width in zip(centers, widths):
                image += np.exp(-((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * width ** 2))
            prototypes[cls, 0] = image / image.max()
        labels = rng.integers(0, num_classes, size=num_samples)
        images = prototypes[labels] + rng.normal(0.0, noise, size=(num_samples, 1, size, size))
        super().__init__(images, labels, num_classes=num_classes, name="synthetic-mnist")


# --------------------------------------------------------------------------- #
# Small vector datasets
# --------------------------------------------------------------------------- #
def make_blobs_dataset(num_samples: int = 600, num_classes: int = 3,
                       num_features: int = 2, cluster_std: float = 1.0,
                       separation: float = 6.0, seed: int = 0) -> Dataset:
    """Gaussian blobs, the classic linearly-separable toy task."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-separation, separation, size=(num_classes, num_features))
    labels = rng.integers(0, num_classes, size=num_samples)
    features = centers[labels] + rng.normal(0.0, cluster_std,
                                            size=(num_samples, num_features))
    return Dataset(features, labels, num_classes=num_classes, name="blobs")


def make_spirals_dataset(num_samples: int = 600, num_classes: int = 3,
                         noise: float = 0.15, seed: int = 0) -> Dataset:
    """Interleaved spirals — a non-linearly separable 2-D task."""
    rng = np.random.default_rng(seed)
    samples_per_class = num_samples // num_classes
    features = []
    labels = []
    for cls in range(num_classes):
        radius = np.linspace(0.1, 1.0, samples_per_class)
        angle = (np.linspace(cls * 2 * np.pi / num_classes,
                             cls * 2 * np.pi / num_classes + 2 * np.pi,
                             samples_per_class)
                 + rng.normal(0.0, noise, samples_per_class))
        features.append(np.stack([radius * np.sin(angle), radius * np.cos(angle)], axis=1))
        labels.append(np.full(samples_per_class, cls))
    return Dataset(np.concatenate(features), np.concatenate(labels),
                   num_classes=num_classes, name="spirals")


def make_moons_dataset(num_samples: int = 600, noise: float = 0.1,
                       seed: int = 0) -> Dataset:
    """Two interleaving half-moons (binary classification)."""
    rng = np.random.default_rng(seed)
    half = num_samples // 2
    outer_angle = rng.uniform(0, np.pi, half)
    inner_angle = rng.uniform(0, np.pi, num_samples - half)
    outer = np.stack([np.cos(outer_angle), np.sin(outer_angle)], axis=1)
    inner = np.stack([1.0 - np.cos(inner_angle), 0.5 - np.sin(inner_angle)], axis=1)
    features = np.concatenate([outer, inner]) + rng.normal(0.0, noise, (num_samples, 2))
    labels = np.concatenate([np.zeros(half, dtype=np.int64),
                             np.ones(num_samples - half, dtype=np.int64)])
    return Dataset(features, labels, num_classes=2, name="moons")
