"""Mini-batch loading and per-worker sharding.

In the paper's deployment each worker samples mini-batches from its local
copy of CIFAR-10.  Here :func:`partition_dataset` — the sole partitioner
front door every runtime goes through — splits a dataset across workers:
it dispatches to the heterogeneity engine (:mod:`repro.hetero`) when a
hetero spec is present and to the legacy strategies (i.i.d. split, full
replication, by-class skew) otherwise.  :class:`DataLoader` draws
reproducible mini-batches from a shard.  The old :func:`shard_dataset`
entrypoint remains as a deprecation shim.
"""

from __future__ import annotations

import warnings
from typing import Iterator, List, Tuple

import numpy as np

from repro.data.datasets import Dataset


class DataLoader:
    """Draws mini-batches from a dataset.

    Two modes are supported:

    * ``sample_with_replacement=True`` (default) — every call to
      :meth:`next_batch` draws a fresh i.i.d. mini-batch, matching the
      stochastic-gradient model of the convergence analysis;
    * ``sample_with_replacement=False`` — classic epoch-based iteration with
      shuffling, available through :meth:`__iter__`.
    """

    def __init__(self, dataset: Dataset, batch_size: int, seed: int = 0,
                 sample_with_replacement: bool = True) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if len(dataset) == 0:
            raise ValueError("dataset is empty")
        self.dataset = dataset
        self.batch_size = min(batch_size, len(dataset))
        self.sample_with_replacement = sample_with_replacement
        self._rng = np.random.default_rng(seed)
        # hot path: next_batch runs once per worker per step, so the shard
        # size is cached rather than re-derived through the dataset
        self._num_samples = len(dataset)

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return one mini-batch ``(features, labels)``."""
        if self.sample_with_replacement:
            indices = self._rng.integers(0, self._num_samples,
                                         size=self.batch_size)
        else:
            indices = self._rng.choice(self._num_samples,
                                       size=self.batch_size, replace=False)
        return self.dataset.features[indices], self.dataset.labels[indices]

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate once over the dataset in shuffled mini-batches."""
        order = self._rng.permutation(len(self.dataset))
        for start in range(0, len(order), self.batch_size):
            indices = order[start: start + self.batch_size]
            yield self.dataset.features[indices], self.dataset.labels[indices]

    def __len__(self) -> int:
        """Number of mini-batches per epoch."""
        return (len(self.dataset) + self.batch_size - 1) // self.batch_size


def partition_dataset(dataset: Dataset, num_workers: int,
                      sharding: str = "iid", hetero=None,
                      seed: int = 0) -> List[Dataset]:
    """Split a dataset into per-worker datasets (the runtimes' front door).

    With a truthy :class:`~repro.hetero.HeteroSpec` the split comes from
    the heterogeneity engine — a pure function of ``(seed, num_workers,
    hetero)``, bit-identical across the sequential, threaded and batched
    runtimes.  Otherwise the legacy :func:`shard_dataset` strategies apply.
    A hetero spec cannot be combined with a non-default legacy strategy:
    both would claim the partition.
    """
    if hetero is not None and hetero:
        if sharding != "iid":
            raise ValueError(
                f"hetero partitions replace the legacy sharding strategies; "
                f"leave sharding at 'iid' (got '{sharding}')")
        from repro.hetero.partition import hetero_partition  # lazy: no cycle

        return hetero_partition(dataset, num_workers, hetero, seed=seed)
    return _shard_dataset(dataset, num_workers, strategy=sharding, seed=seed)


def shard_dataset(dataset: Dataset, num_shards: int, strategy: str = "iid",
                  seed: int = 0) -> List[Dataset]:
    """Deprecated: call :func:`partition_dataset` instead.

    ``partition_dataset`` is the partitioner front door every runtime goes
    through; it covers the legacy strategies (via ``sharding=``) *and* the
    heterogeneity engine.  This shim keeps older scripts working.
    """
    warnings.warn(
        "repro.data.shard_dataset is deprecated; use "
        "repro.data.partition_dataset instead",
        DeprecationWarning, stacklevel=2)
    return _shard_dataset(dataset, num_shards, strategy=strategy, seed=seed)


def _shard_dataset(dataset: Dataset, num_shards: int, strategy: str = "iid",
                   seed: int = 0) -> List[Dataset]:
    """Split a dataset into per-worker shards.

    Parameters
    ----------
    dataset:
        The dataset to shard.
    num_shards:
        Number of workers.
    strategy:
        ``"iid"`` — shuffle then split evenly (the paper's setting);
        ``"replicated"`` — every worker sees the full dataset;
        ``"by_class"`` — pathological non-i.i.d. split where shard ``k``
        receives classes ``k mod num_classes`` first (used by ablations).
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if strategy == "replicated":
        return [dataset for _ in range(num_shards)]

    rng = np.random.default_rng(seed)
    if strategy == "iid":
        order = rng.permutation(len(dataset))
    elif strategy == "by_class":
        order = np.argsort(dataset.labels, kind="stable")
    else:
        raise ValueError(f"unknown sharding strategy '{strategy}'")

    shards = []
    pieces = np.array_split(order, num_shards)
    for index, piece in enumerate(pieces):
        if piece.size == 0:
            raise ValueError(
                f"dataset of size {len(dataset)} cannot be split into {num_shards} "
                "non-empty shards"
            )
        shards.append(dataset.subset(piece, name=f"{dataset.name}[shard{index}]"))
    return shards
