"""Datasets and data loading.

The paper trains on CIFAR-10, which cannot be downloaded in this offline
environment.  :class:`SyntheticImageDataset` provides a deterministic
CIFAR-10-shaped substitute (32x32x3 images, 10 classes, 50k/10k split by
default) generated from class-conditional textures; the remaining synthetic
tasks (blobs, spirals, moons, synthetic MNIST) are smaller workloads used to
keep the distributed experiments fast while exercising the same code paths.
"""

from repro.data.datasets import (
    Dataset,
    SyntheticImageDataset,
    SyntheticMNIST,
    make_blobs_dataset,
    make_moons_dataset,
    make_spirals_dataset,
)
from repro.data.loader import DataLoader, partition_dataset, shard_dataset

__all__ = [
    "Dataset",
    "SyntheticImageDataset",
    "SyntheticMNIST",
    "make_blobs_dataset",
    "make_spirals_dataset",
    "make_moons_dataset",
    "DataLoader",
    "partition_dataset",
    "shard_dataset",
]
