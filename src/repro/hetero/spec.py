"""Declarative heterogeneity specifications.

:class:`HeteroSpec` describes *how honest workers differ from each other*:
how the training data is partitioned across them (the statistical side)
and how the workers themselves behave (the systems side, via
:class:`WorkerProfile`).  Both halves are plain JSON-serialisable data so
they can ride inside a :class:`~repro.campaign.spec.ScenarioSpec`, hash
into its content address, and expand as grid axes.

Serialisation follows the fault-schedule precedent: :meth:`HeteroSpec.to_dict`
emits a canonical *compact* form (defaulted fields omitted), so equal
configurations serialise — and therefore hash — identically, and knobs
added later never disturb the addresses of stores that predate them.
A spec that describes the legacy homogeneous i.i.d. split is *falsy* and
normalises to an absent field entirely.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: partition schemes the engine implements
_PARTITIONS = ("iid", "dirichlet", "shards")


def available_partitions() -> List[str]:
    """Partition schemes a ``hetero`` spec can request."""
    return list(_PARTITIONS)


# --------------------------------------------------------------------------- #
# Worker profiles
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkerProfile:
    """How one (class of) worker differs from the homogeneous default.

    Attributes
    ----------
    batch_size:
        Per-worker mini-batch size override (``None`` keeps the scenario's
        global ``batch_size``).
    local_steps:
        Number of local gradient computations per protocol round.  With
        ``k > 1`` the worker walks ``k`` local SGD steps from the
        aggregated model and submits the *mean* gradient along that local
        trajectory (the FedAvg-style pseudo-gradient, normalised so
        ``k = 1`` is exactly the legacy single gradient).
    delay_multiplier:
        Straggler factor ≥ 0 applied to the worker's computation time on
        the simulated clock (and, scaled, to its sleep in the threaded
        runtime).  ``1.0`` is the homogeneous default.
    """

    batch_size: Optional[int] = None
    local_steps: int = 1
    delay_multiplier: float = 1.0

    def validate(self) -> "WorkerProfile":
        if self.batch_size is not None and self.batch_size <= 0:
            raise ValueError("profile batch_size must be positive")
        if self.local_steps < 1:
            raise ValueError("profile local_steps must be >= 1")
        if self.delay_multiplier <= 0:
            raise ValueError("profile delay_multiplier must be positive")
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Compact form: defaulted fields omitted (canonical for hashing)."""
        payload: Dict[str, Any] = {}
        if self.batch_size is not None:
            payload["batch_size"] = self.batch_size
        if self.local_steps != 1:
            payload["local_steps"] = self.local_steps
        if self.delay_multiplier != 1.0:
            payload["delay_multiplier"] = self.delay_multiplier
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WorkerProfile":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown worker-profile fields: {sorted(unknown)}")
        return cls(**payload)

    def __bool__(self) -> bool:
        return bool(self.to_dict())


#: the homogeneous worker every scenario had before this engine existed
DEFAULT_PROFILE = WorkerProfile()


# --------------------------------------------------------------------------- #
# Heterogeneity spec
# --------------------------------------------------------------------------- #
@dataclass
class HeteroSpec:
    """Complete description of a heterogeneous deployment.

    Attributes
    ----------
    partition:
        ``"iid"`` (uniform split, the legacy default), ``"dirichlet"``
        (per-class worker proportions drawn from ``Dir(alpha)`` — the
        standard federated-learning label-skew model) or ``"shards"``
        (sort by label, cut into ``num_workers * shards_per_worker``
        contiguous shards, deal each worker ``shards_per_worker`` of them
        — the pathological split of the FedAvg paper).
    alpha:
        Dirichlet concentration.  Large values (≥ 10) approach i.i.d.;
        small values (≤ 0.1) give near single-class workers.
    shards_per_worker:
        Shards dealt to each worker under ``partition="shards"`` — an
        upper bound on the distinct labels a worker can see.
    imbalance:
        Sample-count skew exponent ≥ 0.  Worker target sizes are drawn
        proportional to ``rank^-imbalance`` (ranks shuffled by the seed),
        so ``0`` keeps balanced counts and larger values concentrate the
        data on few workers.  Composes with ``iid`` and ``dirichlet``;
        rejected for ``shards`` (shard cardinality fixes the counts).
    min_samples:
        Per-worker sample floor; the partitioner tops up starved workers
        from the largest ones, deterministically.
    feature_drift:
        Standard deviation of a per-worker additive feature offset (drawn
        once per worker from its own seeded stream) — covariate shift on
        top of any label skew.
    profiles:
        Worker profiles assigned round-robin (worker ``i`` gets
        ``profiles[i % len(profiles)]``); empty means every worker runs
        the homogeneous default.
    """

    partition: str = "iid"
    alpha: float = 1.0
    shards_per_worker: int = 2
    imbalance: float = 0.0
    min_samples: int = 1
    feature_drift: float = 0.0
    profiles: List[WorkerProfile] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.profiles = [profile if isinstance(profile, WorkerProfile)
                         else WorkerProfile.from_dict(profile)
                         for profile in self.profiles]

    # ------------------------------------------------------------------ #
    def __bool__(self) -> bool:
        """Whether the spec departs from the legacy homogeneous run at all."""
        return bool(self.to_dict())

    def profile_for(self, worker_index: int) -> WorkerProfile:
        """The profile worker ``worker_index`` runs (round-robin assignment)."""
        if not self.profiles:
            return DEFAULT_PROFILE
        return self.profiles[worker_index % len(self.profiles)]

    def heterogeneous_data(self) -> bool:
        """Whether the data partition differs from the uniform i.i.d. split."""
        return (self.partition != "iid" or self.imbalance != 0.0
                or self.feature_drift != 0.0)

    # ------------------------------------------------------------------ #
    def validate(self, num_workers: Optional[int] = None) -> "HeteroSpec":
        """Check admissibility; raises ``ValueError`` on an invalid spec."""
        if self.partition not in _PARTITIONS:
            raise ValueError(f"unknown partition '{self.partition}'; "
                             f"available: {available_partitions()}")
        if self.alpha <= 0:
            raise ValueError("dirichlet alpha must be positive")
        if self.shards_per_worker < 1:
            raise ValueError("shards_per_worker must be >= 1")
        if self.imbalance < 0:
            raise ValueError("imbalance must be non-negative")
        if self.partition == "shards" and self.imbalance != 0.0:
            raise ValueError("imbalance composes with 'iid' and 'dirichlet' "
                             "partitions only; under 'shards' the shard "
                             "cardinality fixes the per-worker counts")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.feature_drift < 0:
            raise ValueError("feature_drift must be non-negative")
        for profile in self.profiles:
            profile.validate()
        if num_workers is not None and len(self.profiles) > num_workers:
            raise ValueError(
                f"{len(self.profiles)} worker profiles for {num_workers} "
                f"workers; profiles are dealt round-robin and extras would "
                f"silently never run")
        return self

    # ------------------------------------------------------------------ #
    # Serialisation (canonical compact form)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Compact canonical form: only the fields that shape the run.

        Scheme parameters irrelevant to the chosen partition are dropped
        (``alpha`` outside ``dirichlet``, ``shards_per_worker`` outside
        ``shards``), so two specs describing the same deployment hash to
        the same content address.
        """
        payload: Dict[str, Any] = {}
        if self.partition != "iid":
            payload["partition"] = self.partition
        if self.partition == "dirichlet" and self.alpha != 1.0:
            payload["alpha"] = self.alpha
        if self.partition == "shards" and self.shards_per_worker != 2:
            payload["shards_per_worker"] = self.shards_per_worker
        if self.imbalance != 0.0:
            payload["imbalance"] = self.imbalance
        if self.min_samples != 1 and self.heterogeneous_data():
            payload["min_samples"] = self.min_samples
        if self.feature_drift != 0.0:
            payload["feature_drift"] = self.feature_drift
        profiles = [profile.to_dict() for profile in self.profiles]
        if any(profiles):
            payload["profiles"] = profiles
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "HeteroSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown hetero fields: {sorted(unknown)}")
        return cls(**payload)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_token(cls, token: str) -> Optional["HeteroSpec"]:
        """Parse a sweep-axis token into a spec (``None`` for ``iid``).

        Tokens name one knob each — the shorthand the ``sweep --hetero``
        axis and the ``hetero`` study CLI share::

            iid              the legacy homogeneous split
            dirichlet=ALPHA  Dirichlet label skew with concentration ALPHA
            shards=K         pathological split, K shards per worker
            imbalance=GAMMA  sample-count skew with exponent GAMMA
            drift=SIGMA      per-worker feature drift of std SIGMA

        Richer combinations (profiles, composed knobs) go through the JSON
        ``hetero`` field of a ``--spec`` campaign file instead.
        """
        name, _, value = token.partition("=")
        if name == "iid":
            if value:
                raise ValueError(f"'iid' takes no value (got '{token}')")
            return None
        try:
            if name == "dirichlet":
                return cls(partition="dirichlet", alpha=float(value))
            if name == "shards":
                return cls(partition="shards", shards_per_worker=int(value))
            if name == "imbalance":
                return cls(imbalance=float(value))
            if name == "drift":
                return cls(feature_drift=float(value))
        except ValueError as exc:
            raise ValueError(f"bad hetero token '{token}': {exc}") from None
        raise ValueError(
            f"unknown hetero token '{token}'; expected iid, dirichlet=ALPHA, "
            f"shards=K, imbalance=GAMMA or drift=SIGMA")
