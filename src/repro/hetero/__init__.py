"""Data-heterogeneity engine: non-i.i.d. partitions and worker profiles.

The paper's convergence analysis assumes every honest worker draws i.i.d.
samples from one distribution.  The GAR literature it builds on (Krum,
Multi-Krum, Bulyan) is known to degrade when honest gradients are
*heterogeneous* — label skew widens the honest spread and Byzantine
vectors hide inside it.  This package makes that regime a first-class,
declarative sweep axis:

* :class:`HeteroSpec` — JSON-serialisable description of how the training
  data is split across workers (Dirichlet label skew, pathological shard
  splits, sample-count imbalance, per-worker feature drift) and how the
  workers themselves differ (:class:`WorkerProfile`: per-worker batch
  size, local gradient steps, delay multiplier);
* :func:`hetero_partition` — the deterministic partitioner.  Partitions
  are a **pure function of** ``(seed, num_workers, spec)``: every runtime
  (sequential simulator, threaded cluster, batched multi-replica) builds
  bit-identical per-worker datasets from the same scenario.

``repro.data.partition_dataset`` dispatches between this engine and the
legacy uniform split; :class:`~repro.campaign.spec.ScenarioSpec` carries
the spec under its ``hetero`` field (absent ≡ legacy, also for content
addressing).  See ``docs/heterogeneity.md``.
"""

from repro.hetero.partition import (
    dirichlet_class_proportions,
    hetero_partition,
    imbalanced_counts,
    partition_indices,
)
from repro.hetero.spec import (
    DEFAULT_PROFILE,
    HeteroSpec,
    WorkerProfile,
    available_partitions,
)

__all__ = [
    "DEFAULT_PROFILE",
    "HeteroSpec",
    "WorkerProfile",
    "available_partitions",
    "dirichlet_class_proportions",
    "hetero_partition",
    "imbalanced_counts",
    "partition_indices",
]
