"""Deterministic non-i.i.d. partitioners.

Every function here is a **pure function of** ``(seed, num_workers, spec)``
— a fresh ``np.random.default_rng`` is created from the seed inside the
partitioner and consumed in one fixed order, so the resulting per-worker
datasets are bit-identical no matter which runtime (sequential simulator,
threaded cluster, batched multi-replica) asks for them, and no matter what
other randomness the caller has already drawn.

Schemes
-------
``dirichlet``
    For every class ``c``, worker proportions ``p_c ~ Dir(alpha · 1)`` and
    the class's (shuffled) samples are cut accordingly — the standard
    label-skew model of the federated-learning literature.  ``imbalance``
    tilts the proportions by per-worker size weights before the per-class
    normalisation.
``shards``
    Sort by label, cut into ``num_workers · shards_per_worker`` contiguous
    shards, deal each worker ``shards_per_worker`` shards of a seeded
    shard permutation — the pathological split of the FedAvg paper, where
    each worker sees at most ``shards_per_worker`` distinct labels.
``iid``
    Seeded permutation cut at (possibly imbalanced) per-worker counts.

On top of any scheme, ``feature_drift`` adds one per-worker offset tensor
(drawn from the worker's own seeded stream) to that worker's features —
covariate shift on top of label skew.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data.datasets import Dataset
from repro.hetero.spec import HeteroSpec

#: stream-separation constants so the partition, drift and any future
#: hetero randomness never consume from one another's generators
_DRIFT_STREAM = 0x9E37
_IMBALANCE_STREAM = 0x79B9


# --------------------------------------------------------------------------- #
# Count allocation
# --------------------------------------------------------------------------- #
def imbalanced_counts(total: int, num_workers: int, imbalance: float,
                      seed: int, min_samples: int = 1) -> np.ndarray:
    """Per-worker sample counts summing to ``total``.

    Targets are proportional to ``rank^-imbalance`` with the ranks
    shuffled by the seed (so *which* worker is data-rich varies across
    seeds), then rounded by largest remainder and floored at
    ``min_samples``.  ``imbalance=0`` reproduces the balanced
    ``np.array_split`` sizes exactly.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    if total < num_workers * min_samples:
        raise ValueError(
            f"dataset of size {total} cannot give {num_workers} workers "
            f"{min_samples} sample(s) each")
    if imbalance == 0.0:
        sizes = np.full(num_workers, total // num_workers)
        sizes[: total % num_workers] += 1
        return sizes
    weights = _size_weights(seed, num_workers, imbalance)
    counts = np.floor(weights * total).astype(np.int64)
    # Largest-remainder rounding keeps the total exact and deterministic.
    remainder = weights * total - counts
    for index in np.argsort(-remainder, kind="stable")[: total - counts.sum()]:
        counts[index] += 1
    return _enforce_floor(counts, min_samples)


def _size_weights(seed: int, num_workers: int,
                  imbalance: float) -> np.ndarray:
    """Normalised per-worker size weights ``rank^-imbalance``, shuffled.

    The single definition of the imbalance weighting, shared by the iid
    count allocation and the Dirichlet proportion tilt — both modes must
    skew identically or the pure-function-of-``(seed, n, spec)`` contract
    splits per scheme.
    """
    rng = np.random.default_rng([seed, _IMBALANCE_STREAM])
    weights = np.arange(1, num_workers + 1, dtype=np.float64) ** -imbalance
    weights = rng.permutation(weights)
    return weights / weights.sum()


def _enforce_floor(counts: np.ndarray, min_samples: int) -> np.ndarray:
    """Raise starved workers to the floor by taking from the largest ones."""
    counts = counts.copy()
    while counts.min() < min_samples:
        poorest = int(np.argmin(counts))
        richest = int(np.argmax(counts))
        if counts[richest] <= min_samples:
            raise ValueError("not enough samples to honour min_samples")
        counts[poorest] += 1
        counts[richest] -= 1
    return counts


def dirichlet_class_proportions(num_classes: int, num_workers: int,
                                alpha: float, rng: np.random.Generator,
                                size_weights: np.ndarray = None) -> np.ndarray:
    """``(num_classes, num_workers)`` worker proportions per class.

    One ``Dir(alpha · 1)`` draw per class, optionally tilted by per-worker
    ``size_weights`` (re-normalised per class) to compose label skew with
    sample-count imbalance.
    """
    proportions = rng.dirichlet(np.full(num_workers, alpha),
                                size=num_classes)
    if size_weights is not None:
        proportions = proportions * size_weights[None, :]
        proportions /= proportions.sum(axis=1, keepdims=True)
    return proportions


# --------------------------------------------------------------------------- #
# Index partitioners
# --------------------------------------------------------------------------- #
def partition_indices(labels: np.ndarray, num_workers: int,
                      hetero: HeteroSpec, seed: int) -> List[np.ndarray]:
    """Per-worker index arrays for one labelled dataset.

    Pure function of ``(seed, num_workers, hetero)`` given the labels; the
    union of the returned arrays is exactly ``range(len(labels))`` and
    every worker receives at least ``hetero.min_samples`` indices.
    """
    labels = np.asarray(labels)
    total = labels.shape[0]
    if total < num_workers * hetero.min_samples:
        raise ValueError(
            f"dataset of size {total} cannot give {num_workers} workers "
            f"{hetero.min_samples} sample(s) each")
    rng = np.random.default_rng(seed)

    if hetero.partition == "shards":
        assignments = _shard_indices(labels, num_workers,
                                     hetero.shards_per_worker, rng)
    elif hetero.partition == "dirichlet":
        assignments = _dirichlet_indices(labels, num_workers, hetero, seed,
                                         rng)
    else:  # iid (possibly imbalanced)
        order = rng.permutation(total)
        counts = imbalanced_counts(total, num_workers, hetero.imbalance,
                                   seed, hetero.min_samples)
        cuts = np.cumsum(counts)[:-1]
        assignments = np.split(order, cuts)

    return _top_up(assignments, hetero.min_samples)


def _shard_indices(labels: np.ndarray, num_workers: int,
                   shards_per_worker: int,
                   rng: np.random.Generator) -> List[np.ndarray]:
    num_shards = num_workers * shards_per_worker
    if labels.shape[0] < num_shards:
        raise ValueError(
            f"dataset of size {labels.shape[0]} cannot be cut into "
            f"{num_shards} non-empty shards")
    by_label = np.argsort(labels, kind="stable")
    shards = np.array_split(by_label, num_shards)
    dealt = rng.permutation(num_shards)
    return [
        np.concatenate([shards[shard]
                        for shard in dealt[w * shards_per_worker:
                                           (w + 1) * shards_per_worker]])
        for w in range(num_workers)
    ]


def _dirichlet_indices(labels: np.ndarray, num_workers: int,
                       hetero: HeteroSpec, seed: int,
                       rng: np.random.Generator) -> List[np.ndarray]:
    classes = np.unique(labels)
    size_weights = None
    if hetero.imbalance != 0.0:
        size_weights = _size_weights(seed, num_workers, hetero.imbalance)
    proportions = dirichlet_class_proportions(len(classes), num_workers,
                                              hetero.alpha, rng,
                                              size_weights=size_weights)
    assignments: List[List[np.ndarray]] = [[] for _ in range(num_workers)]
    for class_index, label in enumerate(classes):
        members = rng.permutation(np.nonzero(labels == label)[0])
        cuts = (np.cumsum(proportions[class_index])[:-1]
                * members.shape[0]).astype(np.int64)
        for worker, piece in enumerate(np.split(members, cuts)):
            assignments[worker].append(piece)
    return [np.concatenate(pieces) if pieces else
            np.empty(0, dtype=np.int64) for pieces in assignments]


def _top_up(assignments: List[np.ndarray],
            min_samples: int) -> List[np.ndarray]:
    """Move samples from the largest workers until everyone meets the floor.

    Deterministic: the poorest worker (lowest index on ties) receives the
    last index held by the richest worker (lowest index on ties).
    """
    sizes = np.array([piece.shape[0] for piece in assignments])
    assignments = [piece.copy() for piece in assignments]
    while sizes.min() < min_samples:
        poorest = int(np.argmin(sizes))
        richest = int(np.argmax(sizes))
        if sizes[richest] <= min_samples:
            raise ValueError("not enough samples to honour min_samples")
        moved, assignments[richest] = (assignments[richest][-1],
                                       assignments[richest][:-1])
        assignments[poorest] = np.append(assignments[poorest], moved)
        sizes[poorest] += 1
        sizes[richest] -= 1
    return assignments


# --------------------------------------------------------------------------- #
# Dataset-level entry point
# --------------------------------------------------------------------------- #
def hetero_partition(dataset: Dataset, num_workers: int, hetero: HeteroSpec,
                     seed: int = 0) -> List[Dataset]:
    """Split ``dataset`` into per-worker datasets according to ``hetero``.

    The partition (and any feature drift) is a pure function of
    ``(seed, num_workers, hetero)`` — see the module docstring.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    hetero.validate(num_workers)
    pieces = partition_indices(dataset.labels, num_workers, hetero, seed)
    shards = [dataset.subset(piece, name=f"{dataset.name}[hetero{index}]")
              for index, piece in enumerate(pieces)]
    if hetero.feature_drift > 0.0:
        for index, shard in enumerate(shards):
            drift_rng = np.random.default_rng([seed, _DRIFT_STREAM, index])
            offset = drift_rng.normal(0.0, hetero.feature_drift,
                                      size=shard.feature_shape)
            shards[index] = Dataset(shard.features + offset[None, ...],
                                    shard.labels,
                                    num_classes=shard.num_classes,
                                    name=shard.name)
    return shards
