"""Command-line interface to the experiment harnesses.

Usage (after ``pip install -e .``)::

    python -m repro.cli table1
    python -m repro.cli figure3 --batch-size 128 --x-axis time
    python -m repro.cli figure4
    python -m repro.cli table2
    python -m repro.cli overhead
    python -m repro.cli attacks
    python -m repro.cli attack-sweep
    python -m repro.cli scaling --workers 6 9 12 18
    python -m repro.cli quorums
    python -m repro.cli list
    python -m repro.cli sweep --gars multi_krum median \
        --attacks random_gradient sign_flip --seeds 0 1 --store results/
    python -m repro.cli sweep --adversaries omniscient_descent collusion
    python -m repro.cli sweep --hetero iid dirichlet=0.1 shards=2
    python -m repro.cli sweep --trainer guanyu_threaded --runtime cluster
    python -m repro.cli cluster --servers-count 3 --workers-count 4 --steps 3
    python -m repro.cli resilience --mode crash --crashes 0 1 2 3
    python -m repro.cli resilience --mode partition --heal-steps 20 30 40
    python -m repro.cli breakdown --gars mean median multi_krum
    python -m repro.cli hetero --skews iid dirichlet=1 dirichlet=0.1
    python -m repro.cli --trace trace.jsonl figure4
    python -m repro.cli trace trace.jsonl
    python -m repro.cli report trace.jsonl --width 72
    python -m repro.cli serve --store results/ --port 8642 --processes 4
    python -m repro.cli sweep --gars median --seeds 0 1 \
        --submit http://127.0.0.1:8642
    python -m repro.cli store fsck results/
    python -m repro.cli store gc results/ --dry-run

Every subcommand prints the regenerated table/figure as text (and an ASCII
chart where the paper has a figure); ``--json PATH`` additionally writes the
raw histories/rows for downstream plotting.  ``sweep`` runs a declarative
scenario campaign (grid flags or a ``--spec`` JSON file) through the
campaign engine — in parallel, with content-addressed result caching when
``--store`` is given; ``--faults FILE`` attaches a fault schedule to every
grid cell and ``--adversaries`` sweeps stateful coordinated adversaries as
a grid axis; ``--hetero`` sweeps non-i.i.d. data partitions
(``dirichlet=ALPHA``, ``shards=K``, ``imbalance=GAMMA``, ``drift=SIGMA``).
``resilience`` runs the canned crash-vs-quorum and partition-heal fault
studies; ``breakdown`` bisects the empirical breakdown point of each GAR
under each adversary; ``hetero`` produces the accuracy-vs-skew × GAR ×
adversary table of the heterogeneity study; ``attacks`` and ``list`` print
the registries sweep specs draw from.  ``cluster`` runs one scenario on
the **process cluster runtime** — every parameter server and worker as a
separate OS process over real sockets under a supervising daemon (see
``docs/cluster.md``); ``sweep --runtime cluster`` puts whole grids on it.
``sweep`` and ``cluster`` handle SIGINT/SIGTERM gracefully: completed
scenario results are already flushed to the ``--store`` and the command
exits with the distinct code 3 so callers can tell "interrupted" from
"failed".

Observability (see ``docs/observability.md``): the global ``--trace FILE``
flag records a structured trace of any subcommand (phase spans, GAR
decision records, campaign cache/queue counters) to a JSONL file without
perturbing the run; ``trace`` summarises such a file and ``report``
renders its per-phase breakdown table and ASCII span timeline;
``--log-level`` / ``--log-json`` configure structured logging for every
subcommand.

Live telemetry (see ``docs/telemetry.md``): ``sweep --metrics-port`` and
``cluster --metrics-port`` serve the run's metrics registry over HTTP on
127.0.0.1 — ``/metrics`` (Prometheus text), ``/status`` (progress JSON),
``/healthz`` — and ``monitor`` polls such an endpoint into a live ASCII
dashboard.  A trace destination ending in ``.gz`` is gzip-compressed and
``trace``/``report`` read ``.jsonl.gz`` files transparently; on scenario
failure or SIGINT/SIGTERM the flight recorder dumps the trace ring and
final metrics snapshot to ``<name>.crash.json`` beside the store (or
under the global ``--crash-dir``).

Store service (see ``docs/store.md``): ``serve`` runs the campaign
scheduler daemon — campaigns submitted as JSON over local HTTP are
deduped against the store's sidecar index and executed through the
campaign engine; ``sweep --submit URL`` is its client.  ``store fsck``
verifies a store's entries and index (read-only, exit 1 on problems)
and ``store gc`` drops failed/corrupt entries and compacts the index.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import signal
import sys
import time
from typing import Dict, Optional

from repro.aggregation import available_rules, get_rule
from repro.byzantine.base import WorkerAttack
from repro.byzantine.registry import available_attacks, get_attack
from repro.core.config import ClusterConfig
from repro.campaign import (
    CampaignSpec,
    ResultStore,
    ScenarioSpec,
    available_cost_models,
    available_delay_models,
    available_trainers,
    run_campaign,
)
from repro.experiments.common import workload_attack_kwargs
from repro.experiments import (
    ExperimentScale,
    overhead_report,
    run_attack_sweep,
    run_crash_quorum_study,
    run_figure3,
    run_figure4,
    run_gar_ablation,
    run_partition_heal_study,
    run_quorum_ablation,
    run_scaling_study,
    run_table2,
    table1_report,
)
from repro.faults import FaultSchedule
from repro.kernels import set_backend
from repro import __version__
from repro.obs import (
    MetricsRegistry,
    MetricsServer,
    Tracer,
    TrainingHistory,
    configure_logging,
    get_registry,
    get_tracer,
    parse_prometheus_text,
    read_jsonl,
    use_registry,
    use_tracer,
    write_crash_report,
)
from repro.plotting import (
    format_table,
    histories_summary_table,
    render_dashboard,
    render_histories,
    render_phase_breakdown,
    render_span_timeline,
    scenarios_completed,
)


#: exit code of ``sweep``/``cluster`` runs cut short by SIGINT/SIGTERM —
#: distinct from 1 (scenario failures) and 2 (invalid arguments) so CI and
#: shell wrappers can tell an interrupted campaign from a broken one.
EXIT_INTERRUPTED = 3


@contextlib.contextmanager
def _graceful_interrupt():
    """Deliver SIGTERM as :class:`KeyboardInterrupt` for one command.

    SIGINT already raises ``KeyboardInterrupt``; routing SIGTERM through
    the same exception lets long-running subcommands unwind their
    ``finally`` blocks (tearing down cluster processes, closing the pool)
    instead of dying mid-write.  The previous handler is restored on exit.
    Outside the main thread — e.g. a test harness driving :func:`main`
    directly — handlers cannot be installed and the command runs with the
    process defaults.
    """
    def _raise(signum, frame):  # noqa: ARG001 - signal handler signature
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except ValueError:  # pragma: no cover - non-main-thread callers
        previous = None
    try:
        yield
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


def _flight_record(name: str, reason: str, *,
                   store: Optional[ResultStore] = None,
                   trace_path: Optional[str] = None,
                   crash_dir: Optional[str] = None,
                   context: Optional[Dict] = None) -> None:
    """Dump the flight recorder (trace ring + metrics snapshot) to disk.

    Called on scenario failure and on SIGINT/SIGTERM so post-mortems have
    the observability state that would otherwise die with the process.
    Best-effort: a full disk must not mask the original failure.
    """
    try:
        path = write_crash_report(
            name, reason,
            store_root=str(store.root) if store is not None else None,
            trace_path=trace_path, crash_dir=crash_dir, tracer=get_tracer(),
            registry=get_registry(), context=context)
    except OSError as exc:  # pragma: no cover - disk-full/permission paths
        print(f"warning: could not write crash report: {exc}",
              file=sys.stderr)
    else:
        print(f"(flight recorder: {path})", file=sys.stderr)


def _dump_metrics_snapshot(path: Optional[str]) -> None:
    """Write the active registry's snapshot JSON (``--metrics-snapshot``).

    A no-op without the flag; with it, the file is written even after an
    interrupt so CI can archive the final telemetry state unconditionally.
    """
    if not path:
        return
    registry = get_registry()
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(registry.snapshot(), handle, indent=2, sort_keys=True,
                      default=str)
    except OSError as exc:
        print(f"warning: could not write metrics snapshot to {path}: {exc}",
              file=sys.stderr)
    else:
        print(f"(wrote metrics snapshot to {path})", file=sys.stderr)


@contextlib.contextmanager
def _metrics_endpoint(port: Optional[int], status):
    """Install a fresh registry and serve it over HTTP for one command.

    ``port`` of ``None`` (flag not given) keeps telemetry at the no-op
    default: zero hot-path cost, no socket bound.  ``0`` binds an
    ephemeral port (printed so callers can find it).
    """
    if port is None:
        yield None
        return
    registry = MetricsRegistry()
    with use_registry(registry), \
            MetricsServer(port, registry=registry, status=status) as server:
        # stderr: 'cluster --json' and piped sweeps keep stdout machine-
        # readable, and CI still sees the bound (possibly ephemeral) port.
        print(f"metrics endpoint: {server.url}/metrics  "
              f"(/status, /healthz; 'repro monitor --port {server.port}')",
              file=sys.stderr, flush=True)
        yield server


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    scale = ExperimentScale.small() if args.preset == "small" \
        else ExperimentScale.paper_like()
    if args.steps is not None:
        scale.num_steps = args.steps
    if args.workers_count is not None:
        scale.num_workers = args.workers_count
    if args.servers_count is not None:
        scale.num_servers = args.servers_count
    if args.seed is not None:
        scale.seed = args.seed
    # Keep the declared Byzantine counts admissible (n >= 3f + 3) after any
    # cluster-size overrides.
    scale.declared_byzantine_workers = min(
        scale.declared_byzantine_workers,
        ClusterConfig.max_admissible_byzantine(scale.num_workers))
    scale.declared_byzantine_servers = min(
        scale.declared_byzantine_servers,
        ClusterConfig.max_admissible_byzantine(scale.num_servers))
    scale.dataset_size = max(scale.dataset_size, 2400)
    return scale


def _dump_json(path: Optional[str], payload) -> None:
    if not path:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
    print(f"\n(wrote raw results to {path})")


def _histories_payload(histories: Dict[str, TrainingHistory]) -> Dict:
    return {name: history.to_dict() for name, history in histories.items()}


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def cmd_table1(args: argparse.Namespace) -> int:
    report = table1_report()
    print("Table 1 — CNN model parameters")
    print(format_table(report["layers"]))
    print(f"\ntotal parameters: {report['total_parameters']:,} "
          f"(paper: ~{report['paper_total_parameters']:,})")
    _dump_json(args.json, report)
    return 0


def cmd_figure3(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    result = run_figure3(scale=scale, batch_size=args.batch_size)
    print(f"Figure 3 — batch size {result.batch_size}, non-Byzantine environment\n")
    print(histories_summary_table(result.histories,
                                  target_accuracy=result.reference_accuracy()))
    print("\n" + render_histories(result.histories, x_axis=args.x_axis))
    _dump_json(args.json, _histories_payload(result.histories))
    return 0


def cmd_figure4(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    result = run_figure4(scale=scale)
    print("Figure 4 — impact of Byzantine players on convergence\n")
    print(histories_summary_table(result.histories))
    print("\n" + render_histories(result.histories, x_axis="steps"))
    _dump_json(args.json, _histories_payload(result.histories))
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    samples = run_table2(scale=scale, interval=args.interval)
    rows = [{"step": s.step, "cos_phi": s.cos_phi, "max_diff1": s.max_diff_1,
             "max_diff2": s.max_diff_2} for s in samples]
    print("Table 2 — alignment of parameter-difference vectors")
    print(format_table(rows, float_format="{:.5f}"))
    _dump_json(args.json, rows)
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    report = overhead_report(scale=scale)
    print("Section 5.3 — overhead breakdown "
          "(paper: ~65 % runtime, up to ~33 % Byzantine)\n")
    print(format_table([report.as_rows()]))
    _dump_json(args.json, report.as_rows())
    return 0


def cmd_attack_sweep(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    histories = run_attack_sweep(scale=scale)
    print("Attack sweep — GuanYu under every registered attack\n")
    print(histories_summary_table(histories))
    _dump_json(args.json, _histories_payload(histories))
    return 0


def cmd_attacks(args: argparse.Namespace) -> int:
    """List the registered attacks and adversaries (name, kind, parameters)."""
    import inspect

    from repro.adversary.registry import available_adversaries, get_adversary

    def parameters_of(obj) -> str:
        signature = inspect.signature(type(obj).__init__)
        parts = []
        for parameter in list(signature.parameters.values())[1:]:  # skip self
            if parameter.kind in (inspect.Parameter.VAR_POSITIONAL,
                                  inspect.Parameter.VAR_KEYWORD):
                continue  # attacks without an __init__ inherit object's
            if parameter.default is inspect.Parameter.empty:
                parts.append(parameter.name)
            else:
                parts.append(f"{parameter.name}={parameter.default!r}")
        return ", ".join(parts) if parts else "-"

    rows = []
    for name in available_attacks():
        attack = get_attack(name)
        kind = ("worker-attack" if isinstance(attack, WorkerAttack)
                else "server-attack")
        rows.append((name, kind, parameters_of(attack)))
    for name in available_adversaries():
        rows.append((name, "adversary", parameters_of(get_adversary(name))))

    print("Registered attacks and adversaries "
          "(legacy attack names also resolve as stateless adversaries):\n")
    for name, kind, parameters in rows:
        print(f"  {name:<20} [{kind:<13}] {parameters}")
    _dump_json(args.json, [{"name": name, "kind": kind, "parameters": params}
                           for name, kind, params in rows])
    return 0


def cmd_gars(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    histories = run_gar_ablation(scale=scale)
    print("GAR ablation — server-side aggregation rule under attack\n")
    print(histories_summary_table(histories))
    _dump_json(args.json, _histories_payload(histories))
    return 0


def cmd_quorums(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    histories = run_quorum_ablation(scale=scale)
    renamed = {f"q={quorum}": history for quorum, history in histories.items()}
    print("Quorum ablation — gradient quorum vs. throughput\n")
    print(histories_summary_table(renamed))
    _dump_json(args.json, _histories_payload(renamed))
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    rows = run_scaling_study(scale=scale, worker_counts=tuple(args.workers))
    print("Scaling study — workers vs. throughput\n")
    print(format_table(rows))
    _dump_json(args.json, rows)
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """Print the registries a sweep spec can draw from."""

    def first_doc_line(obj) -> str:
        return (obj.__doc__ or "").strip().splitlines()[0] if obj.__doc__ else ""

    print("Aggregation rules (gradient_rule / model_rule):")
    for name in available_rules():
        rule = get_rule(name)
        tag = "resilient" if rule.byzantine_resilient else "non-resilient"
        print(f"  {name:<18} [{tag:<13}] {first_doc_line(type(rule))}")

    print("\nAttacks (worker_attack / server_attack):")
    for name in available_attacks():
        attack = get_attack(name)
        role = "worker" if isinstance(attack, WorkerAttack) else "server"
        print(f"  {name:<18} [{role:<13}] {first_doc_line(type(attack))}")

    from repro.adversary.registry import available_adversaries, get_adversary

    print("\nAdversaries (stateful, coordinated; legacy attack names also "
          "resolve):")
    for name in available_adversaries():
        adversary = get_adversary(name)
        print(f"  {name:<18} [{'adversary':<13}] "
              f"{first_doc_line(type(adversary))}")

    from repro.hetero import available_partitions

    print(f"\nTrainers:         {', '.join(available_trainers())}")
    print(f"Delay models:     {', '.join(available_delay_models())}")
    print(f"Cost models:      {', '.join(available_cost_models())}")
    print(f"Hetero partitions: {', '.join(available_partitions())} "
          f"(sweep --hetero / spec 'hetero' field)")
    return 0


# --------------------------------------------------------------------------- #
# Sweep subcommand (campaign engine)
# --------------------------------------------------------------------------- #
def _attack_axis_entry(attack_name: str, base: ScenarioSpec) -> Dict:
    """Grid-axis patch selecting one attack (worker or server side)."""
    attack = get_attack(attack_name)  # raises on unknown names
    kwargs = workload_attack_kwargs(attack_name, base.dataset)
    entry: Dict[str, object] = {"_name": attack_name,
                                "worker_attack": None, "server_attack": None}
    side = "worker_attack" if isinstance(attack, WorkerAttack) else "server_attack"
    entry[side] = {"name": attack_name, "kwargs": kwargs}
    return entry


def _workers_axis_entry(num_workers: int, base: ScenarioSpec) -> Dict:
    """Grid-axis patch for a cluster size, keeping ``n̄ ≥ 3f̄ + 3``."""
    declared = min(base.declared_byzantine_workers,
                   ClusterConfig.max_admissible_byzantine(num_workers))
    return {"_name": f"workers={num_workers}", "num_workers": num_workers,
            "declared_byzantine_workers": declared}


def _campaign_from_args(args: argparse.Namespace) -> CampaignSpec:
    if args.spec:
        if args.faults:
            raise ValueError(
                "--faults applies to grid sweeps only; a --spec campaign "
                "file carries fault schedules in its scenarios' own "
                "'faults' fields")
        if args.runtime:
            raise ValueError(
                "--runtime applies to grid sweeps only; a --spec campaign "
                "file carries the runtime in its scenarios' own 'runtime' "
                "fields")
        return CampaignSpec.from_json_file(args.spec)
    base = ScenarioSpec.from_scale(_scale_from_args(args), trainer=args.trainer,
                                   name=args.name)
    if args.runtime:
        base = base.replace(runtime=args.runtime)
    if args.faults:
        with open(args.faults, "r", encoding="utf-8") as handle:
            base = base.replace(faults=FaultSchedule.from_json(handle.read()))
    grid: Dict[str, list] = {}
    if args.gars:
        grid["gradient_rule"] = list(args.gars)
    if args.attacks:
        grid["attack"] = [_attack_axis_entry(name, base) for name in args.attacks]
    if args.adversaries:
        if args.attacks:
            # An adversary cell would override the attack cell's fields and
            # the two axes would collapse into duplicate content addresses
            # under misleading names — sweep them as separate campaigns, or
            # put legacy attack names directly on the adversary axis.
            raise ValueError(
                "--attacks and --adversaries cannot be combined: both set "
                "the scenario's Byzantine behaviour; legacy attack names "
                "are valid --adversaries values")
        from repro.adversary.registry import get_adversary

        for name in args.adversaries:
            get_adversary(name, **workload_attack_kwargs(
                name, base.dataset))  # raises on typos
        grid["adversary"] = [
            {"_name": name,
             "adversary": {"name": name,
                           "kwargs": workload_attack_kwargs(name,
                                                            base.dataset)},
             "worker_attack": None, "server_attack": None}
            for name in args.adversaries]
    if args.hetero:
        from repro.hetero import HeteroSpec

        entries = []
        for token in args.hetero:
            hetero = HeteroSpec.from_token(token)  # raises on typos
            entries.append({"_name": token,
                            "hetero": hetero.to_dict() if hetero else None})
        grid["hetero"] = entries
    if args.seeds:
        grid["seed"] = list(args.seeds)
    if args.workers_grid:
        grid["cluster"] = [_workers_axis_entry(count, base)
                           for count in args.workers_grid]
    return CampaignSpec(name=args.name, base=base, grid=grid)


def cmd_sweep(args: argparse.Namespace) -> int:
    try:
        campaign = _campaign_from_args(args)
        campaign_name = campaign.name
        scenarios = campaign.expand(
            on_invalid="skip" if args.skip_invalid else "raise")
        # --submit hands execution to a scheduler daemon; the local
        # expansion above still validates the campaign before any I/O.
        store = (ResultStore(args.store)
                 if args.store and not args.submit else None)
    except (KeyError, ValueError, OSError) as exc:
        print(f"error: invalid campaign: {exc}", file=sys.stderr)
        return 2
    if args.submit:
        return _submit_sweep(args, campaign)
    processes = args.processes
    if processes is None:
        processes = max(1, min(os.cpu_count() or 1, 8))

    started = time.perf_counter()
    # Shared with the /status endpoint's serving thread; plain key updates
    # on a dict are atomic under the GIL, and the endpoint copies it per
    # request, so no further locking is needed.
    progress_state: Dict[str, object] = {
        "command": "sweep", "campaign": campaign_name,
        "total": len(scenarios), "completed": 0,
        "counts": {"ran": 0, "cached": 0, "failed": 0},
        "elapsed_seconds": 0.0,
        "store": str(store.root) if store is not None else None,
    }

    def report_progress(outcome, completed, total) -> None:
        elapsed = time.perf_counter() - started
        counts = dict(progress_state["counts"])
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
        progress_state.update(completed=completed, counts=counts,
                              elapsed_seconds=round(elapsed, 3))
        line = f"[{completed}/{total}] {outcome.status:<6} {outcome.spec.name}"
        if outcome.status == "ran":
            line += f" ({outcome.duration_seconds:.2f}s"
            line += ", batched)" if outcome.batched else ")"
        elif outcome.status == "failed":
            line += f" — {outcome.error}"
        line += f" [+{elapsed:.1f}s]"
        # Explicit flush: piped into `tee`/CI logs, stdout is block-buffered
        # and progress would otherwise arrive only at campaign end.
        print(line, flush=True)

    with _metrics_endpoint(args.metrics_port, lambda: dict(progress_state)):
        try:
            with _graceful_interrupt():
                result = run_campaign(scenarios, name=campaign_name,
                                      store=store, processes=processes,
                                      progress=report_progress,
                                      batch_seeds=args.batch_seeds,
                                      lanes=args.lanes)
        except KeyboardInterrupt:
            # Completed scenarios were persisted the moment they finished
            # (the engine calls store.put per outcome), so the interrupt
            # loses only the in-flight work; the flight recorder preserves
            # the trace ring and telemetry snapshot for the post-mortem.
            _flight_record(campaign_name, "interrupted", store=store,
                           trace_path=args.trace, crash_dir=args.crash_dir,
                           context=dict(progress_state))
            _dump_metrics_snapshot(args.metrics_snapshot)
            if store is not None:
                print(f"\ninterrupted: completed results already flushed to "
                      f"{store.root} ({len(store)} entries); re-run the same "
                      f"sweep to resume", flush=True)
            else:
                print("\ninterrupted (no --store given: completed results "
                      "were not persisted)", flush=True)
            return EXIT_INTERRUPTED
        if result.failures():
            _flight_record(
                campaign_name, "scenario-failure", store=store,
                trace_path=args.trace, crash_dir=args.crash_dir,
                context={"failed": [outcome.spec.name for outcome
                                    in result.failures()]})
        elapsed = time.perf_counter() - started
        counts = result.counts()
        num_batched = sum(1 for outcome in result.outcomes if outcome.batched)
        batched_note = f" ({num_batched} batched)" if num_batched else ""
        # One-line machine-greppable summary; the scheduled CI workflow
        # relies on this line plus the non-zero exit code below to detect
        # failures.
        print(f"\ncampaign '{result.name}': {len(result.outcomes)} scenarios "
              f"— ran {counts['ran']}{batched_note}, "
              f"cached {counts['cached']}, "
              f"failed {counts['failed']} in {elapsed:.1f}s "
              f"({processes} process(es))")
        if store is not None:
            print(f"result store: {store.root} ({len(store)} entries)")
        histories = result.histories()
        if histories:
            print("\n" + histories_summary_table(histories))
        for outcome in result.failures():
            print(f"FAILED {outcome.spec.name}: {outcome.error}")
        _dump_json(args.json, _histories_payload(histories))
        _dump_metrics_snapshot(args.metrics_snapshot)
        return 1 if result.failures() else 0


# --------------------------------------------------------------------------- #
# Cluster subcommand (process cluster runtime)
# --------------------------------------------------------------------------- #
def _cluster_report_rows(report: Dict) -> list:
    """Flatten a supervisor report into table rows for display."""
    rows = []
    for node_id, info in report["nodes"].items():
        rows.append({
            "node": node_id,
            "state": info["state"],
            "exits": ",".join(str(code) for code in info["exit_codes"]) or "-",
            "respawns": info["respawns"],
            "crashed_steps": ",".join(str(step)
                                      for step in info["crashed_steps"]) or "-",
        })
    return rows


def cmd_cluster(args: argparse.Namespace) -> int:
    """Run one scenario as real OS processes over real sockets."""
    from repro.runtime.cluster import (
        ClusterOptions,
        ClusterRuntime,
        SupervisorError,
        cluster_available,
    )

    try:
        spec = ScenarioSpec.from_scale(
            _scale_from_args(args), trainer="guanyu_threaded",
            name=args.name).replace(runtime="cluster")
        if args.gar:
            spec = spec.replace(gradient_rule=args.gar)
        if args.faults:
            with open(args.faults, "r", encoding="utf-8") as handle:
                spec = spec.replace(
                    faults=FaultSchedule.from_json(handle.read()))
        spec.validate()
        store = ResultStore(args.store) if args.store else None
    except (KeyError, ValueError, OSError) as exc:
        print(f"error: invalid scenario: {exc}", file=sys.stderr)
        return 2
    if not cluster_available():
        print("error: this host cannot bind sockets, so the process cluster "
              "runtime is unavailable; run the scenario on the threaded "
              "runtime instead (repro sweep --trainer guanyu_threaded)",
              file=sys.stderr)
        return 1
    runtime = ClusterRuntime(spec,
                             options=ClusterOptions(transport=args.transport))

    def cluster_status() -> Dict:
        report = runtime.report()
        return {"command": "cluster", "scenario": spec.name,
                "report": report if report is not None else {}}

    started = time.perf_counter()
    with _metrics_endpoint(args.metrics_port, cluster_status):
        try:
            with _graceful_interrupt():
                history = runtime.run(spec.num_steps)
        except KeyboardInterrupt:
            # Supervisor.run tears the node processes down in its
            # ``finally`` before the interrupt reaches us; a single
            # scenario has no partial result worth flushing, but the
            # flight recorder keeps the trace ring + metrics snapshot.
            _flight_record(spec.name, "interrupted", store=store,
                           trace_path=args.trace, crash_dir=args.crash_dir)
            print("\ninterrupted: cluster torn down, no completed result "
                  "to flush", file=sys.stderr)
            return EXIT_INTERRUPTED
        except SupervisorError as exc:
            _flight_record(spec.name, "cluster-failure", store=store,
                           trace_path=args.trace, crash_dir=args.crash_dir,
                           context={"error": str(exc)})
            print(f"error: cluster run failed: {exc}", file=sys.stderr)
            report = runtime.report()
            if report is not None:
                if args.json_report:
                    print(json.dumps(report, indent=2, sort_keys=True,
                                     default=str))
                else:
                    print("\nNode lifecycle at failure:", file=sys.stderr)
                    print(format_table(_cluster_report_rows(report)),
                          file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - started
        report = runtime.report()
        key = (store.put(spec, history, duration_seconds=elapsed)
               if store is not None else None)
        if args.json_report:
            # Machine-readable mode: stdout is one JSON document carrying
            # the supervisor report (per-incarnation pids, exit codes,
            # probe timeouts) instead of the lifecycle table.
            print(json.dumps({"scenario": spec.name,
                              "elapsed_seconds": round(elapsed, 3),
                              "report": report,
                              "store_key": key},
                             indent=2, sort_keys=True, default=str))
        else:
            print(f"cluster run '{spec.name}' — {spec.num_servers} "
                  f"server(s) + {spec.num_workers} worker(s) as OS "
                  f"processes over {report['transport']} sockets, "
                  f"{spec.num_steps} step(s) in {elapsed:.1f}s\n")
            print(histories_summary_table({spec.name: history}))
            print("\nNode lifecycle:")
            print(format_table(_cluster_report_rows(report)))
            if store is not None:
                print(f"\nresult store: {store.root} ({len(store)} entries; "
                      f"this run: {key[:12]})")
        _dump_json(args.json, {"history": history.to_dict(),
                               "report": report})
        return 0


# --------------------------------------------------------------------------- #
# Resilience subcommand (fault-schedule engine)
# --------------------------------------------------------------------------- #
def cmd_resilience(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    try:
        store = ResultStore(args.store) if args.store else None
    except OSError as exc:
        print(f"error: unusable store path: {exc}", file=sys.stderr)
        return 2
    if args.mode == "crash":
        rows, histories = run_crash_quorum_study(
            scale=scale, crash_counts=tuple(args.crashes),
            quorum_sizes=tuple(args.quorums) if args.quorums else None,
            crash_step=args.crash_step, recover_step=args.recover_step,
            trainer=args.trainer, store=store, processes=args.processes)
        print("Resilience — crash count × model quorum "
              "(liveness boundary: crashed ≤ n − q)\n")
    else:
        rows, histories = run_partition_heal_study(
            scale=scale, partition_step=args.partition_step,
            heal_steps=tuple(args.heal_steps) if args.heal_steps else None,
            trainer=args.trainer, store=store, processes=args.processes)
        print("Resilience — partition-heal recovery "
              "(phase-3 median re-contracts the stale replica)\n")
    print(format_table(rows, float_format="{:.4f}"))
    if store is not None:
        print(f"\nresult store: {store.root} ({len(store)} entries)")
    _dump_json(args.json, {"rows": rows,
                           "histories": _histories_payload(histories)})
    return 0


# --------------------------------------------------------------------------- #
# Breakdown subcommand (adversary engine)
# --------------------------------------------------------------------------- #
def cmd_breakdown(args: argparse.Namespace) -> int:
    from repro.experiments.breakdown import (
        breakdown_table,
        run_breakdown_search,
    )

    scale = _scale_from_args(args)
    try:
        store = ResultStore(args.store) if args.store else None
    except OSError as exc:
        print(f"error: unusable store path: {exc}", file=sys.stderr)
        return 2
    results = run_breakdown_search(
        scale=scale, gars=tuple(args.gars), adversaries=tuple(args.adversaries),
        loss_factor=args.loss_factor, loss_slack=args.loss_slack, store=store)
    rows = breakdown_table(results)
    print("Breakdown-point search — largest attacker count each GAR "
          "survives\n(admissible_f is the n̄ ≥ 3f̄ + 3 ceiling of the "
          "cluster arithmetic)\n")
    print(format_table(rows, float_format="{:.4f}"))
    if store is not None:
        print(f"\nresult store: {store.root} ({len(store)} entries)")
    _dump_json(args.json, {
        "rows": rows,
        "losses": [{"gradient_rule": result.gradient_rule,
                    "adversary": result.adversary,
                    "losses": result.losses} for result in results],
    })
    return 0


# --------------------------------------------------------------------------- #
# Hetero subcommand (heterogeneity engine)
# --------------------------------------------------------------------------- #
def cmd_hetero(args: argparse.Namespace) -> int:
    from repro.experiments.heterogeneity import (
        heterogeneity_table,
        run_heterogeneity_study,
    )

    scale = _scale_from_args(args)
    try:
        store = ResultStore(args.store) if args.store else None
    except OSError as exc:
        print(f"error: unusable store path: {exc}", file=sys.stderr)
        return 2
    results, histories = run_heterogeneity_study(
        scale=scale, skews=tuple(args.skews), gars=tuple(args.gars),
        adversaries=tuple(args.adversaries),
        seeds=tuple(args.seeds) if args.seeds else None, store=store,
        processes=args.processes, batch_seeds=args.batch_seeds)
    rows = heterogeneity_table(results)
    print("Heterogeneity study — final accuracy per skew level\n"
          "(honest gradients fragment as skew grows; Byzantine vectors "
          "hide inside the honest spread)\n")
    print(format_table(rows, float_format="{:.4f}"))
    if store is not None:
        print(f"\nresult store: {store.root} ({len(store)} entries)")
    _dump_json(args.json, {
        "rows": rows,
        "losses": [{"gradient_rule": result.gradient_rule,
                    "adversary": result.adversary,
                    "losses": result.losses} for result in results],
        "histories": _histories_payload(histories),
    })
    return 0


# --------------------------------------------------------------------------- #
# Trace / report subcommands (observability layer)
# --------------------------------------------------------------------------- #
def _load_trace(path: str) -> list:
    try:
        return list(read_jsonl(path))
    except OSError as exc:
        raise ValueError(f"cannot read trace file: {exc}") from exc


def cmd_trace(args: argparse.Namespace) -> int:
    """Summarise a trace JSONL file: record counts, counters, event kinds."""
    records = _load_trace(args.file)
    spans = [r for r in records if r.kind == "span"]
    events = [r for r in records if r.kind == "event"]
    counters: Dict[str, float] = {}
    for record in records:
        if record.kind == "counter":
            value = record.attrs.get("value", 0)
            counters[record.name] = counters.get(record.name, 0) + value
    print(f"trace {args.file}: {len(records)} record(s) — "
          f"{len(spans)} span(s), {len(events)} event(s), "
          f"{len(counters)} counter(s)")

    print("\nPhase breakdown:")
    print(render_phase_breakdown(records))

    event_counts: Dict[str, int] = {}
    for record in events:
        event_counts[record.name] = event_counts.get(record.name, 0) + 1
    if event_counts:
        print("\nEvents:")
        print(format_table([{"event": name, "count": count}
                            for name, count
                            in sorted(event_counts.items())]))
    if counters:
        print("\nCounters:")
        print(format_table([{"counter": name, "value": value}
                            for name, value in sorted(counters.items())]))
    _dump_json(args.json, {
        "records": len(records),
        "spans": len(spans),
        "events": event_counts,
        "counters": counters,
    })
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render a trace's phase-breakdown table and ASCII span timeline."""
    records = _load_trace(args.file)
    print(f"report — {args.file}\n")
    print("Phase breakdown:")
    print(render_phase_breakdown(records))
    print("\nSpan timeline:")
    print(render_span_timeline(records, width=args.width,
                               max_rows=args.max_rows, node=args.node))
    _dump_json(args.json, [record.to_dict() for record in records
                           if record.kind == "span"])
    return 0


# --------------------------------------------------------------------------- #
# Monitor subcommand (live-telemetry dashboard)
# --------------------------------------------------------------------------- #
def _fetch_endpoint(base: str, timeout: float):
    """One poll: parsed /metrics families + /status JSON document."""
    import urllib.request

    with urllib.request.urlopen(base + "/metrics", timeout=timeout) as reply:
        families = parse_prometheus_text(reply.read().decode("utf-8"))
    with urllib.request.urlopen(base + "/status", timeout=timeout) as reply:
        status = json.loads(reply.read().decode("utf-8"))
    return families, status


def cmd_monitor(args: argparse.Namespace) -> int:
    """Poll a --metrics-port endpoint and render a live ASCII dashboard."""
    import urllib.error

    if args.url:
        base = args.url.rstrip("/")
    elif args.port is not None:
        base = f"http://127.0.0.1:{args.port}"
    else:
        print("error: monitor needs --port or --url", file=sys.stderr)
        return 2
    rates: list = []
    previous_completed: Optional[float] = None
    previous_poll: Optional[float] = None
    frames = 0
    families: Dict = {}
    status: Dict = {}
    try:
        while True:
            try:
                families, status = _fetch_endpoint(base, args.timeout)
            except (urllib.error.URLError, OSError, ValueError) as exc:
                if frames:
                    # The watched run finished and closed its endpoint —
                    # that is the dashboard's normal end, not a failure.
                    print(f"\nendpoint {base} gone ({exc}); monitored run "
                          f"finished?", file=sys.stderr)
                    break
                print(f"error: cannot poll {base}: {exc}", file=sys.stderr)
                return 1
            now = time.perf_counter()
            completed = scenarios_completed(families)
            if previous_completed is not None and now > previous_poll:
                rates.append((completed - previous_completed)
                             / (now - previous_poll))
                rates[:] = rates[-120:]
            previous_completed, previous_poll = completed, now
            frame = render_dashboard(families, status, throughput=rates,
                                     width=args.width)
            if frames and not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            print(frame, flush=True)
            frames += 1
            if args.iterations is not None and frames >= args.iterations:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass  # Ctrl-C is how an open-ended watch ends — not an error
    _dump_json(args.json, {"status": status,
                           "families": list(families.values())})
    return 0


# --------------------------------------------------------------------------- #
# Scheduler daemon (serve) and its sweep client (--submit)
# --------------------------------------------------------------------------- #
def cmd_serve(args: argparse.Namespace) -> int:
    """Run the campaign scheduler daemon until SIGINT/SIGTERM."""
    from repro.campaign.scheduler import CampaignScheduler

    registry = MetricsRegistry()
    with use_registry(registry):
        store = ResultStore(args.store)
        scheduler = CampaignScheduler(
            store, processes=args.processes,
            batch_seeds=not args.no_batch_seeds, lanes=args.lanes)
        with scheduler, MetricsServer(args.port, registry=registry,
                                      status=scheduler.status,
                                      routes=scheduler.handle_route
                                      ) as server:
            # stdout so wrappers (and the weekly CI smoke) can capture the
            # bound URL even with --port 0.
            print(f"scheduler: {server.url}  "
                  f"(POST /campaigns; GET /campaigns[/<id>], /results, "
                  f"/metrics, /status; store: {store.root})", flush=True)
            try:
                with _graceful_interrupt():
                    while True:
                        time.sleep(0.5)
            except KeyboardInterrupt:
                print("shutting down: finishing the running job (if any)",
                      file=sys.stderr, flush=True)
    return 0


def _submit_sweep(args: argparse.Namespace, campaign: CampaignSpec) -> int:
    """Run ``sweep`` as a client of a ``repro serve`` daemon."""
    import urllib.error
    import urllib.request

    base = args.submit.rstrip("/")
    document = {"campaign": campaign.to_dict(),
                "options": {"on_invalid":
                            "skip" if args.skip_invalid else "raise"}}
    request = urllib.request.Request(
        base + "/campaigns", data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            job = json.load(response)
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        print(f"error: scheduler rejected the campaign ({exc.code}): "
              f"{detail}", file=sys.stderr)
        return 2
    except (urllib.error.URLError, OSError) as exc:
        print(f"error: cannot reach scheduler at {base}: {exc}",
              file=sys.stderr)
        return 2
    print(f"submitted '{job['name']}' as {job['id']}: {job['total']} "
          f"scenario(s), {job['cached_at_submit']} already in the store",
          flush=True)
    last_completed = -1
    try:
        with _graceful_interrupt():
            while True:
                with urllib.request.urlopen(
                        f"{base}/campaigns/{job['id']}",
                        timeout=30) as response:
                    job = json.load(response)
                if job["completed"] != last_completed:
                    last_completed = job["completed"]
                    counts = job.get("counts") or {}
                    summary = ", ".join(
                        f"{status} {count}"
                        for status, count in sorted(counts.items()))
                    print(f"[{job['completed']}/{job['total']}] "
                          f"{summary or job['state']}", flush=True)
                if job["state"] in ("done", "failed"):
                    break
                time.sleep(args.poll_interval)
    except KeyboardInterrupt:
        # Detaching is not cancelling: the daemon owns the job.
        print(f"\ndetached: {job['id']} keeps running on the scheduler "
              f"(poll {base}/campaigns/{job['id']})", flush=True)
        return EXIT_INTERRUPTED
    except (urllib.error.URLError, OSError) as exc:
        print(f"error: lost the scheduler at {base}: {exc}", file=sys.stderr)
        return 1
    for failure in job.get("failures") or []:
        print(f"FAILED {failure['scenario']}: {failure['error']}")
    if job.get("error"):
        print(f"error: {job['error']}", file=sys.stderr)
    counts = ", ".join(f"{status} {count}" for status, count
                       in sorted((job.get("counts") or {}).items()))
    print(f"campaign '{job['name']}' ({job['id']}): {job['state']}"
          + (f" — {counts}" if counts else ""))
    return 0 if job["state"] == "done" else 1


# --------------------------------------------------------------------------- #
# Store hygiene (store fsck / store gc)
# --------------------------------------------------------------------------- #
def cmd_store_fsck(args: argparse.Namespace) -> int:
    store = ResultStore(args.root)
    report = store.fsck()
    print(f"fsck {store.root}: {report.entries} entr(ies) in "
          f"{report.shards} shard(s), {report.stale_temps} stale temp "
          f"file(s)")
    for issue in report.issues:
        print(f"  {issue.kind}: {issue.detail}")
    if report.ok:
        print("ok: entries, index and telemetry agree")
    else:
        print(f"{len(report.issues)} problem(s) found "
              f"('repro store gc' removes corrupt/failed entries and "
              f"recompacts the index)")
    _dump_json(args.json, report.to_dict())
    return 0 if report.ok else 1


def cmd_store_gc(args: argparse.Namespace) -> int:
    store = ResultStore(args.root)
    stats = store.gc(dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(f"gc {store.root}: {verb} {stats['removed_failed']} failed and "
          f"{stats['removed_corrupt']} corrupt entr(ies), "
          f"{stats['orphan_rows_dropped']} orphan index row(s), "
          f"{stats['stale_temps_removed']} stale temp file(s); "
          f"compacted {stats['shards_compacted']} shard index(es); "
          f"{stats['entries']} entr(ies) remain")
    _dump_json(args.json, stats)
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the GuanYu paper.")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("--json", help="write raw results to this JSON file")
    parser.add_argument("--preset", choices=("small", "paper"), default="small",
                        help="workload preset (default: small)")
    parser.add_argument("--steps", type=int, default=None,
                        help="override the number of model updates")
    parser.add_argument("--workers-count", type=int, default=None,
                        help="override the number of workers")
    parser.add_argument("--servers-count", type=int, default=None,
                        help="override the number of parameter servers")
    parser.add_argument("--seed", type=int, default=None, help="override the seed")
    parser.add_argument("--log-level",
                        choices=("debug", "info", "warning", "error"),
                        default="warning",
                        help="logging verbosity of the 'repro' loggers "
                             "(default: warning)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit log records as JSON lines (for ingestion)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="record a structured trace of the run "
                             "(spans/events/counters) to this JSONL file; "
                             "inspect it with 'repro trace' / 'repro report'")
    parser.add_argument("--crash-dir", default=None, metavar="DIR",
                        help="directory for flight-recorder *.crash.json "
                             "dumps (default: beside the --store, else "
                             "beside the trace file, else the working "
                             "directory)")
    parser.add_argument("--kernel-backend", default=None, metavar="NAME",
                        help="kernel backend for this process (see "
                             "repro.kernels; overrides the "
                             "REPRO_KERNEL_BACKEND environment variable)")

    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("table1", help="Table 1: CNN architecture") \
        .set_defaults(func=cmd_table1)

    figure3 = subparsers.add_parser("figure3", help="Figure 3: overhead comparison")
    figure3.add_argument("--batch-size", type=int, default=128)
    figure3.add_argument("--x-axis", choices=("steps", "time"), default="steps")
    figure3.set_defaults(func=cmd_figure3)

    subparsers.add_parser("figure4", help="Figure 4: Byzantine impact") \
        .set_defaults(func=cmd_figure4)

    table2 = subparsers.add_parser("table2", help="Table 2: parameter alignment")
    table2.add_argument("--interval", type=int, default=10)
    table2.set_defaults(func=cmd_table2)

    subparsers.add_parser("overhead", help="Section 5.3 overhead breakdown") \
        .set_defaults(func=cmd_overhead)
    subparsers.add_parser(
        "attacks",
        help="list registered attacks and adversaries (name, kind, params)") \
        .set_defaults(func=cmd_attacks)
    subparsers.add_parser("attack-sweep", help="attack sweep ablation") \
        .set_defaults(func=cmd_attack_sweep)
    subparsers.add_parser("gars", help="aggregation-rule ablation") \
        .set_defaults(func=cmd_gars)
    subparsers.add_parser("quorums", help="quorum-size ablation") \
        .set_defaults(func=cmd_quorums)

    scaling = subparsers.add_parser("scaling", help="cluster scaling study")
    scaling.add_argument("--workers", type=int, nargs="+", default=[6, 9, 12, 18])
    scaling.set_defaults(func=cmd_scaling)

    subparsers.add_parser(
        "list", help="print the rule/attack registries sweep specs draw from") \
        .set_defaults(func=cmd_list)

    sweep = subparsers.add_parser(
        "sweep", help="run a declarative scenario campaign (grid or JSON spec)")
    sweep.add_argument("--spec", default=None,
                       help="campaign spec JSON file (overrides grid flags)")
    sweep.add_argument("--name", default="sweep", help="campaign name")
    sweep.add_argument("--trainer", choices=tuple(available_trainers()),
                       default="guanyu", help="trainer kind for grid sweeps")
    sweep.add_argument("--gars", nargs="+", default=None, metavar="RULE",
                       help="gradient aggregation rules to sweep over")
    sweep.add_argument("--attacks", nargs="+", default=None, metavar="ATTACK",
                       help="registered attacks to sweep over")
    sweep.add_argument("--adversaries", nargs="+", default=None,
                       metavar="ADVERSARY",
                       help="stateful adversaries (or wrapped legacy attack "
                            "names) to sweep over")
    sweep.add_argument("--seeds", type=int, nargs="+", default=None,
                       help="seeds to sweep over")
    sweep.add_argument("--workers-grid", type=int, nargs="+", default=None,
                       metavar="N", help="cluster sizes to sweep over")
    sweep.add_argument("--store", default=None,
                       help="result-store directory (enables caching/resume)")
    sweep.add_argument("--processes", type=int, default=None,
                       help="pool size (default: min(cpu_count, 8); 1 = serial)")
    sweep.add_argument("--batch-seeds", action="store_true",
                       help="run scenarios that differ only in seed as one "
                            "vectorised multi-replica execution (bit-"
                            "identical per seed; see docs/performance.md)")
    sweep.add_argument("--lanes", type=int, default=None,
                       help="with --batch-seeds: shard each group's replica "
                            "lanes over this many worker processes (merged "
                            "histories stay bit-identical; see "
                            "docs/performance.md)")
    sweep.add_argument("--hetero", nargs="+", default=None, metavar="SKEW",
                       help="data-heterogeneity levels to sweep over (iid, "
                            "dirichlet=ALPHA, shards=K, imbalance=GAMMA, "
                            "drift=SIGMA)")
    sweep.add_argument("--faults", default=None, metavar="FILE",
                       help="fault-schedule JSON applied to every grid cell")
    sweep.add_argument("--runtime", choices=("batched", "cluster"),
                       default=None,
                       help="execution runtime for every grid cell: "
                            "'batched' runs each scenario as a one-replica "
                            "lane on the vectorised runtime (trainer "
                            "guanyu); 'cluster' runs each scenario as real "
                            "OS processes over sockets (requires --trainer "
                            "guanyu_threaded; see docs/cluster.md)")
    sweep.add_argument("--skip-invalid", action="store_true",
                       help="drop inadmissible grid cells instead of failing")
    sweep.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                       help="serve live telemetry over HTTP on 127.0.0.1 "
                            "(/metrics Prometheus text, /status campaign "
                            "progress, /healthz); 0 picks an ephemeral "
                            "port; watch it with 'repro monitor'")
    sweep.add_argument("--submit", default=None, metavar="URL",
                       help="submit the campaign to a 'repro serve' "
                            "scheduler daemon at URL (e.g. "
                            "http://127.0.0.1:8642) and poll it to "
                            "completion instead of executing locally")
    sweep.add_argument("--poll-interval", type=float, default=0.5,
                       metavar="SECONDS",
                       help="--submit progress poll interval (default: 0.5)")
    sweep.add_argument("--metrics-snapshot", default=None, metavar="FILE",
                       help="write the final telemetry snapshot JSON here "
                            "(also on interrupt); implies nothing unless "
                            "--metrics-port enabled telemetry")
    sweep.set_defaults(func=cmd_sweep)

    cluster = subparsers.add_parser(
        "cluster",
        help="run one scenario on the process cluster runtime: every "
             "server/worker a separate OS process over real sockets, "
             "under a supervising daemon (docs/cluster.md)")
    cluster.add_argument("--name", default="cluster", help="scenario name")
    cluster.add_argument("--gar", default=None, metavar="RULE",
                         help="gradient aggregation rule "
                              "(default: the scale's rule)")
    cluster.add_argument("--transport", choices=("auto", "unix", "tcp"),
                         default="auto",
                         help="socket family (auto prefers Unix-domain "
                              "sockets, falling back to TCP loopback)")
    cluster.add_argument("--faults", default=None, metavar="FILE",
                         help="fault-schedule JSON (crash events SIGKILL "
                              "the real node process; recover events "
                              "respawn it from the last server snapshot)")
    cluster.add_argument("--store", default=None,
                         help="result-store directory to persist the "
                              "history under its content address")
    cluster.add_argument("--metrics-port", type=int, default=None,
                         metavar="PORT",
                         help="serve live telemetry over HTTP on 127.0.0.1 "
                              "(node liveness/incarnation gauges, probe "
                              "RTTs, frame/byte counters); 0 picks an "
                              "ephemeral port")
    # dest avoids the root parser's global `--json PATH`; as a subcommand
    # flag this is a boolean mode switch, not an output path.
    cluster.add_argument("--json", dest="json_report", action="store_true",
                         help="print the supervisor report (per-incarnation "
                              "pids, exit codes, probe timeouts) as one "
                              "JSON document instead of the lifecycle "
                              "table")
    cluster.set_defaults(func=cmd_cluster)

    resilience = subparsers.add_parser(
        "resilience", help="crash-vs-quorum and partition-heal fault studies")
    resilience.add_argument("--mode", choices=("crash", "partition"),
                            default="crash")
    resilience.add_argument("--trainer",
                            choices=("guanyu", "guanyu_threaded"),
                            default="guanyu")
    resilience.add_argument("--crashes", type=int, nargs="+",
                            default=[0, 1, 2, 3],
                            help="server crash counts to sweep (crash mode)")
    resilience.add_argument("--quorums", type=int, nargs="+", default=None,
                            help="model quorum sizes q (default: full range)")
    resilience.add_argument("--crash-step", type=int, default=None,
                            help="step at which servers crash")
    resilience.add_argument("--recover-step", type=int, default=None,
                            help="step at which crashed servers recover")
    resilience.add_argument("--partition-step", type=int, default=None,
                            help="step at which the partition opens")
    resilience.add_argument("--heal-steps", type=int, nargs="+", default=None,
                            help="heal steps to sweep (partition mode)")
    resilience.add_argument("--store", default=None,
                            help="result-store directory (caching/resume)")
    resilience.add_argument("--processes", type=int, default=None,
                            help="pool size (default: serial)")
    resilience.set_defaults(func=cmd_resilience)

    breakdown = subparsers.add_parser(
        "breakdown",
        help="bisect the largest attacker count each GAR survives under "
             "each adversary (empirical breakdown points)")
    breakdown.add_argument("--gars", nargs="+", metavar="RULE",
                           default=["mean", "median", "multi_krum"],
                           help="gradient aggregation rules to probe")
    breakdown.add_argument("--adversaries", nargs="+", metavar="ADVERSARY",
                           default=["omniscient_descent", "collusion",
                                    "reversed_gradient"],
                           help="adversaries (or wrapped legacy attacks)")
    breakdown.add_argument("--loss-factor", type=float, default=1.5,
                           help="survival band: loss <= factor * baseline "
                                "+ slack")
    breakdown.add_argument("--loss-slack", type=float, default=0.25,
                           help="additive slack of the survival band")
    breakdown.add_argument("--store", default=None,
                           help="result-store directory (caching/resume)")
    breakdown.set_defaults(func=cmd_breakdown)

    hetero = subparsers.add_parser(
        "hetero",
        help="accuracy-vs-skew × GAR × adversary heterogeneity study "
             "(non-i.i.d. partitions)")
    hetero.add_argument("--skews", nargs="+", metavar="SKEW",
                        default=["iid", "dirichlet=10", "dirichlet=1",
                                 "dirichlet=0.1"],
                        help="heterogeneity levels (iid, dirichlet=ALPHA, "
                             "shards=K, imbalance=GAMMA, drift=SIGMA)")
    hetero.add_argument("--gars", nargs="+", metavar="RULE",
                        default=["mean", "median", "multi_krum"],
                        help="gradient aggregation rules to compare")
    hetero.add_argument("--adversaries", nargs="+", metavar="ADVERSARY",
                        default=["none", "collusion"],
                        help="adversaries per rule ('none' = honest "
                             "baseline; legacy attack names wrap)")
    hetero.add_argument("--seeds", type=int, nargs="+", default=None,
                        help="seed replicas per cell (table reports the "
                             "mean; default: the scale's single seed)")
    hetero.add_argument("--store", default=None,
                        help="result-store directory (caching/resume)")
    hetero.add_argument("--processes", type=int, default=None,
                        help="pool size (default: serial)")
    hetero.add_argument("--batch-seeds", action="store_true",
                        help="run each cell's seed replicas as one "
                             "vectorised multi-replica execution "
                             "(needs --seeds with >= 2 values)")
    hetero.set_defaults(func=cmd_hetero)

    trace = subparsers.add_parser(
        "trace", help="summarise a trace JSONL file (--trace output)")
    trace.add_argument("file", help="trace JSONL file to summarise")
    trace.set_defaults(func=cmd_trace)

    report = subparsers.add_parser(
        "report",
        help="render a trace's phase-breakdown table and span timeline")
    report.add_argument("file", help="trace JSONL file to render")
    report.add_argument("--width", type=int, default=64,
                        help="timeline width in characters (default: 64)")
    report.add_argument("--max-rows", type=int, default=30,
                        help="max span names in the timeline (default: 30)")
    report.add_argument("--node", default=None,
                        help="restrict the timeline to one node id")
    report.set_defaults(func=cmd_report)

    monitor = subparsers.add_parser(
        "monitor",
        help="poll a --metrics-port endpoint and render a live ASCII "
             "dashboard (throughput, phases, node health, GAR gauges)")
    monitor.add_argument("--port", type=int, default=None,
                         help="metrics port on 127.0.0.1 (the value given "
                              "to sweep/cluster --metrics-port)")
    monitor.add_argument("--url", default=None,
                         help="full endpoint base URL (overrides --port)")
    monitor.add_argument("--interval", type=float, default=2.0,
                         help="seconds between polls (default: 2)")
    monitor.add_argument("--iterations", type=int, default=None, metavar="N",
                         help="stop after N dashboard frames "
                              "(default: run until Ctrl-C)")
    monitor.add_argument("--timeout", type=float, default=5.0,
                         help="HTTP timeout per poll (default: 5)")
    monitor.add_argument("--width", type=int, default=72,
                         help="dashboard width in characters (default: 72)")
    monitor.add_argument("--no-clear", action="store_true",
                         help="append frames instead of clearing the "
                              "screen (for logs/CI)")
    monitor.set_defaults(func=cmd_monitor)

    serve = subparsers.add_parser(
        "serve",
        help="campaign scheduler daemon: accept campaign JSON over local "
             "HTTP (POST /campaigns), dedupe against the store index and "
             "execute through the campaign engine")
    serve.add_argument("--store", required=True,
                       help="result-store directory the daemon serves "
                            "and persists into")
    serve.add_argument("--port", type=int, default=0, metavar="PORT",
                       help="HTTP port on 127.0.0.1 (default: 0 = "
                            "ephemeral, printed at startup)")
    serve.add_argument("--processes", type=int, default=None,
                       help="pool size per job (default: serial)")
    serve.add_argument("--lanes", type=int, default=None,
                       help="shard batched seed groups across this many "
                            "lanes (as sweep --lanes)")
    serve.add_argument("--no-batch-seeds", action="store_true",
                       help="disable vectorised seed batching for "
                            "submitted jobs")
    serve.set_defaults(func=cmd_serve)

    store_parser = subparsers.add_parser(
        "store", help="result-store hygiene: fsck (verify) and gc (collect)")
    store_sub = store_parser.add_subparsers(dest="store_command",
                                            required=True)
    fsck = store_sub.add_parser(
        "fsck",
        help="verify entries against their content addresses and the "
             "sidecar index against the entries (read-only; exit 1 on "
             "problems)")
    fsck.add_argument("root", help="result-store directory to check")
    fsck.set_defaults(func=cmd_store_fsck)
    gc = store_sub.add_parser(
        "gc",
        help="drop failed/corrupt entries, orphan index rows and stale "
             "temp files, then compact the sidecar index")
    gc.add_argument("root", help="result-store directory to collect")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be removed without changing "
                         "anything")
    gc.set_defaults(func=cmd_store_gc)
    return parser


def main(argv: Optional[list] = None) -> int:
    """Entry point: parse arguments and dispatch to the chosen subcommand.

    Invalid arguments exit with status 2 (argparse's convention, applied
    consistently to the semantic validation errors — ``ValueError`` /
    ``KeyError`` — the harnesses raise for inadmissible parameters).
    Genuine runtime failures (I/O errors, training errors) propagate with
    their traceback and exit 1; per-scenario sweep failures are reported
    by ``cmd_sweep`` itself.

    ``--trace FILE`` installs a :class:`repro.obs.Tracer` (with GAR
    decision records enabled) around the dispatched subcommand and writes
    the collected records as JSONL when it finishes — including when it
    fails, so traces of broken runs survive for post-mortems.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level, json_mode=args.log_json)
    tracer = Tracer(record_decisions=True) if args.trace else None
    try:
        if args.kernel_backend is not None:
            # Process-wide: pool workers inherit it via the spec payloads'
            # kernels field or (forked pools) the registry override.
            set_backend(args.kernel_backend)
        if tracer is None:
            return args.func(args)
        with use_tracer(tracer):
            return args.func(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            try:
                written = tracer.write_jsonl(args.trace)
            except OSError as exc:
                print(f"warning: could not write trace to {args.trace}: "
                      f"{exc}", file=sys.stderr)
            else:
                print(f"(wrote {written} trace record(s) to {args.trace})",
                      file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
