"""Command-line interface to the experiment harnesses.

Usage (after ``pip install -e .``)::

    python -m repro.cli table1
    python -m repro.cli figure3 --batch-size 128 --x-axis time
    python -m repro.cli figure4
    python -m repro.cli table2
    python -m repro.cli overhead
    python -m repro.cli attacks
    python -m repro.cli scaling --workers 6 9 12 18
    python -m repro.cli quorums

Every subcommand prints the regenerated table/figure as text (and an ASCII
chart where the paper has a figure); ``--json PATH`` additionally writes the
raw histories/rows for downstream plotting.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional

from repro.experiments import (
    ExperimentScale,
    overhead_report,
    run_attack_sweep,
    run_figure3,
    run_figure4,
    run_gar_ablation,
    run_quorum_ablation,
    run_scaling_study,
    run_table2,
    table1_report,
)
from repro.metrics.tracker import TrainingHistory
from repro.plotting import format_table, histories_summary_table, render_histories


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    scale = ExperimentScale.small() if args.preset == "small" \
        else ExperimentScale.paper_like()
    if args.steps is not None:
        scale.num_steps = args.steps
    if args.workers_count is not None:
        scale.num_workers = args.workers_count
    if args.servers_count is not None:
        scale.num_servers = args.servers_count
    if args.seed is not None:
        scale.seed = args.seed
    # Keep the declared Byzantine counts admissible (n >= 3f + 3) after any
    # cluster-size overrides.
    scale.declared_byzantine_workers = min(scale.declared_byzantine_workers,
                                           (scale.num_workers - 3) // 3)
    scale.declared_byzantine_servers = min(scale.declared_byzantine_servers,
                                           (scale.num_servers - 3) // 3)
    scale.dataset_size = max(scale.dataset_size, 2400)
    return scale


def _dump_json(path: Optional[str], payload) -> None:
    if not path:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
    print(f"\n(wrote raw results to {path})")


def _histories_payload(histories: Dict[str, TrainingHistory]) -> Dict:
    return {name: history.to_dict() for name, history in histories.items()}


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def cmd_table1(args: argparse.Namespace) -> int:
    report = table1_report()
    print("Table 1 — CNN model parameters")
    print(format_table(report["layers"]))
    print(f"\ntotal parameters: {report['total_parameters']:,} "
          f"(paper: ~{report['paper_total_parameters']:,})")
    _dump_json(args.json, report)
    return 0


def cmd_figure3(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    result = run_figure3(scale=scale, batch_size=args.batch_size)
    print(f"Figure 3 — batch size {result.batch_size}, non-Byzantine environment\n")
    print(histories_summary_table(result.histories,
                                  target_accuracy=result.reference_accuracy()))
    print("\n" + render_histories(result.histories, x_axis=args.x_axis))
    _dump_json(args.json, _histories_payload(result.histories))
    return 0


def cmd_figure4(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    result = run_figure4(scale=scale)
    print("Figure 4 — impact of Byzantine players on convergence\n")
    print(histories_summary_table(result.histories))
    print("\n" + render_histories(result.histories, x_axis="steps"))
    _dump_json(args.json, _histories_payload(result.histories))
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    samples = run_table2(scale=scale, interval=args.interval)
    rows = [{"step": s.step, "cos_phi": s.cos_phi, "max_diff1": s.max_diff_1,
             "max_diff2": s.max_diff_2} for s in samples]
    print("Table 2 — alignment of parameter-difference vectors")
    print(format_table(rows, float_format="{:.5f}"))
    _dump_json(args.json, rows)
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    report = overhead_report(scale=scale)
    print("Section 5.3 — overhead breakdown "
          "(paper: ~65 % runtime, up to ~33 % Byzantine)\n")
    print(format_table([report.as_rows()]))
    _dump_json(args.json, report.as_rows())
    return 0


def cmd_attacks(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    histories = run_attack_sweep(scale=scale)
    print("Attack sweep — GuanYu under every registered attack\n")
    print(histories_summary_table(histories))
    _dump_json(args.json, _histories_payload(histories))
    return 0


def cmd_gars(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    histories = run_gar_ablation(scale=scale)
    print("GAR ablation — server-side aggregation rule under attack\n")
    print(histories_summary_table(histories))
    _dump_json(args.json, _histories_payload(histories))
    return 0


def cmd_quorums(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    histories = run_quorum_ablation(scale=scale)
    renamed = {f"q={quorum}": history for quorum, history in histories.items()}
    print("Quorum ablation — gradient quorum vs. throughput\n")
    print(histories_summary_table(renamed))
    _dump_json(args.json, _histories_payload(renamed))
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    rows = run_scaling_study(scale=scale, worker_counts=tuple(args.workers))
    print("Scaling study — workers vs. throughput\n")
    print(format_table(rows))
    _dump_json(args.json, rows)
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the GuanYu paper.")
    parser.add_argument("--json", help="write raw results to this JSON file")
    parser.add_argument("--preset", choices=("small", "paper"), default="small",
                        help="workload preset (default: small)")
    parser.add_argument("--steps", type=int, default=None,
                        help="override the number of model updates")
    parser.add_argument("--workers-count", type=int, default=None,
                        help="override the number of workers")
    parser.add_argument("--servers-count", type=int, default=None,
                        help="override the number of parameter servers")
    parser.add_argument("--seed", type=int, default=None, help="override the seed")

    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("table1", help="Table 1: CNN architecture") \
        .set_defaults(func=cmd_table1)

    figure3 = subparsers.add_parser("figure3", help="Figure 3: overhead comparison")
    figure3.add_argument("--batch-size", type=int, default=128)
    figure3.add_argument("--x-axis", choices=("steps", "time"), default="steps")
    figure3.set_defaults(func=cmd_figure3)

    subparsers.add_parser("figure4", help="Figure 4: Byzantine impact") \
        .set_defaults(func=cmd_figure4)

    table2 = subparsers.add_parser("table2", help="Table 2: parameter alignment")
    table2.add_argument("--interval", type=int, default=10)
    table2.set_defaults(func=cmd_table2)

    subparsers.add_parser("overhead", help="Section 5.3 overhead breakdown") \
        .set_defaults(func=cmd_overhead)
    subparsers.add_parser("attacks", help="attack sweep ablation") \
        .set_defaults(func=cmd_attacks)
    subparsers.add_parser("gars", help="aggregation-rule ablation") \
        .set_defaults(func=cmd_gars)
    subparsers.add_parser("quorums", help="quorum-size ablation") \
        .set_defaults(func=cmd_quorums)

    scaling = subparsers.add_parser("scaling", help="cluster scaling study")
    scaling.add_argument("--workers", type=int, nargs="+", default=[6, 9, 12, 18])
    scaling.set_defaults(func=cmd_scaling)
    return parser


def main(argv: Optional[list] = None) -> int:
    """Entry point: parse arguments and dispatch to the chosen subcommand."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
