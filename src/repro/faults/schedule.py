"""Declarative fault schedules: timed chaos for both runtimes.

A :class:`FaultSchedule` is a JSON-serialisable list of :class:`FaultEvent`
entries plus whole-run base drop/duplicate rates.  Events are gated on the
*protocol step* — the one clock both runtimes share (the simulated trainer
advances it explicitly, the threaded runtime tags every message with it) —
so a single schedule reproduces the same fault pattern under simulated and
real time.

Event kinds
-----------
``crash`` / ``recover``
    A named node stops participating at ``step`` (no sends, no receives, no
    local computation) and resumes at the matching ``recover`` step with
    whatever stale state it held.  A crash with no ``recover`` lasts forever.
``partition`` / ``heal``
    ``groups`` lists two or more disjoint node groups; messages between
    *different* groups are blocked while the partition is active.  Nodes in
    no group communicate freely.  ``heal`` closes the partition with the
    same ``label`` (or every open partition when the label is empty).
``slowdown`` / ``delay_spike`` / ``drop_rate``, closed by ``clear``
    Per-link overrides applied to messages matching ``nodes`` (any link
    touching one of the nodes) or explicit ``links`` pairs; an empty matcher
    hits every link.  ``slowdown`` multiplies the sampled delay by
    ``factor`` (stragglers), ``delay_spike`` adds ``extra_delay`` seconds,
    ``drop_rate`` drops matching messages with probability ``rate``.
    ``clear`` removes the override with the same ``label`` (or all
    labelled overrides when empty).
``activate_attack`` / ``deactivate_attack``
    Step-gates the Byzantine attack installed on the named nodes: outside
    its active window the node behaves honestly.  A node whose *first*
    gating event is ``activate_attack`` starts honest; one whose first is
    ``deactivate_attack`` starts attacking.

The schedule is *declarative* data: it never touches a node or a socket.
The :class:`~repro.faults.controller.FaultController` interprets it.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

EVENT_KINDS = (
    "crash",
    "recover",
    "partition",
    "heal",
    "slowdown",
    "delay_spike",
    "drop_rate",
    "clear",
    "activate_attack",
    "deactivate_attack",
)

#: kinds that target ``nodes`` (and require at least one)
_NODE_KINDS = ("crash", "recover", "activate_attack", "deactivate_attack")
#: kinds that open a labelled per-link override window
LINK_OVERRIDE_KINDS = ("slowdown", "delay_spike", "drop_rate")


@dataclass
class FaultEvent:
    """One timed fault, applied at the *start* of ``step``."""

    step: int
    kind: str
    #: targets for crash/recover/attack gating; matcher for link overrides
    nodes: List[str] = field(default_factory=list)
    #: partition groups (two or more disjoint lists of node ids)
    groups: List[List[str]] = field(default_factory=list)
    #: explicit ``[a, b]`` endpoint pairs for link overrides (undirected:
    #: a pair matches messages flowing either way between its endpoints)
    links: List[List[str]] = field(default_factory=list)
    #: delay multiplier for ``slowdown``
    factor: float = 1.0
    #: extra seconds for ``delay_spike``
    extra_delay: float = 0.0
    #: drop probability for ``drop_rate``
    rate: float = 0.0
    #: names a partition/override so ``heal``/``clear`` can close it
    label: str = ""

    def __post_init__(self) -> None:
        self.nodes = [str(node) for node in self.nodes]
        self.groups = [[str(node) for node in group] for group in self.groups]
        self.links = [[str(end) for end in link] for link in self.links]

    # ------------------------------------------------------------------ #
    def validate(self) -> "FaultEvent":
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown fault kind '{self.kind}'; "
                             f"available: {list(EVENT_KINDS)}")
        if self.step < 0:
            raise ValueError(f"fault step must be non-negative, got {self.step}")
        if self.kind in _NODE_KINDS and not self.nodes:
            raise ValueError(f"'{self.kind}' events must name at least one node")
        if self.kind == "partition":
            if len(self.groups) < 2:
                raise ValueError("'partition' events need at least two groups")
            seen: set = set()
            for group in self.groups:
                if not group:
                    raise ValueError("partition groups must be non-empty")
                overlap = seen.intersection(group)
                if overlap:
                    raise ValueError(f"partition groups must be disjoint; "
                                     f"{sorted(overlap)} appear twice")
                seen.update(group)
        if self.kind == "slowdown" and self.factor <= 0:
            raise ValueError("'slowdown' factor must be positive")
        if self.kind == "delay_spike" and self.extra_delay < 0:
            raise ValueError("'delay_spike' extra_delay must be non-negative")
        if self.kind == "drop_rate" and not 0.0 <= self.rate < 1.0:
            raise ValueError("'drop_rate' rate must be in [0, 1)")
        for link in self.links:
            if len(link) != 2:
                raise ValueError(f"links must be [sender, recipient] pairs, "
                                 f"got {link}")
        return self

    def matches_link(self, sender: str, recipient: str) -> bool:
        """Whether a link-override event applies to the given link."""
        if not self.nodes and not self.links:
            return True  # empty matcher: every link
        if sender in self.nodes or recipient in self.nodes:
            return True
        return any(sorted(link) == sorted((sender, recipient))
                   for link in self.links)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Compact dict: defaulted fields are omitted (stable hashing)."""
        payload: Dict[str, Any] = {"step": self.step, "kind": self.kind}
        if self.nodes:
            payload["nodes"] = list(self.nodes)
        if self.groups:
            payload["groups"] = [list(group) for group in self.groups]
        if self.links:
            payload["links"] = [list(link) for link in self.links]
        if self.factor != 1.0:
            payload["factor"] = self.factor
        if self.extra_delay != 0.0:
            payload["extra_delay"] = self.extra_delay
        if self.rate != 0.0:
            payload["rate"] = self.rate
        if self.label:
            payload["label"] = self.label
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultEvent":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown fault event fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass
class FaultSchedule:
    """A whole run's fault plan: timed events plus base loss rates.

    ``drop_rate`` / ``duplicate_rate`` are the controller-backed successors
    of the old ``NetworkSimulator(drop_probability=..., duplicate_probability=...)``
    fields: a whole-run, every-link probability of silent loss/duplication.
    """

    events: List[FaultEvent] = field(default_factory=list)
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        self.events = [event if isinstance(event, FaultEvent)
                       else FaultEvent.from_dict(event)
                       for event in self.events]

    def __bool__(self) -> bool:
        """Truthy only when the schedule actually does something."""
        return bool(self.events) or self.drop_rate > 0 or self.duplicate_rate > 0

    # ------------------------------------------------------------------ #
    def validate(self, known_nodes: Optional[Sequence[str]] = None
                 ) -> "FaultSchedule":
        """Check internal consistency (and node ids, when given)."""
        for probability, name in ((self.drop_rate, "drop_rate"),
                                  (self.duplicate_rate, "duplicate_rate")):
            if not 0.0 <= probability < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {probability}")
        open_crashes: Dict[str, int] = {}
        for event in self.sorted_events():
            event.validate()
            if event.kind == "crash":
                already = open_crashes.keys() & set(event.nodes)
                if already:
                    raise ValueError(f"nodes {sorted(already)} crash twice "
                                     f"without a recover in between")
                for node in event.nodes:
                    open_crashes[node] = event.step
            elif event.kind == "recover":
                missing = set(event.nodes) - open_crashes.keys()
                if missing:
                    raise ValueError(f"recover for nodes {sorted(missing)} "
                                     f"that never crashed")
                empty = sorted(node for node in event.nodes
                               if open_crashes[node] >= event.step)
                if empty:
                    raise ValueError(
                        f"nodes {empty} recover at the same step they crash "
                        f"(step {event.step}); the crash window would be "
                        f"empty")
                for node in event.nodes:
                    del open_crashes[node]
        if known_nodes is not None:
            known = set(known_nodes)
            for event in self.events:
                referenced = set(event.nodes)
                referenced.update(node for group in event.groups for node in group)
                referenced.update(end for link in event.links for end in link)
                unknown = referenced - known
                if unknown:
                    raise ValueError(
                        f"fault event '{event.kind}' at step {event.step} "
                        f"references unknown nodes {sorted(unknown)}")
        return self

    def sorted_events(self) -> List[FaultEvent]:
        """Events in application order (step, then schedule order)."""
        indexed = sorted(enumerate(self.events),
                         key=lambda item: (item[1].step, item[0]))
        return [event for _, event in indexed]

    def crashed_nodes(self) -> List[str]:
        """Every node the schedule crashes at some point (sorted)."""
        return sorted({node for event in self.events
                       if event.kind == "crash" for node in event.nodes})

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "events": [event.to_dict() for event in self.events],
        }
        if self.drop_rate:
            payload["drop_rate"] = self.drop_rate
        if self.duplicate_rate:
            payload["duplicate_rate"] = self.duplicate_rate
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSchedule":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown fault schedule fields: {sorted(unknown)}")
        return cls(
            events=[FaultEvent.from_dict(entry)
                    for entry in payload.get("events", [])],
            drop_rate=payload.get("drop_rate", 0.0),
            duplicate_rate=payload.get("duplicate_rate", 0.0),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------ #
    # Convenience constructors (the common scenarios, one-liners)
    # ------------------------------------------------------------------ #
    @classmethod
    def crash_window(cls, nodes: Sequence[str], crash_step: int,
                     recover_step: Optional[int] = None) -> "FaultSchedule":
        """Crash ``nodes`` at ``crash_step``; recover them at ``recover_step``."""
        events = [FaultEvent(step=crash_step, kind="crash", nodes=list(nodes))]
        if recover_step is not None:
            if recover_step <= crash_step:
                raise ValueError("recover_step must come after crash_step")
            events.append(FaultEvent(step=recover_step, kind="recover",
                                     nodes=list(nodes)))
        return cls(events=events)

    @classmethod
    def partition_window(cls, groups: Sequence[Sequence[str]],
                         partition_step: int,
                         heal_step: Optional[int] = None,
                         label: str = "p0") -> "FaultSchedule":
        """Partition ``groups`` at ``partition_step``; heal at ``heal_step``."""
        events = [FaultEvent(step=partition_step, kind="partition",
                             groups=[list(group) for group in groups],
                             label=label)]
        if heal_step is not None:
            if heal_step <= partition_step:
                raise ValueError("heal_step must come after partition_step")
            events.append(FaultEvent(step=heal_step, kind="heal", label=label))
        return cls(events=events)
