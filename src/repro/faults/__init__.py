"""Declarative chaos injection for both runtimes.

The paper claims liveness and safety under full asynchrony with up to ``f``
Byzantine servers and ``f̄`` Byzantine workers; this package supplies the
*time-varying* half of that stress test.  A :class:`FaultSchedule` is a
JSON-serialisable list of timed :class:`FaultEvent` entries — node crashes
and recoveries, network partitions that heal, per-link delay spikes / drop
rates / straggler slowdowns, and step-gated activation of the registered
Byzantine attacks — interpreted by a :class:`FaultController` whose small
hook API (``on_send``, ``on_step``, ``node_alive``) is consulted by the
simulated :class:`~repro.network.simulator.NetworkSimulator` and the
real-time :class:`~repro.runtime.threads.ThreadedTransport` alike.

Schedules ride inside :class:`~repro.campaign.spec.ScenarioSpec` (field
``faults``), hash into the content address and sweep like any other axis;
``repro resilience`` runs the canned crash-vs-quorum and partition-heal
studies built on top.
"""

from repro.faults.schedule import (
    EVENT_KINDS,
    FaultEvent,
    FaultSchedule,
)
from repro.faults.controller import (
    FaultController,
    GatedServerAttack,
    GatedWorkerAttack,
    SendDecision,
)

__all__ = [
    "EVENT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "FaultController",
    "SendDecision",
    "GatedWorkerAttack",
    "GatedServerAttack",
]
