"""Fault controller: interprets a :class:`FaultSchedule` for a runtime.

The controller is the single decision point both runtimes consult:

* :meth:`on_send` — called once per message; decides whether the message is
  delivered (crash / partition / probabilistic drop), how much extra delay
  it suffers (slowdown factor, delay spikes) and whether it is duplicated;
* :meth:`node_alive` — whether a node participates at a given step (the
  trainers skip the local computation of crashed nodes);
* :meth:`on_step` — bookkeeping hook advancing the fault log; returns the
  events that fire at that step so runtimes can trace them.

Design notes
------------
The controller is **stateless over steps**: every query is a pure function
of ``(schedule, step)``, answered from interval tables precomputed at
construction.  This makes it safe to share between the threads of the
threaded runtime, where different nodes sit at *different* steps at the
same wall-clock instant — each message carries its own step and is judged
against the schedule at that step.

Probabilistic decisions (drop / duplicate rates) are sampled by hashing
``(seed, sender, recipient, kind, step)`` rather than by drawing from a
shared generator, so the outcome for any given message is independent of
thread interleaving: the same schedule and seed give the same drops under
both runtimes, every run.
"""

from __future__ import annotations

import hashlib
import math
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.byzantine.base import (
    AttackContext,
    ServerAttack,
    WorkerAttack,
)
from repro.faults.schedule import (
    LINK_OVERRIDE_KINDS,
    FaultEvent,
    FaultSchedule,
)

_FOREVER = math.inf


@dataclass
class SendDecision:
    """Outcome of :meth:`FaultController.on_send` for one message."""

    deliver: bool = True
    #: ``None`` when delivered; ``"crash" | "partition" | "drop"`` otherwise
    blocked_by: Optional[str] = None
    delay_factor: float = 1.0
    extra_delay: float = 0.0
    duplicate: bool = False

    def apply_to_delay(self, delay: float) -> float:
        """The faulted delay for a message whose base delay is ``delay``."""
        return max(delay, 0.0) * self.delay_factor + self.extra_delay


@dataclass
class _Window:
    """A half-open step interval ``[start, end)`` carrying one effect."""

    start: int
    end: float  # int or inf
    event: FaultEvent

    def active(self, step: int) -> bool:
        return self.start <= step < self.end


class FaultController:
    """Interpret a :class:`FaultSchedule`; see the module docstring.

    Parameters
    ----------
    schedule:
        The declarative fault plan.  ``None`` is accepted and yields a
        controller that never interferes (every hook is a fast no-op).
    seed:
        Seed of the hash-based probabilistic sampling (drops/duplicates).
    """

    def __init__(self, schedule: Optional[FaultSchedule] = None,
                 seed: int = 0) -> None:
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.schedule.validate()
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._fired_steps: set = set()
        self.stats: Dict[str, int] = {
            "blocked_crash": 0, "blocked_partition": 0,
            "dropped": 0, "duplicated": 0, "delayed": 0,
        }
        self._participation_cache: Dict[tuple, Tuple[List[str], List[str]]] = {}
        self._crash_windows: Dict[str, List[_Window]] = {}
        self._attack_toggles: Dict[str, List[Tuple[int, bool]]] = {}
        self._partition_windows: List[_Window] = []
        self._override_windows: List[_Window] = []
        self._events_by_step: Dict[int, List[FaultEvent]] = {}
        self._compile()

    # ------------------------------------------------------------------ #
    # Schedule compilation: events -> interval tables
    # ------------------------------------------------------------------ #
    def _compile(self) -> None:
        open_partitions: Dict[str, _Window] = {}
        open_overrides: Dict[str, _Window] = {}
        anonymous_overrides: List[_Window] = []
        for event in self.schedule.sorted_events():
            self._events_by_step.setdefault(event.step, []).append(event)
            if event.kind == "crash":
                for node in event.nodes:
                    window = _Window(event.step, _FOREVER, event)
                    self._crash_windows.setdefault(node, []).append(window)
            elif event.kind == "recover":
                for node in event.nodes:
                    windows = self._crash_windows.get(node, [])
                    if windows and windows[-1].end == _FOREVER:
                        windows[-1].end = event.step
            elif event.kind == "partition":
                window = _Window(event.step, _FOREVER, event)
                self._partition_windows.append(window)
                open_partitions[event.label] = window
            elif event.kind == "heal":
                if event.label:
                    window = open_partitions.pop(event.label, None)
                    if window is not None:
                        window.end = event.step
                else:
                    for window in open_partitions.values():
                        window.end = event.step
                    open_partitions.clear()
            elif event.kind in LINK_OVERRIDE_KINDS:
                window = _Window(event.step, _FOREVER, event)
                self._override_windows.append(window)
                if event.label:
                    open_overrides[event.label] = window
                else:
                    anonymous_overrides.append(window)
            elif event.kind == "clear":
                if event.label:
                    window = open_overrides.pop(event.label, None)
                    if window is not None:
                        window.end = event.step
                else:
                    for window in open_overrides.values():
                        window.end = event.step
                    open_overrides.clear()
                    for window in anonymous_overrides:
                        if window.end == _FOREVER:
                            window.end = event.step
                    anonymous_overrides.clear()
            elif event.kind in ("activate_attack", "deactivate_attack"):
                active = event.kind == "activate_attack"
                for node in event.nodes:
                    self._attack_toggles.setdefault(node, []).append(
                        (event.step, active))

    # ------------------------------------------------------------------ #
    # Hook API
    # ------------------------------------------------------------------ #
    def node_alive(self, node_id: str, step: int) -> bool:
        """Whether ``node_id`` participates in the protocol at ``step``."""
        return not any(window.active(step)
                       for window in self._crash_windows.get(node_id, ()))

    def alive_mask(self, node_ids: Sequence[str], step: int) -> np.ndarray:
        """Boolean :meth:`node_alive` mask over ``node_ids`` at ``step``.

        Crash windows are a pure function of ``(schedule, step)`` — never of
        the sampling seed — so the batched multi-replica runtime
        (:meth:`repro.batch.BatchedGuanYuTrainer.step`) computes this mask
        on one replica's controller and shares it across all replicas.
        """
        return np.array([self.node_alive(node_id, step)
                         for node_id in node_ids], dtype=bool)

    def attack_active(self, node_id: str, step: int) -> bool:
        """Whether the attack installed on ``node_id`` is live at ``step``.

        Nodes with no gating events are always active; gated nodes start
        honest when their first gating event is ``activate_attack``.
        """
        toggles = self._attack_toggles.get(node_id)
        if not toggles:
            return True
        state = not toggles[0][1]  # before the first toggle: its opposite
        for toggle_step, active in toggles:
            if toggle_step <= step:
                state = active
        return state

    def link_blocked(self, sender: str, recipient: str, step: int) -> bool:
        """Whether an active partition separates ``sender`` and ``recipient``."""
        for window in self._partition_windows:
            if not window.active(step):
                continue
            sender_group = recipient_group = None
            for index, group in enumerate(window.event.groups):
                if sender in group:
                    sender_group = index
                if recipient in group:
                    recipient_group = index
            if (sender_group is not None and recipient_group is not None
                    and sender_group != recipient_group):
                return True
        return False

    def link_effects(self, sender: str, recipient: str,
                     step: int) -> Tuple[float, float, float]:
        """``(delay_factor, extra_delay, drop_rate)`` for one link at a step.

        Factors multiply, extra delays add, drop rates combine as
        independent losses on top of the schedule's base ``drop_rate``.
        """
        factor, extra = 1.0, 0.0
        keep = 1.0 - self.schedule.drop_rate
        for window in self._override_windows:
            if not window.active(step):
                continue
            event = window.event
            if not event.matches_link(sender, recipient):
                continue
            if event.kind == "slowdown":
                factor *= event.factor
            elif event.kind == "delay_spike":
                extra += event.extra_delay
            elif event.kind == "drop_rate":
                keep *= 1.0 - event.rate
        return factor, extra, 1.0 - keep

    def on_step(self, step: int) -> List[FaultEvent]:
        """Advance the fault log to ``step``; returns the events firing there.

        Purely observational — queries never depend on it having been
        called — but it gives runtimes a single place to trace fault
        activity, and it is idempotent per step.
        """
        with self._lock:
            if step in self._fired_steps:
                return []
            self._fired_steps.add(step)
        return list(self._events_by_step.get(step, ()))

    def on_send(self, sender: str, recipient: str, kind: str,
                step: int) -> SendDecision:
        """Judge one message; see :class:`SendDecision`."""
        if not self.node_alive(sender, step) \
                or not self.node_alive(recipient, step):
            self._count("blocked_crash")
            return SendDecision(deliver=False, blocked_by="crash")
        if self.link_blocked(sender, recipient, step):
            self._count("blocked_partition")
            return SendDecision(deliver=False, blocked_by="partition")
        factor, extra, drop_rate = self.link_effects(sender, recipient, step)
        if drop_rate > 0 and self._uniform("drop", sender, recipient,
                                           kind, step) < drop_rate:
            self._count("dropped")
            return SendDecision(deliver=False, blocked_by="drop")
        duplicate = (self.schedule.duplicate_rate > 0
                     and self._uniform("dup", sender, recipient, kind, step)
                     < self.schedule.duplicate_rate)
        if duplicate:
            self._count("duplicated")
        if factor != 1.0 or extra != 0.0:
            self._count("delayed")
        return SendDecision(deliver=True, delay_factor=factor,
                            extra_delay=extra, duplicate=duplicate)

    # ------------------------------------------------------------------ #
    def reachable_senders(self, recipient: str, senders: Sequence[str],
                          step: int) -> List[str]:
        """Senders that are alive and not partitioned away from ``recipient``."""
        return [sender for sender in senders
                if self.node_alive(sender, step)
                and not self.link_blocked(sender, recipient, step)]

    def participating_nodes(self, worker_ids: Sequence[str],
                            server_ids: Sequence[str], model_quorum: int,
                            gradient_quorum: int,
                            step: int) -> Tuple[List[str], List[str]]:
        """The nodes that can complete protocol step ``step`` under faults.

        A node left short of a quorum *stalls* for the step (state frozen,
        no sends) instead of waiting for messages that active faults — or
        other stalled nodes — guarantee will never arrive.  Stalling is
        transitive, so participation is the greatest fixpoint of:

        * a worker participates iff ≥ ``model_quorum`` participating
          servers can reach it (phase 1);
        * a server participates iff ≥ ``gradient_quorum`` participating
          workers can reach it (phase 2) **and** ≥ ``model_quorum``
          participating servers (itself included) can reach it (phase 3).

        Both runtimes consult this same function — it is a pure function
        of ``(schedule, step)``, so every thread computes the same sets and
        a stalled node is never waited on.  Returns
        ``(participating_workers, participating_servers)``.
        """
        key = (tuple(worker_ids), tuple(server_ids), model_quorum,
               gradient_quorum, step)
        with self._lock:
            cached = self._participation_cache.get(key)
        if cached is not None:
            return cached
        workers = [w for w in worker_ids if self.node_alive(w, step)]
        servers = [s for s in server_ids if self.node_alive(s, step)]
        while True:
            kept_workers = [
                w for w in workers
                if len(self.reachable_senders(w, servers, step))
                >= model_quorum]
            kept_servers = [
                s for s in servers
                if len(self.reachable_senders(s, kept_workers, step))
                >= gradient_quorum
                and len(self.reachable_senders(s, servers, step))
                >= model_quorum]
            if kept_workers == workers and kept_servers == servers:
                break
            workers, servers = kept_workers, kept_servers
        result = (workers, servers)
        with self._lock:
            self._participation_cache[key] = result
        return result

    def gate_attack(self, node_id: str, attack):
        """Wrap ``attack`` so it only fires while active for ``node_id``.

        Attacks without gating events are returned unchanged; ``None``
        passes through (the node is honest).
        """
        if attack is None or node_id not in self._attack_toggles:
            return attack
        if isinstance(attack, WorkerAttack):
            return GatedWorkerAttack(attack, self, node_id)
        if isinstance(attack, ServerAttack):
            return GatedServerAttack(attack, self, node_id)
        raise TypeError(f"cannot gate {type(attack).__name__}")

    # ------------------------------------------------------------------ #
    def _count(self, key: str) -> None:
        with self._lock:
            self.stats[key] += 1

    def _uniform(self, *parts) -> float:
        """Deterministic uniform sample in ``[0, 1)`` keyed by ``parts``."""
        material = "|".join([str(self.seed), *map(str, parts)])
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class GatedWorkerAttack(WorkerAttack):
    """A worker attack active only inside its scheduled window."""

    def __init__(self, inner: WorkerAttack, controller: FaultController,
                 node_id: str) -> None:
        self.inner = inner
        self.controller = controller
        self.node_id = node_id
        self.name = inner.name

    def _active(self, step: int) -> bool:
        return self.controller.attack_active(self.node_id, step)

    def corrupt_gradient(self, context: AttackContext) -> Optional[np.ndarray]:
        if not self._active(context.step):
            return context.honest_value
        return self.inner.corrupt_gradient(context)

    def poison_batch(self, features, labels, context: AttackContext):
        if not self._active(context.step):
            return features, labels
        return self.inner.poison_batch(features, labels, context)


class GatedServerAttack(ServerAttack):
    """A server attack active only inside its scheduled window."""

    def __init__(self, inner: ServerAttack, controller: FaultController,
                 node_id: str) -> None:
        self.inner = inner
        self.controller = controller
        self.node_id = node_id
        self.name = inner.name

    def corrupt_model(self, context: AttackContext) -> Optional[np.ndarray]:
        if not self._active(context.step):
            return context.honest_value
        return self.inner.corrupt_model(context)
