"""Live telemetry: metric primitives, cross-process merge, Prometheus text.

Where :mod:`repro.obs.tracer` answers "what happened" after a run, this
module answers "what is happening *right now*": thread-safe
:class:`Counter` / :class:`Gauge` / :class:`Histogram` primitives with
label sets, collected in a :class:`MetricsRegistry` that can snapshot
itself to JSON, merge snapshots shipped from other processes (the cluster
nodes forward theirs over a ``metrics`` frame), and render the standard
Prometheus text exposition format for the ``/metrics`` endpoint of
:mod:`repro.obs.httpd`.

The layer sits **on top of** the tracer, not inside it, and inherits the
same hard zero-perturbation contract (enforced by the tier-1 equivalence
suites with a live registry):

* it never draws from any random generator,
* it never reads or advances *simulated* clocks — durations come only
  from ``time.perf_counter`` readings the *call sites* take,
* it never mutates the objects handed to it.

The active registry is a module-level singleton (default: a no-op
:class:`NullRegistry`) accessed through :func:`get_registry` and
installed with :func:`set_registry` or the scoped :func:`use_registry`,
mirroring the tracer's management exactly.  Instrumented code pays one
attribute read, a truthiness check and an early return per hook when
telemetry is off.
"""

from __future__ import annotations

import bisect
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
    "parse_prometheus_text",
]

#: duration buckets (seconds) shared by every latency histogram — spanning
#: sub-millisecond kernel phases up to multi-minute scenario runs
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)

#: ``(labelname, labelvalue)`` tuples sorted by name — the hashable series key
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_labels(key: LabelKey, extra: Optional[List[Tuple[str, str]]] = None
                   ) -> str:
    pairs = list(key) + list(extra or [])
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"'
                     for name, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing per-label-set totals.

    Not thread-safe on its own: all mutation goes through the owning
    registry's lock (one lock for the whole registry, like the tracer's).
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.series: Dict[LabelKey, float] = {}

    def _inc(self, key: LabelKey, value: float) -> None:
        self.series[key] = self.series.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        """Current total of one label set (0.0 when never incremented)."""
        return self.series.get(_label_key(labels), 0.0)

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "help": self.help,
                "series": [{"labels": dict(key), "value": value}
                           for key, value in sorted(self.series.items())]}

    def render(self, lines: List[str]) -> None:
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} counter")
        for key, value in sorted(self.series.items()):
            lines.append(f"{self.name}{_format_labels(key)} "
                         f"{_format_value(value)}")


class Gauge:
    """Last-written value per label set (plus add/subtract convenience)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.series: Dict[LabelKey, float] = {}

    def _set(self, key: LabelKey, value: float) -> None:
        self.series[key] = value

    def _add(self, key: LabelKey, value: float) -> None:
        self.series[key] = self.series.get(key, 0.0) + value

    def value(self, **labels: Any) -> Optional[float]:
        """Current value of one label set (``None`` when never set)."""
        return self.series.get(_label_key(labels))

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "help": self.help,
                "series": [{"labels": dict(key), "value": value}
                           for key, value in sorted(self.series.items())]}

    def render(self, lines: List[str]) -> None:
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} gauge")
        for key, value in sorted(self.series.items()):
            lines.append(f"{self.name}{_format_labels(key)} "
                         f"{_format_value(value)}")


class _HistogramSeries:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        # one slot per finite bound plus the +Inf overflow slot
        self.bucket_counts = [0] * (num_buckets + 1)
        self.sum = 0.0
        self.count = 0


class Histogram:
    """Bucketed value distribution per label set (Prometheus semantics:
    exposition is cumulative; storage is per-bucket so merges are adds)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self.series: Dict[LabelKey, _HistogramSeries] = {}

    def _series(self, key: LabelKey) -> _HistogramSeries:
        entry = self.series.get(key)
        if entry is None:
            entry = _HistogramSeries(len(self.buckets))
            self.series[key] = entry
        return entry

    def _observe(self, key: LabelKey, value: float) -> None:
        entry = self._series(key)
        entry.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        entry.sum += value
        entry.count += 1

    def stats(self, **labels: Any) -> Optional[Dict[str, float]]:
        """``{"count", "sum", "mean"}`` of one label set, or ``None``."""
        entry = self.series.get(_label_key(labels))
        if entry is None or entry.count == 0:
            return None
        return {"count": float(entry.count), "sum": entry.sum,
                "mean": entry.sum / entry.count}

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "help": self.help,
                "buckets": list(self.buckets),
                "series": [{"labels": dict(key),
                            "counts": list(entry.bucket_counts),
                            "sum": entry.sum, "count": entry.count}
                           for key, entry in sorted(self.series.items())]}

    def render(self, lines: List[str]) -> None:
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} histogram")
        for key, entry in sorted(self.series.items()):
            cumulative = 0
            for bound, count in zip(self.buckets, entry.bucket_counts):
                cumulative += count
                labels = _format_labels(key, [("le", _format_value(bound))])
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = _format_labels(key, [("le", "+Inf")])
            lines.append(f"{self.name}_bucket{labels} {entry.count}")
            lines.append(f"{self.name}_sum{_format_labels(key)} "
                         f"{_format_value(entry.sum)}")
            lines.append(f"{self.name}_count{_format_labels(key)} "
                         f"{entry.count}")


class _NullTimer:
    """Reusable no-op context manager (shared; carries no state)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class _Timer:
    """Context manager created by :meth:`MetricsRegistry.timer`."""

    __slots__ = ("_registry", "_name", "_labels", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: Dict[str, Any]) -> None:
        self._registry = registry
        self._name = name
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> None:
        self._start = time.perf_counter()
        return None

    def __exit__(self, *exc_info: object) -> bool:
        self._registry.observe(self._name,
                               time.perf_counter() - self._start,
                               **self._labels)
        return False


class NullRegistry:
    """No-op registry installed by default.

    Every hook is a constant-time early return, so untelemetered runs pay
    (nearly) nothing; ``enabled`` is ``False`` so call sites can skip even
    argument construction for expensive records.
    """

    enabled = False

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        return None

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        return None

    def add_gauge(self, name: str, value: float, **labels: Any) -> None:
        return None

    def observe(self, name: str, value: float, **labels: Any) -> None:
        return None

    def timer(self, name: str, **labels: Any) -> _NullTimer:
        return _NULL_TIMER

    def snapshot(self) -> Dict[str, Any]:
        return {"metrics": {}}

    def merge(self, snapshot: Dict[str, Any],
              extra_labels: Optional[Dict[str, Any]] = None) -> None:
        return None

    def render_prometheus(self) -> str:
        return ""


class MetricsRegistry:
    """Thread-safe collection of named metrics with label sets.

    Metrics are created on first use — :meth:`inc` makes a
    :class:`Counter`, :meth:`set_gauge` / :meth:`add_gauge` a
    :class:`Gauge`, :meth:`observe` / :meth:`timer` a :class:`Histogram` —
    with help text looked up in :data:`METRIC_HELP` (or registered
    explicitly with :meth:`describe`).  One lock serialises all mutation:
    the threaded runtime and the cluster supervisor's reader threads emit
    concurrently, exactly like the tracer's buffer appends.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}
        self._help: Dict[str, str] = dict(METRIC_HELP)
        self._created = time.perf_counter()

    # ------------------------------------------------------------------ #
    # Metric creation / lookup
    # ------------------------------------------------------------------ #
    def describe(self, name: str, help: str) -> None:
        """Register help text for ``name`` (before or after first use)."""
        with self._lock:
            self._help[name] = help
            metric = self._metrics.get(name)
            if metric is not None:
                metric.help = help

    def _get(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help=self._help.get(name, ""), **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric '{name}' is a {metric.kind}, "
                            f"not a {cls.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._get(name, Gauge)

    def histogram(self, name: str,
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            return self._get(name, Histogram, buckets=buckets)

    def metrics(self) -> List[Union[Counter, Gauge, Histogram]]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    # ------------------------------------------------------------------ #
    # Hot-path recording (the instrumented call sites use these)
    # ------------------------------------------------------------------ #
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        with self._lock:
            self._get(name, Counter)._inc(_label_key(labels), value)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        with self._lock:
            self._get(name, Gauge)._set(_label_key(labels), value)

    def add_gauge(self, name: str, value: float, **labels: Any) -> None:
        with self._lock:
            self._get(name, Gauge)._add(_label_key(labels), value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        with self._lock:
            self._get(name, Histogram)._observe(_label_key(labels), value)

    def timer(self, name: str, **labels: Any) -> _Timer:
        """Context manager observing its ``perf_counter`` duration."""
        return _Timer(self, name, labels)

    # ------------------------------------------------------------------ #
    # Snapshot / merge (the cross-process APIs)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable state: ship across process boundaries, merge
        into another registry with :meth:`merge`, or archive as the final
        metrics snapshot of a run."""
        with self._lock:
            return {
                "uptime_seconds": time.perf_counter() - self._created,
                "metrics": {name: metric.snapshot()
                            for name, metric in sorted(self._metrics.items())},
            }

    def merge(self, snapshot: Dict[str, Any],
              extra_labels: Optional[Dict[str, Any]] = None) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram buckets *add*; gauges take the incoming
        value (last write wins).  ``extra_labels`` are stamped onto every
        incoming series — the cluster supervisor merges each node's
        registry with ``{"node": node_id}`` so per-node series stay
        distinguishable after the fold.
        """
        extra = extra_labels or {}
        for name, payload in (snapshot.get("metrics") or {}).items():
            kind = payload.get("kind")
            with self._lock:
                if kind == "counter":
                    metric = self._get(name, Counter)
                    for entry in payload.get("series", []):
                        key = _label_key({**entry["labels"], **extra})
                        metric._inc(key, float(entry["value"]))
                elif kind == "gauge":
                    metric = self._get(name, Gauge)
                    for entry in payload.get("series", []):
                        key = _label_key({**entry["labels"], **extra})
                        metric._set(key, float(entry["value"]))
                elif kind == "histogram":
                    buckets = tuple(payload.get("buckets", DEFAULT_BUCKETS))
                    metric = self._get(name, Histogram, buckets=buckets)
                    if metric.buckets != buckets:
                        raise ValueError(
                            f"cannot merge histogram '{name}': bucket "
                            f"bounds differ")
                    for entry in payload.get("series", []):
                        key = _label_key({**entry["labels"], **extra})
                        series = metric._series(key)
                        for i, count in enumerate(entry["counts"]):
                            series.bucket_counts[i] += int(count)
                        series.sum += float(entry["sum"])
                        series.count += int(entry["count"])
                else:
                    raise ValueError(f"unknown metric kind '{kind}' "
                                     f"in snapshot entry '{name}'")

    # ------------------------------------------------------------------ #
    # Exposition
    # ------------------------------------------------------------------ #
    def render_prometheus(self) -> str:
        """The standard Prometheus text format (version 0.0.4)."""
        lines: List[str] = []
        for metric in self.metrics():
            metric.render(lines)
        return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------------- #
# Help catalogue (shared by every registry; extend freely)
# --------------------------------------------------------------------------- #
METRIC_HELP: Dict[str, str] = {
    "repro_campaign_scenarios_total":
        "Scenario outcomes by terminal status (ran/cached/failed)",
    "repro_campaign_scenarios_pending":
        "Scenarios of the running campaign not yet finished",
    "repro_campaign_scenarios_running":
        "Scenario tasks currently executing (approximate under a pool)",
    "repro_campaign_cache_total":
        "Result-store lookups at campaign start, by hit/miss",
    "repro_campaign_queue_wait_seconds":
        "Time between campaign dispatch and a scenario's completion "
        "minus its execution time (upper bound under a busy pool)",
    "repro_campaign_scenario_seconds":
        "Wall-clock execution time of one scenario",
    "repro_batch_lane_chunk_seconds":
        "Wall-clock time of one batched replica-lane chunk, by backend",
    "repro_store_op_seconds": "ResultStore operation latency, by op",
    "repro_store_ops_total": "ResultStore operations, by op",
    "repro_store_entries": "Entries in the result store",
    "repro_store_index_rebuilds_total":
        "Sidecar index shards rebuilt from entry payloads",
    "repro_runtime_cache_total":
        "repro.runtime.run() store lookups, by result (hit/miss)",
    "repro_scheduler_jobs_total":
        "Scheduler campaign jobs reaching a terminal state (done/failed)",
    "repro_scheduler_jobs_pending":
        "Campaign jobs queued or running in the scheduler daemon",
    "repro_scheduler_scenarios_deduped_total":
        "Scenarios a submitted campaign already had in the store at "
        "submission time",
    "repro_step_phase_seconds":
        "Per-phase protocol step duration, by runtime and phase",
    "repro_gar_decisions_total":
        "GAR decisions recorded (requires decision records), by rule",
    "repro_gar_attackers_offered_total":
        "Known-attacker inputs offered to the GAR, by rule",
    "repro_gar_attackers_selected_total":
        "Known-attacker inputs admitted by the GAR, by rule",
    "repro_gar_attacker_acceptance":
        "Running attacker-acceptance rate of the GAR, by rule",
    "repro_cluster_node_up":
        "Cluster node liveness (1 = running/ready/done, 0 = dead)",
    "repro_cluster_node_incarnations":
        "Spawned incarnations of a cluster node (respawns + 1)",
    "repro_cluster_respawns_total": "Node respawns after scheduled crashes",
    "repro_cluster_probe_rtt_seconds": "Supervisor PING→PONG round trip",
    "repro_cluster_frames_total":
        "Protocol frames sent/received, by direction and kind",
    "repro_cluster_bytes_total":
        "Protocol bytes sent/received, by direction",
}


# --------------------------------------------------------------------------- #
# Active-registry management (mirrors repro.obs.tracer)
# --------------------------------------------------------------------------- #
_NULL_REGISTRY = NullRegistry()
_active: Union[MetricsRegistry, NullRegistry] = _NULL_REGISTRY


def get_registry() -> Union[MetricsRegistry, NullRegistry]:
    """The active registry (a shared :class:`NullRegistry` by default)."""
    return _active


def set_registry(registry: Optional[Union[MetricsRegistry, NullRegistry]]
                 ) -> None:
    """Install ``registry`` as the active one (``None`` resets to no-op)."""
    global _active
    _active = registry if registry is not None else _NULL_REGISTRY


@contextmanager
def use_registry(registry: Union[MetricsRegistry, NullRegistry]
                 ) -> Iterator[Union[MetricsRegistry, NullRegistry]]:
    """Scoped :func:`set_registry`: restores the previous registry on exit."""
    global _active
    previous = _active
    _active = registry
    try:
        yield registry
    finally:
        _active = previous


# --------------------------------------------------------------------------- #
# Exposition-format parsing (the monitor and the CI smoke read it back)
# --------------------------------------------------------------------------- #
def parse_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse Prometheus text exposition into ``{family: {...}}``.

    Strict enough to *validate* what :meth:`MetricsRegistry.
    render_prometheus` (or any conforming exporter) produced — unknown
    line shapes raise ``ValueError`` — and structured enough for the
    ``repro monitor`` dashboard: each family carries its ``type``,
    ``help`` and a list of ``{"name", "labels", "value"}`` samples
    (histogram ``_bucket``/``_sum``/``_count`` samples fold into their
    base family).
    """
    families: Dict[str, Dict[str, Any]] = {}

    def family_for(sample_name: str) -> Dict[str, Any]:
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)] \
                if sample_name.endswith(suffix) else None
            if trimmed and families.get(trimmed, {}).get("type") == "histogram":
                base = trimmed
                break
        return families.setdefault(base, {"name": base, "type": "untyped",
                                          "help": "", "samples": []})

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                family = families.setdefault(
                    parts[2], {"name": parts[2], "type": "untyped",
                               "help": "", "samples": []})
                if parts[1] == "TYPE":
                    family["type"] = parts[3] if len(parts) > 3 else "untyped"
                else:
                    family["help"] = parts[3] if len(parts) > 3 else ""
            continue
        name, labels, value = _parse_sample(line, line_number)
        family_for(name)["samples"].append(
            {"name": name, "labels": labels, "value": value})
    return families


def _parse_sample(line: str, line_number: int
                  ) -> Tuple[str, Dict[str, str], float]:
    rest = line
    brace = rest.find("{")
    labels: Dict[str, str] = {}
    if brace >= 0:
        name = rest[:brace]
        close = rest.rfind("}")
        if close < brace:
            raise ValueError(f"line {line_number}: unterminated label set")
        labels = _parse_labels(rest[brace + 1: close], line_number)
        rest = rest[close + 1:].strip()
    else:
        parts = rest.split(None, 1)
        if len(parts) != 2:
            raise ValueError(f"line {line_number}: expected 'name value'")
        name, rest = parts
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"line {line_number}: invalid metric name '{name}'")
    value_text = rest.split()[0] if rest.split() else ""
    try:
        value = float(value_text.replace("+Inf", "inf")
                      .replace("-Inf", "-inf"))
    except ValueError as exc:
        raise ValueError(f"line {line_number}: invalid sample value "
                         f"'{value_text}'") from exc
    return name, labels, value


def _parse_labels(body: str, line_number: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(body):
        if body[i] == ",":
            i += 1
            continue
        eq = body.find("=", i)
        if eq < 0:
            raise ValueError(f"line {line_number}: malformed label pair")
        name = body[i:eq].strip()
        if body[eq + 1: eq + 2] != '"':
            raise ValueError(f"line {line_number}: unquoted label value")
        j = eq + 2
        chars: List[str] = []
        while j < len(body):
            c = body[j]
            if c == "\\" and j + 1 < len(body):
                escaped = body[j + 1]
                chars.append({"n": "\n", "\\": "\\", '"': '"'}
                             .get(escaped, escaped))
                j += 2
                continue
            if c == '"':
                break
            chars.append(c)
            j += 1
        else:
            raise ValueError(f"line {line_number}: unterminated label value")
        labels[name] = "".join(chars)
        i = j + 1
    return labels
