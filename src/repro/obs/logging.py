"""Structured logging configuration shared by every CLI subcommand.

``repro --log-level debug ...`` routes all ``repro.*`` loggers through one
stderr handler; ``--log-level debug --json`` (or ``json_mode=True``) swaps
the human format for one-JSON-object-per-line, machine-parseable alongside
trace JSONL files.
"""

from __future__ import annotations

import json
import logging
import sys
import time

__all__ = ["configure_logging", "JsonLogFormatter"]

_LEVELS = {"debug": logging.DEBUG, "info": logging.INFO,
           "warning": logging.WARNING, "error": logging.ERROR}


class JsonLogFormatter(logging.Formatter):
    """Render each log record as a single JSON object."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, separators=(",", ":"))


def configure_logging(level: str = "warning", *, json_mode: bool = False,
                      stream=None) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy and return its root.

    Idempotent: a prior handler installed by this function is replaced, so
    repeated CLI invocations in one process (tests) don't stack handlers.
    """
    if level not in _LEVELS:
        raise ValueError(f"unknown log level {level!r}; "
                         f"choose from {sorted(_LEVELS)}")
    logger = logging.getLogger("repro")
    logger.setLevel(_LEVELS[level])
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json_mode:
        handler.setFormatter(JsonLogFormatter())
    else:
        formatter = logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s")
        formatter.converter = time.gmtime
        handler.setFormatter(formatter)
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_cli_handler", False):
            logger.removeHandler(existing)
    handler._repro_cli_handler = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger
