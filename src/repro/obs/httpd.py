"""Metrics exposition over HTTP: ``/metrics``, ``/healthz``, ``/status``.

A tiny stdlib-only (:mod:`http.server`) endpoint serving the active
telemetry out of a running process:

* ``/metrics`` — the registry rendered as Prometheus text (0.0.4), ready
  for ``curl``, a Prometheus scraper, or the ``repro monitor`` dashboard;
* ``/healthz`` — ``200 ok`` while the process is serving (a liveness
  probe, nothing more);
* ``/status`` — a JSON document from the owner's status callable —
  campaign progress for ``sweep --metrics-port``, the supervisor report
  for ``cluster --metrics-port``.

The server runs on a daemon thread (:class:`~http.server.
ThreadingHTTPServer`), binds ``127.0.0.1`` only, and supports ``port=0``
for an ephemeral port (``server.port`` reports the bound one).  Handlers
only *read* snapshots — the endpoint never perturbs the run it watches.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.obs.telemetry import MetricsRegistry, NullRegistry, get_registry

__all__ = ["MetricsServer", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    # The serving MetricsServer injects itself on the handler class the
    # ThreadingHTTPServer instantiates per request.
    owner: "MetricsServer"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET", b"")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        self._dispatch("POST", body)

    def _dispatch(self, method: str, body: bytes) -> None:
        path, _, query = self.path.partition("?")
        if self.owner.routes is not None:
            handled = self.owner.routes(method, path, query, body)
            if handled is not None:
                self._reply(*handled)
                return
        if method == "GET" and path == "/metrics":
            text = self.owner.registry.render_prometheus().encode("utf-8")
            self._reply(200, PROMETHEUS_CONTENT_TYPE, text)
        elif method == "GET" and path == "/healthz":
            self._reply(200, "text/plain; charset=utf-8", b"ok\n")
        elif method == "GET" and path == "/status":
            text = json.dumps(self.owner.status(), indent=2,
                              sort_keys=True).encode("utf-8")
            self._reply(200, "application/json; charset=utf-8", text)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        # Scrapes must not spam the CLI's stderr.
        return None


class MetricsServer:
    """Serve the telemetry registry on ``127.0.0.1:port`` from a daemon
    thread.

    Parameters
    ----------
    port:
        TCP port to bind; ``0`` picks an ephemeral one (read it back from
        :attr:`port` after :meth:`start`).
    registry:
        Registry to expose; defaults to the active one at start time.
    status:
        Zero-argument callable returning the JSON-serialisable ``/status``
        document.  The owner updates whatever state it closes over (a
        campaign-progress dict, a supervisor's ``report()``).
    routes:
        Optional application router tried *before* the built-in
        endpoints: ``routes(method, path, query_string, body)`` returns
        ``(status_code, content_type, body_bytes)`` to handle the
        request, or ``None`` to fall through to ``/metrics`` / ``/healthz``
        / ``/status`` / 404.  This is how the campaign scheduler daemon
        mounts ``POST /campaigns`` etc. on the same listener as its
        telemetry.
    """

    def __init__(self, port: int = 0, *,
                 registry: Optional[Union[MetricsRegistry,
                                          NullRegistry]] = None,
                 status: Optional[Callable[[], Dict[str, Any]]] = None,
                 routes: Optional[Callable[[str, str, str, bytes],
                                           Optional[Tuple[int, str, bytes]]]]
                 = None) -> None:
        self._requested_port = port
        self.registry = registry if registry is not None else get_registry()
        self.status = status if status is not None else (lambda: {})
        self.routes = routes
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def start(self) -> "MetricsServer":
        if self._server is not None:
            raise RuntimeError("metrics server already started")
        handler = type("_BoundHandler", (_Handler,), {"owner": self})
        self._server = ThreadingHTTPServer(
            ("127.0.0.1", self._requested_port), handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-metrics-httpd",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> bool:
        self.stop()
        return False
