"""Observability: structured tracing, training histories, logging.

This package answers "what happened during a run" at three granularities:

* :mod:`repro.obs.tracer` — spans/events/counters on the **real** clock
  (``time.perf_counter``), with a hard zero-perturbation guarantee so the
  cross-runtime equivalence invariants survive tracing;
* :mod:`repro.obs.telemetry` — live metrics (counters/gauges/histograms
  with label sets) under the same zero-perturbation contract, snapshot/
  merge across processes, Prometheus text exposition;
* :mod:`repro.obs.httpd` — serve the active registry over HTTP
  (``/metrics``, ``/healthz``, ``/status``);
* :mod:`repro.obs.crash` — flight recorder dumping trace ring + metrics
  snapshot to ``*.crash.json`` on failure or interruption;
* :mod:`repro.obs.history` — the per-step :class:`TrainingHistory` on the
  **simulated** clock (moved here from ``repro.metrics.tracker``);
* :mod:`repro.obs.logging` — structured logging config for the CLI.
"""

from repro.obs.crash import crash_report_path, write_crash_report
from repro.obs.history import StepRecord, TrainingHistory
from repro.obs.httpd import MetricsServer
from repro.obs.logging import configure_logging
from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    parse_prometheus_text,
    set_registry,
    use_registry,
)
from repro.obs.tracer import (
    NullTracer,
    TraceEvent,
    Tracer,
    get_tracer,
    read_jsonl,
    set_tracer,
    use_tracer,
)

__all__ = [
    "StepRecord",
    "TrainingHistory",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "read_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "parse_prometheus_text",
    "MetricsServer",
    "write_crash_report",
    "crash_report_path",
    "configure_logging",
]
