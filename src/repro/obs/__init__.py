"""Observability: structured tracing, training histories, logging.

This package answers "what happened during a run" at three granularities:

* :mod:`repro.obs.tracer` — spans/events/counters on the **real** clock
  (``time.perf_counter``), with a hard zero-perturbation guarantee so the
  cross-runtime equivalence invariants survive tracing;
* :mod:`repro.obs.history` — the per-step :class:`TrainingHistory` on the
  **simulated** clock (moved here from ``repro.metrics.tracker``);
* :mod:`repro.obs.logging` — structured logging config for the CLI.
"""

from repro.obs.history import StepRecord, TrainingHistory
from repro.obs.logging import configure_logging
from repro.obs.tracer import (
    NullTracer,
    TraceEvent,
    Tracer,
    get_tracer,
    read_jsonl,
    set_tracer,
    use_tracer,
)

__all__ = [
    "StepRecord",
    "TrainingHistory",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "read_jsonl",
    "configure_logging",
]
