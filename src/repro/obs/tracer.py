"""Low-overhead structured trace recorder with a zero-perturbation guarantee.

The tracer records **spans** (named intervals timed with
:func:`time.perf_counter`), **events** (point-in-time facts with typed
attributes) and **counters** (monotonically accumulated integers/floats)
into a bounded in-memory ring buffer, exportable as JSON Lines.

The hard invariant of this module — enforced by the tier-1 equivalence
tests — is **zero perturbation**: recording a trace must not change what
the traced computation computes.  Concretely the tracer

* never draws from any random generator (no ``np.random``/``random`` use),
* never reads or advances *simulated* clocks — only the process-local
  monotonic clocks ``time.perf_counter``/``time.monotonic``,
* never mutates the objects handed to it (attributes are stored as given).

Consequently sequential↔batched bit-identity and sequential↔threaded
loss-trajectory identity hold with tracing enabled, and a traced run's
:class:`~repro.obs.history.TrainingHistory` is equal to the untraced one.

The active tracer is a module-level singleton (default: a no-op
:class:`NullTracer`) accessed through :func:`get_tracer` and installed with
:func:`set_tracer` or the scoped :func:`use_tracer`.  Instrumented code is
written against that interface, so an untraced run pays only an attribute
read, a truthiness check, and an early return per hook.
"""

from __future__ import annotations

import gzip
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, TextIO, Union

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "read_jsonl",
]


@dataclass
class TraceEvent:
    """One record in a trace.

    Attributes
    ----------
    name:
        Dotted identifier, e.g. ``"seq.step.aggregate"`` or
        ``"campaign.cache_hit"``.
    kind:
        ``"span"`` (has a duration), ``"event"`` (instantaneous) or
        ``"counter"`` (accumulated value snapshot at export time).
    ts:
        Seconds since the owning tracer's creation (monotonic clock).
    dur:
        Span duration in seconds; ``None`` for events and counters.
    step:
        Training-step index the record belongs to, when applicable.
    node:
        Node identifier (``"server-0"``, ``"worker-3"``) when applicable.
    source:
        Originating process of a *merged* multi-source trace (the cluster
        runtime tags each node's forwarded records with its node id before
        folding them into one JSONL).  ``None`` for single-process traces.
    attrs:
        Small JSON-serialisable attribute mapping.
    """

    name: str
    kind: str = "event"
    ts: float = 0.0
    dur: Optional[float] = None
    step: Optional[int] = None
    node: Optional[str] = None
    source: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        # Keep JSONL lines compact: drop empty optional fields.
        if payload["dur"] is None:
            del payload["dur"]
        if payload["step"] is None:
            del payload["step"]
        if payload["node"] is None:
            del payload["node"]
        if payload["source"] is None:
            del payload["source"]
        if not payload["attrs"]:
            del payload["attrs"]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceEvent":
        return cls(name=payload["name"], kind=payload.get("kind", "event"),
                   ts=payload.get("ts", 0.0), dur=payload.get("dur"),
                   step=payload.get("step"), node=payload.get("node"),
                   source=payload.get("source"),
                   attrs=payload.get("attrs", {}))


class _NullSpan:
    """Reusable no-op context manager (shared; carries no state)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer installed by default.

    Every hook is a constant-time early return so uninstrumented runs pay
    (nearly) nothing; ``enabled`` is ``False`` so call sites can skip even
    argument construction for expensive records.
    """

    enabled = False
    record_decisions = False

    def span(self, name: str, *, step: Optional[int] = None,
             node: Optional[str] = None, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, *, step: Optional[int] = None,
              node: Optional[str] = None, **attrs: Any) -> None:
        return None

    def count(self, name: str, value: Union[int, float] = 1) -> None:
        return None

    def record_span(self, name: str, start: float, end: float, *,
                    step: Optional[int] = None, node: Optional[str] = None,
                    **attrs: Any) -> None:
        return None

    def events(self) -> List[TraceEvent]:
        return []

    def counters(self) -> Dict[str, Union[int, float]]:
        return {}

    def summary(self) -> Dict[str, Any]:
        return {"spans": {}, "counters": {}, "events": 0, "dropped": 0}

    def write_jsonl(self, destination: Union[str, TextIO],
                    compress: Optional[bool] = None) -> int:
        return 0

    def export(self, destination: Union[str, TextIO],
               compress: Optional[bool] = None) -> int:
        return 0


class _Span:
    """Context manager created by :meth:`Tracer.span`; one per invocation."""

    __slots__ = ("_tracer", "_event", "_start")

    def __init__(self, tracer: "Tracer", event: TraceEvent) -> None:
        self._tracer = tracer
        self._event = event
        self._start = 0.0

    def __enter__(self) -> TraceEvent:
        self._start = time.perf_counter()
        return self._event

    def __exit__(self, *exc_info: object) -> bool:
        end = time.perf_counter()
        event = self._event
        event.dur = end - self._start
        event.ts = self._start - self._tracer._epoch
        self._tracer._append(event)
        return False


class Tracer:
    """Bounded-ring-buffer trace recorder.

    Parameters
    ----------
    capacity:
        Maximum number of retained records; older records are discarded
        first (``dropped`` in :meth:`summary` counts the loss, so
        truncation is observable rather than silent).
    enabled:
        When ``False`` the tracer behaves like :class:`NullTracer` while
        keeping its identity (useful for toggling).
    record_decisions:
        Opt-in gate for *expensive* records — per-step GAR decision
        provenance recomputes selection indices and honest-mean distances,
        so it is off unless explicitly requested (e.g. by ``repro --trace``).
    """

    def __init__(self, capacity: int = 100_000, *, enabled: bool = True,
                 record_decisions: bool = False) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self.record_decisions = record_decisions
        self._epoch = time.perf_counter()
        self._buffer: deque = deque(maxlen=capacity)
        self._counters: Dict[str, Union[int, float]] = {}
        self._emitted = 0
        # One lock serialises buffer appends and counter updates: the
        # threaded runtime emits from worker/server threads concurrently.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _append(self, event: TraceEvent) -> None:
        with self._lock:
            self._buffer.append(event)
            self._emitted += 1

    def span(self, name: str, *, step: Optional[int] = None,
             node: Optional[str] = None, **attrs: Any):
        """Context manager timing a named interval with ``perf_counter``."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, TraceEvent(name=name, kind="span", step=step,
                                      node=node, attrs=attrs))

    def event(self, name: str, *, step: Optional[int] = None,
              node: Optional[str] = None, **attrs: Any) -> None:
        """Record an instantaneous event."""
        if not self.enabled:
            return
        self._append(TraceEvent(name=name, kind="event",
                                ts=time.perf_counter() - self._epoch,
                                step=step, node=node, attrs=attrs))

    def count(self, name: str, value: Union[int, float] = 1) -> None:
        """Accumulate ``value`` onto the named counter."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def record_span(self, name: str, start: float, end: float, *,
                    step: Optional[int] = None, node: Optional[str] = None,
                    **attrs: Any) -> None:
        """Record a span from explicit ``perf_counter`` readings.

        For hot loops where a context manager per section is awkward: the
        caller samples ``time.perf_counter()`` at its own boundaries and
        hands both readings over.
        """
        if not self.enabled:
            return
        self._append(TraceEvent(name=name, kind="span",
                                ts=start - self._epoch, dur=end - start,
                                step=step, node=node, attrs=attrs))

    def extend(self, records: Iterable[TraceEvent]) -> None:
        """Append already-built records (e.g. from a per-scenario tracer).

        Timestamps are kept as-is — they are relative to the *source*
        tracer's epoch, which is fine for duration aggregation (the only
        cross-tracer use).
        """
        if not self.enabled:
            return
        with self._lock:
            for record in records:
                self._buffer.append(record)
                self._emitted += 1

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def events(self) -> List[TraceEvent]:
        """Snapshot of retained records, oldest first."""
        with self._lock:
            return list(self._buffer)

    def counters(self) -> Dict[str, Union[int, float]]:
        with self._lock:
            return dict(self._counters)

    @property
    def dropped(self) -> int:
        """Number of records lost to ring-buffer truncation."""
        with self._lock:
            return self._emitted - len(self._buffer)

    def summary(self) -> Dict[str, Any]:
        """Compact aggregate: per-span-name count/total/mean + counters.

        This is the form persisted next to :class:`~repro.campaign.store.
        ResultStore` entries and consumed by ``repro.benchtools.compare``'s
        dominant-phase annotation — small, JSON-friendly, order-free.
        """
        spans: Dict[str, Dict[str, float]] = {}
        events = 0
        for record in self.events():
            if record.kind == "span" and record.dur is not None:
                bucket = spans.setdefault(record.name,
                                          {"count": 0, "total_s": 0.0})
                bucket["count"] += 1
                bucket["total_s"] += record.dur
            else:
                events += 1
        for bucket in spans.values():
            bucket["mean_s"] = bucket["total_s"] / bucket["count"]
        return {"spans": spans, "counters": self.counters(),
                "events": events, "dropped": self.dropped}

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def write_jsonl(self, destination: Union[str, TextIO],
                    compress: Optional[bool] = None) -> int:
        """Write retained records (plus counter snapshots) as JSON Lines.

        Returns the number of lines written.  Counters are appended as
        ``kind="counter"`` records with the accumulated value, so a JSONL
        file is self-contained.

        ``compress`` gzips the output (long cluster traces shrink ~20x);
        the default ``None`` infers it from a ``.gz`` path suffix.  It is
        an error to request compression for a text stream destination.
        """
        records = self.events()
        counters = self.counters()
        now = time.perf_counter() - self._epoch
        lines = [json.dumps(r.to_dict(), separators=(",", ":"))
                 for r in records]
        for name in sorted(counters):
            counter = TraceEvent(name=name, kind="counter", ts=now,
                                 attrs={"value": counters[name]})
            lines.append(json.dumps(counter.to_dict(), separators=(",", ":")))
        text = "\n".join(lines) + ("\n" if lines else "")
        if isinstance(destination, str):
            if compress is None:
                compress = destination.endswith(".gz")
            if compress:
                with gzip.open(destination, "wt", encoding="utf-8") as handle:
                    handle.write(text)
            else:
                with open(destination, "w", encoding="utf-8") as handle:
                    handle.write(text)
        else:
            if compress:
                raise ValueError(
                    "compress=True requires a path destination, not a stream")
            destination.write(text)
        return len(lines)

    # ``export`` is the documented name; ``write_jsonl`` predates it and
    # stays as an alias for existing callers.
    export = write_jsonl


def read_jsonl(source: Union[str, TextIO]) -> List[TraceEvent]:
    """Parse a trace JSONL file back into :class:`TraceEvent` records.

    Paths ending in ``.gz`` (or starting with the gzip magic bytes) are
    decompressed transparently, so ``repro trace``/``repro report`` accept
    compressed exports unchanged.
    """
    if isinstance(source, str):
        with open(source, "rb") as handle:
            raw = handle.read()
        if raw[:2] == b"\x1f\x8b":
            raw = gzip.decompress(raw)
        text = raw.decode("utf-8")
    else:
        text = source.read()
    records = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(TraceEvent.from_dict(json.loads(line)))
    return records


# ---------------------------------------------------------------------- #
# Active-tracer management
# ---------------------------------------------------------------------- #
_NULL_TRACER = NullTracer()
_active: Union[Tracer, NullTracer] = _NULL_TRACER


def get_tracer() -> Union[Tracer, NullTracer]:
    """The currently active tracer (a shared :class:`NullTracer` by default)."""
    return _active


def set_tracer(tracer: Optional[Union[Tracer, NullTracer]]) -> None:
    """Install ``tracer`` as the active tracer (``None`` resets to no-op)."""
    global _active
    _active = tracer if tracer is not None else _NULL_TRACER


@contextmanager
def use_tracer(tracer: Union[Tracer, NullTracer]) -> Iterator[Union[Tracer, NullTracer]]:
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous
