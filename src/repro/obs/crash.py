"""Flight recorder: dump trace ring + metrics snapshot on failure.

When a scenario fails or the CLI takes SIGINT/SIGTERM, the last window
of observability is exactly what explains the death — so instead of
losing it, :func:`write_crash_report` writes one ``*.crash.json`` with

* the active tracer's retained ring (events + counters + summary),
* the active telemetry registry's final snapshot,
* a small context block from the caller (reason, scenario name, exit
  code, whatever the call site knows).

The report lands in the explicit ``crash_dir`` when one is given (the
CLI's global ``--crash-dir``), else *beside the store* when a result
store is in play (``<store>/<name>.crash.json``), else next to the
trace file, else in the working directory — always somewhere the
operator already looks.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional, Union

from repro.obs.telemetry import MetricsRegistry, NullRegistry, get_registry
from repro.obs.tracer import NullTracer, Tracer, get_tracer

__all__ = ["write_crash_report", "crash_report_path"]


def crash_report_path(name: str, *, store_root: Optional[str] = None,
                      trace_path: Optional[str] = None,
                      crash_dir: Optional[str] = None) -> str:
    """Where a crash report for ``name`` should land (see module doc).

    An explicit ``crash_dir`` (the CLI's global ``--crash-dir``) wins over
    every inferred location.
    """
    safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in name)
    filename = f"{safe}.crash.json"
    if crash_dir:
        return os.path.join(crash_dir, filename)
    if store_root:
        return os.path.join(store_root, filename)
    if trace_path:
        return os.path.join(os.path.dirname(os.path.abspath(trace_path)),
                            filename)
    return filename


def write_crash_report(name: str, reason: str, *,
                       store_root: Optional[str] = None,
                       trace_path: Optional[str] = None,
                       crash_dir: Optional[str] = None,
                       tracer: Optional[Union[Tracer, NullTracer]] = None,
                       registry: Optional[Union[MetricsRegistry,
                                                NullRegistry]] = None,
                       context: Optional[Dict[str, Any]] = None) -> str:
    """Dump the flight-recorder state and return the report's path.

    Never raises on serialisation trouble with individual attributes —
    a crash dump that itself crashes helps nobody — but filesystem errors
    (unwritable directory) do propagate to the caller.
    """
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_registry()
    report: Dict[str, Any] = {
        "kind": "repro.crash_report",
        "name": name,
        "reason": reason,
        "wall_time": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "context": context or {},
        "trace": {
            "enabled": bool(tracer.enabled),
            "events": [e.to_dict() for e in tracer.events()],
            "counters": tracer.counters(),
            "summary": tracer.summary(),
        },
        "metrics": registry.snapshot(),
    }
    path = crash_report_path(name, store_root=store_root,
                             trace_path=trace_path, crash_dir=crash_dir)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path
