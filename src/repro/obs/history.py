"""Training history: the per-step record behind every figure reproduction.

Historically this lived at ``repro.metrics.tracker``; it moved into the
observability layer when the trace recorder was added so that *all*
"what happened during a run" data structures share one package.  The old
module re-exports everything, so both import paths keep working.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["StepRecord", "TrainingHistory"]


@dataclass
class StepRecord:
    """Measurements taken at one model update.

    Attributes
    ----------
    step:
        Learning step index (the x-axis of Figure 3(a)/(c) and Figure 4).
    simulated_time:
        Simulated wall-clock at which the update completed (the x-axis of
        Figure 3(b)/(d)).
    train_loss:
        Loss of the aggregated mini-batch gradient's model, when recorded.
    test_accuracy:
        Top-1 accuracy on the held-out set, when evaluated at this step.
    max_server_spread:
        ``max_{a,b} ||θ_a − θ_b||`` across correct parameter servers — the
        quantity the contraction argument drives to zero.
    learning_rate:
        Learning rate used for this update.
    phase_durations:
        Optional per-phase timing breakdown of the GuanYu step (keys
        ``"phase1_models_and_gradients"``, ``"phase2_server_update"``,
        ``"phase3_server_exchange"``), used by the §5.3 overhead attribution.
    """

    step: int
    simulated_time: float
    train_loss: Optional[float] = None
    test_accuracy: Optional[float] = None
    max_server_spread: Optional[float] = None
    learning_rate: Optional[float] = None
    phase_durations: Optional[Dict[str, float]] = None


@dataclass
class TrainingHistory:
    """Ordered collection of :class:`StepRecord` plus experiment metadata."""

    label: str = "experiment"
    config: Dict = field(default_factory=dict)
    records: List[StepRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def add(self, record: StepRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------ #
    # Series extraction (the "columns" of the paper's figures)
    # ------------------------------------------------------------------ #
    def steps(self) -> np.ndarray:
        return np.array([r.step for r in self.records])

    def times(self) -> np.ndarray:
        return np.array([r.simulated_time for r in self.records])

    def accuracies(self) -> np.ndarray:
        return np.array([np.nan if r.test_accuracy is None else r.test_accuracy
                         for r in self.records])

    def losses(self) -> np.ndarray:
        return np.array([np.nan if r.train_loss is None else r.train_loss
                         for r in self.records])

    def server_spreads(self) -> np.ndarray:
        return np.array([np.nan if r.max_server_spread is None else r.max_server_spread
                         for r in self.records])

    # ------------------------------------------------------------------ #
    # Summary helpers
    # ------------------------------------------------------------------ #
    def final_accuracy(self) -> float:
        """Last recorded test accuracy (NaN when never evaluated)."""
        for record in reversed(self.records):
            if record.test_accuracy is not None:
                return record.test_accuracy
        return float("nan")

    def best_accuracy(self) -> float:
        """Best recorded test accuracy (NaN when never evaluated)."""
        values = [r.test_accuracy for r in self.records if r.test_accuracy is not None]
        return max(values) if values else float("nan")

    def total_time(self) -> float:
        """Simulated time of the last update."""
        return self.records[-1].simulated_time if self.records else 0.0

    def total_steps(self) -> int:
        """Number of model updates recorded."""
        return self.records[-1].step + 1 if self.records else 0

    def mean_phase_durations(self) -> Dict[str, float]:
        """Average per-phase durations over all records that carry them."""
        totals: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for record in self.records:
            if not record.phase_durations:
                continue
            for phase, duration in record.phase_durations.items():
                totals[phase] = totals.get(phase, 0.0) + duration
                counts[phase] = counts.get(phase, 0) + 1
        return {phase: totals[phase] / counts[phase] for phase in totals}

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "config": self.config,
            "records": [asdict(r) for r in self.records],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict) -> "TrainingHistory":
        history = cls(label=payload.get("label", "experiment"),
                      config=payload.get("config", {}))
        for record in payload.get("records", []):
            history.add(StepRecord(**record))
        return history

    @classmethod
    def from_json(cls, text: str) -> "TrainingHistory":
        return cls.from_dict(json.loads(text))
