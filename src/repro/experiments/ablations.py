"""Ablation studies for the design choices called out in ``DESIGN.md``.

* :func:`run_gar_ablation` — swap the gradient aggregation rule at the
  parameter servers (Multi-Krum vs. median vs. mean, ...) under attack;
* :func:`run_attack_sweep` — GuanYu against every registered attack;
* :func:`run_quorum_ablation` — effect of the quorum size ``q̄`` on
  throughput and per-update quality (the paper's §5.3 observation);
* :func:`run_scaling_study` — throughput as cluster size grows.

Every harness is a thin *campaign definition*: it builds a list of
:class:`~repro.campaign.spec.ScenarioSpec` and hands them to
:func:`~repro.campaign.engine.run_campaign`, so all of them inherit the
engine's result caching (pass ``store=``) and parallel execution (pass
``processes=``) for free.  Outputs are unchanged from the pre-campaign
sequential loops for a fixed seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.byzantine import (
    CorruptedModelAttack,
    EquivocationAttack,
    LabelFlipPoisoning,
    LittleIsEnoughAttack,
    RandomGradientAttack,
    ReversedGradientAttack,
    SignFlipAttack,
    SilentWorker,
)
from repro.campaign.engine import run_campaign
from repro.campaign.spec import AttackSpec, CampaignSpec, ScenarioSpec
from repro.campaign.store import ResultStore
from repro.core import ClusterConfig
from repro.experiments.common import ExperimentScale, build_workload
from repro.metrics import TrainingHistory, throughput_updates_per_second


def _execute(name: str, scenarios: List[ScenarioSpec],
             store: Optional[ResultStore],
             processes: Optional[int]) -> Dict[str, TrainingHistory]:
    """Run a harness campaign; failures propagate as they did pre-campaign."""
    result = run_campaign(CampaignSpec(name=name, scenarios=scenarios),
                          store=store, processes=processes)
    result.raise_on_failure()
    return result.histories()


def run_gar_ablation(scale: Optional[ExperimentScale] = None,
                     rules: Sequence[str] = ("multi_krum", "median",
                                             "trimmed_mean", "mean"),
                     store: Optional[ResultStore] = None,
                     processes: Optional[int] = None,
                     ) -> Dict[str, TrainingHistory]:
    """Compare server-side gradient aggregation rules under a worker attack.

    The robust rules should converge; the arithmetic mean should not — this
    is the ablation backing the paper's choice of Multi-Krum for phase 2.
    """
    scale = scale if scale is not None else ExperimentScale.small()
    base = ScenarioSpec.from_scale(scale)
    scenarios = [
        base.replace(
            name=f"gar-{rule}", gradient_rule=rule,
            worker_attack=AttackSpec("random_gradient", {"scale": 100.0}),
            num_attacking_workers=scale.declared_byzantine_workers)
        for rule in rules
    ]
    histories = _execute("gar-ablation", scenarios, store, processes)
    return {rule: histories[f"gar-{rule}"] for rule in rules}


def default_attack_suite(num_classes: int = 4) -> Dict[str, Dict]:
    """The attack matrix used by :func:`run_attack_sweep`."""
    return {
        "random_gradient": {"worker_attack": RandomGradientAttack(scale=100.0)},
        "reversed_gradient": {"worker_attack": ReversedGradientAttack(factor=10.0)},
        "sign_flip": {"worker_attack": SignFlipAttack()},
        "little_is_enough": {"worker_attack": LittleIsEnoughAttack(z_factor=1.5)},
        "label_flip": {"worker_attack": LabelFlipPoisoning(num_classes=num_classes)},
        "silent_worker": {"worker_attack": SilentWorker()},
        "corrupted_model": {"server_attack": CorruptedModelAttack(noise_scale=100.0)},
        "equivocation": {"server_attack": EquivocationAttack(magnitude=50.0)},
    }


def run_attack_sweep(scale: Optional[ExperimentScale] = None,
                     attacks: Optional[Dict[str, Dict]] = None,
                     store: Optional[ResultStore] = None,
                     processes: Optional[int] = None,
                     ) -> Dict[str, TrainingHistory]:
    """Run GuanYu against every attack in the suite (workers and servers).

    Suite entries may carry extra scenario fields (``gradient_rule``,
    ``num_workers``, ...) next to the attack instance.  Attack instances
    must come from the Byzantine registry so the sweep can be expressed as
    (serialisable, cacheable) campaign scenarios.
    """
    scale = scale if scale is not None else ExperimentScale.small()
    _, _, _, num_classes = build_workload(scale)
    attacks = attacks if attacks is not None else default_attack_suite(num_classes)
    base = ScenarioSpec.from_scale(scale)
    scenarios = []
    for name, suite_entry in attacks.items():
        entry = dict(suite_entry)
        overrides: Dict[str, object] = {"name": f"attack-{name}"}
        if "worker_attack" in entry:
            overrides["worker_attack"] = \
                AttackSpec.from_attack(entry.pop("worker_attack"))
            overrides["num_attacking_workers"] = entry.pop(
                "num_attacking_workers", scale.declared_byzantine_workers)
        if "server_attack" in entry:
            overrides["server_attack"] = \
                AttackSpec.from_attack(entry.pop("server_attack"))
            overrides["num_attacking_servers"] = entry.pop(
                "num_attacking_servers", scale.declared_byzantine_servers)
        # Remaining suite keys are scenario fields (e.g. ``gradient_rule``);
        # unknown keys raise instead of being silently dropped.
        if "name" in entry:
            raise ValueError("attack suite entries cannot override 'name'; "
                             "the sweep derives it from the suite key")
        overrides.update(entry)
        scenarios.append(base.replace(**overrides))
    histories = _execute("attack-sweep", scenarios, store, processes)
    return {name: histories[f"attack-{name}"] for name in attacks}


def run_quorum_ablation(scale: Optional[ExperimentScale] = None,
                        quorums: Optional[Sequence[int]] = None,
                        store: Optional[ResultStore] = None,
                        processes: Optional[int] = None,
                        ) -> Dict[int, TrainingHistory]:
    """Vary the gradient quorum ``q̄`` between its minimum and maximum.

    Larger quorums make every step slower (more waiting) but aggregate more
    gradients, improving per-update progress — the trade-off discussed in
    the paper's Section 5.3.
    """
    scale = scale if scale is not None else ExperimentScale.small()
    config = ClusterConfig(num_servers=scale.num_servers,
                           num_workers=scale.num_workers,
                           num_byzantine_servers=scale.declared_byzantine_servers,
                           num_byzantine_workers=scale.declared_byzantine_workers)
    if quorums is None:
        quorums = sorted({config.min_gradient_quorum, config.max_gradient_quorum})
    base = ScenarioSpec.from_scale(scale)
    scenarios = [base.replace(name=f"quorum-{quorum}", gradient_quorum=quorum)
                 for quorum in quorums]
    histories = _execute("quorum-ablation", scenarios, store, processes)
    return {quorum: histories[f"quorum-{quorum}"] for quorum in quorums}


def run_scaling_study(scale: Optional[ExperimentScale] = None,
                      worker_counts: Sequence[int] = (6, 9, 12, 18),
                      num_steps: int = 20,
                      store: Optional[ResultStore] = None,
                      processes: Optional[int] = None,
                      ) -> List[Dict[str, float]]:
    """Throughput (updates per simulated second) as the worker pool grows."""
    scale = scale if scale is not None else ExperimentScale.small()
    base = ScenarioSpec.from_scale(scale, num_steps=num_steps,
                                   eval_every=num_steps)
    declared_counts = {
        num_workers: min(scale.declared_byzantine_workers,
                         ClusterConfig.max_admissible_byzantine(num_workers))
        for num_workers in worker_counts
    }
    scenarios = [
        base.replace(name=f"scaling-{num_workers}", num_workers=num_workers,
                     declared_byzantine_workers=declared_counts[num_workers])
        for num_workers in worker_counts
    ]
    histories = _execute("scaling-study", scenarios, store, processes)
    rows = []
    for num_workers in worker_counts:
        history = histories[f"scaling-{num_workers}"]
        rows.append({
            "num_workers": num_workers,
            "declared_byzantine_workers": declared_counts[num_workers],
            "throughput": throughput_updates_per_second(history),
            "final_accuracy": history.final_accuracy(),
        })
    return rows
