"""Ablation studies for the design choices called out in ``DESIGN.md``.

* :func:`run_gar_ablation` — swap the gradient aggregation rule at the
  parameter servers (Multi-Krum vs. median vs. mean, ...) under attack;
* :func:`run_attack_sweep` — GuanYu against every registered attack;
* :func:`run_quorum_ablation` — effect of the quorum size ``q̄`` on
  throughput and per-update quality (the paper's §5.3 observation);
* :func:`run_scaling_study` — throughput as cluster size grows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.byzantine import (
    CorruptedModelAttack,
    EquivocationAttack,
    LabelFlipPoisoning,
    LittleIsEnoughAttack,
    RandomGradientAttack,
    ReversedGradientAttack,
    SignFlipAttack,
    SilentWorker,
)
from repro.core import ClusterConfig, GuanYuTrainer
from repro.experiments.common import (
    ExperimentScale,
    build_workload,
    make_model_factory,
    make_schedule,
)
from repro.metrics import TrainingHistory, throughput_updates_per_second


def _build_trainer(scale: ExperimentScale, *, gradient_rule: str = "multi_krum",
                   model_rule: str = "median", gradient_quorum: Optional[int] = None,
                   num_workers: Optional[int] = None,
                   num_servers: Optional[int] = None,
                   label: str = "ablation", **attack_kwargs) -> GuanYuTrainer:
    train, test, in_features, num_classes = build_workload(scale)
    model_fn = make_model_factory(scale, in_features, num_classes)
    config = ClusterConfig(
        num_servers=num_servers if num_servers is not None else scale.num_servers,
        num_workers=num_workers if num_workers is not None else scale.num_workers,
        num_byzantine_servers=scale.declared_byzantine_servers,
        num_byzantine_workers=scale.declared_byzantine_workers,
        gradient_quorum=gradient_quorum,
    )
    return GuanYuTrainer(config=config, model_fn=model_fn, train_dataset=train,
                         test_dataset=test, batch_size=scale.batch_size,
                         schedule=make_schedule(scale), seed=scale.seed,
                         cost_num_parameters=scale.billed_parameters,
                         gradient_rule_name=gradient_rule,
                         model_rule_name=model_rule, label=label, **attack_kwargs)


def run_gar_ablation(scale: Optional[ExperimentScale] = None,
                     rules: Sequence[str] = ("multi_krum", "median",
                                             "trimmed_mean", "mean"),
                     ) -> Dict[str, TrainingHistory]:
    """Compare server-side gradient aggregation rules under a worker attack.

    The robust rules should converge; the arithmetic mean should not — this
    is the ablation backing the paper's choice of Multi-Krum for phase 2.
    """
    scale = scale if scale is not None else ExperimentScale.small()
    histories = {}
    for rule in rules:
        trainer = _build_trainer(
            scale, gradient_rule=rule, label=f"gar-{rule}",
            worker_attack=RandomGradientAttack(scale=100.0),
            num_attacking_workers=scale.declared_byzantine_workers)
        histories[rule] = trainer.run(scale.num_steps, eval_every=scale.eval_every,
                                      max_eval_samples=scale.max_eval_samples)
    return histories


def default_attack_suite(num_classes: int = 4) -> Dict[str, Dict]:
    """The attack matrix used by :func:`run_attack_sweep`."""
    return {
        "random_gradient": {"worker_attack": RandomGradientAttack(scale=100.0)},
        "reversed_gradient": {"worker_attack": ReversedGradientAttack(factor=10.0)},
        "sign_flip": {"worker_attack": SignFlipAttack()},
        "little_is_enough": {"worker_attack": LittleIsEnoughAttack(z_factor=1.5)},
        "label_flip": {"worker_attack": LabelFlipPoisoning(num_classes=num_classes)},
        "silent_worker": {"worker_attack": SilentWorker()},
        "corrupted_model": {"server_attack": CorruptedModelAttack(noise_scale=100.0)},
        "equivocation": {"server_attack": EquivocationAttack(magnitude=50.0)},
    }


def run_attack_sweep(scale: Optional[ExperimentScale] = None,
                     attacks: Optional[Dict[str, Dict]] = None,
                     ) -> Dict[str, TrainingHistory]:
    """Run GuanYu against every attack in the suite (workers and servers)."""
    scale = scale if scale is not None else ExperimentScale.small()
    _, _, _, num_classes = build_workload(scale)
    attacks = attacks if attacks is not None else default_attack_suite(num_classes)
    histories = {}
    for name, spec in attacks.items():
        kwargs = dict(spec)
        if "worker_attack" in kwargs:
            kwargs.setdefault("num_attacking_workers",
                              scale.declared_byzantine_workers)
        if "server_attack" in kwargs:
            kwargs.setdefault("num_attacking_servers",
                              scale.declared_byzantine_servers)
        trainer = _build_trainer(scale, label=f"attack-{name}", **kwargs)
        histories[name] = trainer.run(scale.num_steps, eval_every=scale.eval_every,
                                      max_eval_samples=scale.max_eval_samples)
    return histories


def run_quorum_ablation(scale: Optional[ExperimentScale] = None,
                        quorums: Optional[Sequence[int]] = None,
                        ) -> Dict[int, TrainingHistory]:
    """Vary the gradient quorum ``q̄`` between its minimum and maximum.

    Larger quorums make every step slower (more waiting) but aggregate more
    gradients, improving per-update progress — the trade-off discussed in
    the paper's Section 5.3.
    """
    scale = scale if scale is not None else ExperimentScale.small()
    config = ClusterConfig(num_servers=scale.num_servers,
                           num_workers=scale.num_workers,
                           num_byzantine_servers=scale.declared_byzantine_servers,
                           num_byzantine_workers=scale.declared_byzantine_workers)
    if quorums is None:
        quorums = sorted({config.min_gradient_quorum, config.max_gradient_quorum})
    histories = {}
    for quorum in quorums:
        trainer = _build_trainer(scale, gradient_quorum=quorum,
                                 label=f"quorum-{quorum}")
        histories[quorum] = trainer.run(scale.num_steps,
                                        eval_every=scale.eval_every,
                                        max_eval_samples=scale.max_eval_samples)
    return histories


def run_scaling_study(scale: Optional[ExperimentScale] = None,
                      worker_counts: Sequence[int] = (6, 9, 12, 18),
                      num_steps: int = 20) -> List[Dict[str, float]]:
    """Throughput (updates per simulated second) as the worker pool grows."""
    scale = scale if scale is not None else ExperimentScale.small()
    rows = []
    for num_workers in worker_counts:
        declared = min(scale.declared_byzantine_workers, (num_workers - 3) // 3)
        local = ExperimentScale(**{**scale.__dict__,
                                   "num_workers": num_workers,
                                   "declared_byzantine_workers": declared,
                                   "num_steps": num_steps})
        trainer = _build_trainer(local, label=f"scaling-{num_workers}")
        history = trainer.run(num_steps, eval_every=num_steps,
                              max_eval_samples=scale.max_eval_samples)
        rows.append({
            "num_workers": num_workers,
            "declared_byzantine_workers": declared,
            "throughput": throughput_updates_per_second(history),
            "final_accuracy": history.final_accuracy(),
        })
    return rows
