"""Section 5.3 overhead breakdown.

The paper quantifies two overheads on the time axis:

* **65 %** — the cost of leaving TensorFlow's distributed runtime and
  handling communication externally (vanilla TF → vanilla GuanYu);
* **~30 %** (up to 33 %) — the additional cost of Byzantine resilience
  (vanilla GuanYu → GuanYu with declared Byzantine nodes): server
  replication, quorum waiting and robust aggregation.

This harness derives the same two ratios from a Figure 3 run, using the
time needed to first reach a common target accuracy (the paper uses the time
to 60 % accuracy on CIFAR-10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.common import ExperimentScale
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.metrics import overhead_percent, time_to_accuracy


@dataclass
class OverheadReport:
    """The two §5.3 overhead percentages plus the underlying measurements."""

    target_accuracy: float
    time_vanilla_tf: float
    time_guanyu_vanilla: float
    time_guanyu_byzantine: float
    runtime_overhead_percent: float
    byzantine_overhead_percent: float

    def as_rows(self) -> Dict[str, float]:
        return {
            "target_accuracy": self.target_accuracy,
            "time_vanilla_tf": self.time_vanilla_tf,
            "time_guanyu_vanilla": self.time_guanyu_vanilla,
            "time_guanyu_byzantine": self.time_guanyu_byzantine,
            "runtime_overhead_percent": self.runtime_overhead_percent,
            "byzantine_overhead_percent": self.byzantine_overhead_percent,
        }


def overhead_report(result: Optional[Figure3Result] = None,
                    scale: Optional[ExperimentScale] = None,
                    target_accuracy: Optional[float] = None) -> OverheadReport:
    """Compute the overhead breakdown from a Figure 3 result.

    Parameters
    ----------
    result:
        An existing :class:`Figure3Result`; when omitted the three systems
        required for the breakdown are run at the given ``scale``.
    target_accuracy:
        Accuracy threshold for the time-to-accuracy measurements (defaults
        to the shared reference target of the Figure 3 result).
    """
    if result is None:
        result = run_figure3(scale=scale, systems=[
            "vanilla_tf", "guanyu_vanilla", "guanyu_f_workers_s1"])
    required = ("vanilla_tf", "guanyu_vanilla", "guanyu_f_workers_s1")
    missing = [name for name in required if name not in result.histories]
    if missing:
        raise ValueError(f"figure 3 result is missing systems: {missing}")

    target = target_accuracy if target_accuracy is not None \
        else result.reference_accuracy()

    def _time(name: str) -> float:
        history = result.histories[name]
        reached = time_to_accuracy(history, target)
        return reached if reached is not None else history.total_time()

    time_tf = _time("vanilla_tf")
    time_vanilla_guanyu = _time("guanyu_vanilla")
    time_byzantine = _time("guanyu_f_workers_s1")
    return OverheadReport(
        target_accuracy=target,
        time_vanilla_tf=time_tf,
        time_guanyu_vanilla=time_vanilla_guanyu,
        time_guanyu_byzantine=time_byzantine,
        runtime_overhead_percent=overhead_percent(time_tf, time_vanilla_guanyu),
        byzantine_overhead_percent=overhead_percent(time_vanilla_guanyu,
                                                    time_byzantine),
    )
