"""Resilience studies: crash-vs-quorum tables and partition-heal curves.

The paper proves liveness as long as every receiver can eventually hear
from a full quorum, and safety from the quorum intersection arithmetic of
Section 3.2.  These harnesses probe the *time-varying* edge of that claim
with the fault-schedule engine:

* :func:`run_crash_quorum_study` — crash ``c`` parameter servers for a
  window of steps, for every combination of crash count and model-quorum
  size ``q``.  The protocol keeps learning while ``c ≤ n − q`` (the
  remaining servers still fill the quorum); beyond that boundary every
  worker is starved and training *freezes* until the servers recover —
  liveness degrades to a stall, never to divergence.  The resulting table
  makes the ``c ≤ n − q`` boundary visible as a jump in stalled steps.
* :func:`run_partition_heal_study` — cut one parameter server away from
  the rest of the cluster for increasingly long windows and measure the
  inter-server spread when the partition heals and at the end of training:
  the phase-3 median contracts the stale replica back, so the final spread
  returns to (near) zero for every heal time.

Both run through the campaign engine, so results are content-addressed:
given a ``store`` the tables are reproduced from cache on re-runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.engine import run_campaign
from repro.campaign.spec import ScenarioSpec
from repro.campaign.store import ResultStore
from repro.experiments.common import ExperimentScale
from repro.faults import FaultEvent, FaultSchedule
from repro.metrics.tracker import TrainingHistory


def _base_spec(scale: Optional[ExperimentScale], trainer: str,
               num_steps: Optional[int]) -> ScenarioSpec:
    scale = scale if scale is not None else ExperimentScale.small()
    spec = ScenarioSpec.from_scale(scale, trainer=trainer)
    if num_steps is not None:
        spec = spec.replace(num_steps=num_steps)
    return spec


def _stalled_steps(history: TrainingHistory) -> int:
    """Steps in which no correct worker computed (training was frozen)."""
    return sum(1 for record in history.records if record.train_loss is None)


def schedule_for_crashes(spec: ScenarioSpec, num_crashed: int, crash_step: int,
                         recover_step: Optional[int]) -> Optional[FaultSchedule]:
    """Crash the last ``num_crashed`` servers for ``[crash_step, recover_step)``.

    The *last* server ids are chosen so the crash set coincides with the
    Byzantine set when both are in play (the adversary controls which of
    its nodes fail).  Returns ``None`` for zero crashes.
    """
    if num_crashed <= 0:
        return None
    server_ids = spec.cluster_config().server_ids()
    if num_crashed > len(server_ids):
        raise ValueError(f"cannot crash {num_crashed} of {len(server_ids)} "
                         f"servers")
    crashed = server_ids[len(server_ids) - num_crashed:]
    return FaultSchedule.crash_window(crashed, crash_step, recover_step)


# --------------------------------------------------------------------------- #
# Crash-vs-quorum study
# --------------------------------------------------------------------------- #
def run_crash_quorum_study(scale: Optional[ExperimentScale] = None,
                           crash_counts: Sequence[int] = (0, 1, 2, 3),
                           quorum_sizes: Optional[Sequence[int]] = None,
                           crash_step: Optional[int] = None,
                           recover_step: Optional[int] = None,
                           trainer: str = "guanyu",
                           num_steps: Optional[int] = None,
                           store: Optional[ResultStore] = None,
                           processes: Optional[int] = None,
                           ) -> Tuple[List[Dict], Dict[str, TrainingHistory]]:
    """Sweep crash count × model quorum; returns ``(rows, histories)``.

    Every scenario declares ``f = 0`` Byzantine servers so the model quorum
    ``q`` can range over ``[3, n]`` freely — crashes are benign silence,
    not Byzantine behaviour, and the liveness boundary under study is
    ``c ≤ n − q``.  The crash window defaults to the middle third of the
    run.
    """
    base = _base_spec(scale, trainer, num_steps).replace(
        declared_byzantine_servers=0)
    config = base.cluster_config()
    if quorum_sizes is None:
        quorum_sizes = range(config.min_model_quorum,
                             config.max_model_quorum + 1)
    crash_at = crash_step if crash_step is not None else base.num_steps // 3
    recover_at = (recover_step if recover_step is not None
                  else 2 * base.num_steps // 3)

    scenarios = []
    for quorum in quorum_sizes:
        for crashed in crash_counts:
            scenarios.append(base.replace(
                name=f"q={quorum}-crashed={crashed}",
                model_quorum=quorum,
                faults=schedule_for_crashes(base, crashed, crash_at,
                                            recover_at)))
    result = run_campaign(scenarios, name="crash_quorum", store=store,
                          processes=processes)

    rows: List[Dict] = []
    histories: Dict[str, TrainingHistory] = {}
    for outcome in result.outcomes:
        spec = outcome.spec
        row: Dict[str, object] = {
            "model_quorum": spec.model_quorum,
            "crashed_servers": sum(
                len(e.nodes) for e in (spec.faults.events if spec.faults else [])
                if e.kind == "crash"),
            "crash_window": (f"[{crash_at}, {recover_at})"
                             if spec.faults else "-"),
            "completed": outcome.status != "failed",
        }
        if outcome.history is not None:
            histories[spec.name] = outcome.history
            final = outcome.history.records[-1]
            row.update({
                "stalled_steps": _stalled_steps(outcome.history),
                "final_accuracy": outcome.history.final_accuracy(),
                "final_spread": final.max_server_spread,
            })
        else:
            row.update({"stalled_steps": None, "final_accuracy": None,
                        "final_spread": None, "error": outcome.error})
        rows.append(row)
    return rows, histories


# --------------------------------------------------------------------------- #
# Partition-heal study
# --------------------------------------------------------------------------- #
def run_partition_heal_study(scale: Optional[ExperimentScale] = None,
                             partition_step: Optional[int] = None,
                             heal_steps: Optional[Sequence[int]] = None,
                             trainer: str = "guanyu",
                             num_steps: Optional[int] = None,
                             store: Optional[ResultStore] = None,
                             processes: Optional[int] = None,
                             ) -> Tuple[List[Dict], Dict[str, TrainingHistory]]:
    """Partition one server away for varying windows; measure re-contraction.

    The cut server stalls with stale parameters; after the heal the phase-3
    coordinate-wise median pulls it back toward the pack.  Rows report the
    spread at the heal step (how far the replica drifted) and at the end of
    training (how completely it re-contracted).
    """
    base = _base_spec(scale, trainer, num_steps)
    config = base.cluster_config()
    cut_at = (partition_step if partition_step is not None
              else base.num_steps // 4)
    if heal_steps is None:
        span = base.num_steps - cut_at
        heal_steps = sorted({cut_at + max(1, span // 4),
                             cut_at + max(2, span // 2),
                             cut_at + max(3, 3 * span // 4)})
    isolated = config.server_ids()[0]
    rest = [node for node in config.server_ids() + config.worker_ids()
            if node != isolated]

    scenarios = []
    for heal_at in heal_steps:
        if not cut_at < heal_at <= base.num_steps:
            raise ValueError(f"heal step {heal_at} outside "
                             f"({cut_at}, {base.num_steps}]")
        schedule = FaultSchedule(events=[
            FaultEvent(step=cut_at, kind="partition",
                       groups=[[isolated], rest], label="cut"),
            FaultEvent(step=heal_at, kind="heal", label="cut"),
        ])
        scenarios.append(base.replace(
            name=f"heal={heal_at}", faults=schedule))
    result = run_campaign(scenarios, name="partition_heal", store=store,
                          processes=processes).raise_on_failure()

    rows: List[Dict] = []
    histories: Dict[str, TrainingHistory] = {}
    for outcome, heal_at in zip(result.outcomes, heal_steps):
        history = outcome.history
        histories[outcome.spec.name] = history
        spreads = {record.step: record.max_server_spread
                   for record in history.records}
        rows.append({
            "isolated": isolated,
            "partition_step": cut_at,
            "heal_step": heal_at,
            "spread_before_heal": spreads.get(heal_at - 1),
            "final_spread": history.records[-1].max_server_spread,
            "final_accuracy": history.final_accuracy(),
        })
    return rows, histories
