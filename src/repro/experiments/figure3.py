"""Figure 3: overhead of GuanYu in a non-Byzantine environment.

The paper compares five systems on accuracy-vs-updates (Fig. 3a/3c) and
accuracy-vs-time (Fig. 3b/3d), for mini-batch sizes 128 and 32:

1. **vanilla TF** — single trusted server, mean aggregation, optimised
   in-framework communication;
2. **GuanYu (vanilla)** — same computation, communication handled outside
   the framework (serialisation overhead);
3. **GuanYu (f̄=0, f=0)** — replicated servers, robust rules, but zero
   declared Byzantine nodes (minimum quorums);
4. **GuanYu (f̄=5, f=0)** — Byzantine workers declared;
5. **GuanYu (f̄=5, f=1)** — Byzantine workers and servers declared.

All five run in a *non-Byzantine environment* (no actual attack); the
declared counts only change quorums and aggregation rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import ClusterConfig, GuanYuTrainer, VanillaTrainer
from repro.experiments.common import (
    ExperimentScale,
    build_workload,
    make_model_factory,
    make_schedule,
)
from repro.metrics import (
    TrainingHistory,
    throughput_updates_per_second,
    time_to_accuracy,
)
from repro.metrics.throughput import steps_to_accuracy

#: the five systems of Figure 3, in the paper's legend order
FIGURE3_SYSTEMS = (
    "vanilla_tf",
    "guanyu_vanilla",
    "guanyu_f0_s0",
    "guanyu_f_workers_s0",
    "guanyu_f_workers_s1",
)


@dataclass
class Figure3Result:
    """Histories of the five systems plus derived summary rows."""

    batch_size: int
    histories: Dict[str, TrainingHistory] = field(default_factory=dict)

    def accuracy_summary(self) -> List[Dict[str, object]]:
        """One row per system: final accuracy, throughput, time-to-target."""
        target = self.reference_accuracy()
        rows = []
        for name, history in self.histories.items():
            rows.append({
                "system": name,
                "final_accuracy": history.final_accuracy(),
                "best_accuracy": history.best_accuracy(),
                "total_time": history.total_time(),
                "throughput": throughput_updates_per_second(history),
                "time_to_target": time_to_accuracy(history, target),
                "steps_to_target": steps_to_accuracy(history, target),
            })
        return rows

    def reference_accuracy(self) -> float:
        """A target accuracy every system reaches (80 % of the best final)."""
        finals = [h.final_accuracy() for h in self.histories.values()]
        return 0.8 * max(finals)


def _declared(scale: ExperimentScale, declared_workers: int,
              declared_servers: int) -> ClusterConfig:
    return ClusterConfig(
        num_servers=scale.num_servers,
        num_workers=scale.num_workers,
        num_byzantine_servers=declared_servers,
        num_byzantine_workers=declared_workers,
    )


def run_figure3(scale: Optional[ExperimentScale] = None,
                batch_size: Optional[int] = None,
                systems: Optional[List[str]] = None) -> Figure3Result:
    """Run the Figure 3 comparison (one batch size).

    Parameters
    ----------
    scale:
        Workload scale (defaults to :meth:`ExperimentScale.small`).
    batch_size:
        Override of the scale's batch size; the paper runs 128 (Fig. 3a/b)
        and 32 (Fig. 3c/d).
    systems:
        Subset of :data:`FIGURE3_SYSTEMS` to run (all by default).
    """
    scale = scale if scale is not None else ExperimentScale.small()
    batch_size = batch_size if batch_size is not None else scale.batch_size
    systems = list(systems) if systems is not None else list(FIGURE3_SYSTEMS)

    train, test, in_features, num_classes = build_workload(scale)
    model_fn = make_model_factory(scale, in_features, num_classes)
    schedule = make_schedule(scale)
    result = Figure3Result(batch_size=batch_size)

    common = dict(model_fn=model_fn, train_dataset=train, test_dataset=test,
                  batch_size=batch_size, schedule=schedule, seed=scale.seed,
                  cost_num_parameters=scale.billed_parameters)

    if "vanilla_tf" in systems:
        trainer = VanillaTrainer(num_workers=scale.num_workers,
                                 external_communication=False,
                                 label="vanilla_tf", **common)
        result.histories["vanilla_tf"] = trainer.run(
            scale.num_steps, eval_every=scale.eval_every,
            max_eval_samples=scale.max_eval_samples)

    if "guanyu_vanilla" in systems:
        trainer = VanillaTrainer(num_workers=scale.num_workers,
                                 external_communication=True,
                                 label="guanyu_vanilla", **common)
        result.histories["guanyu_vanilla"] = trainer.run(
            scale.num_steps, eval_every=scale.eval_every,
            max_eval_samples=scale.max_eval_samples)

    guanyu_variants = {
        "guanyu_f0_s0": (0, 0),
        "guanyu_f_workers_s0": (scale.declared_byzantine_workers, 0),
        "guanyu_f_workers_s1": (scale.declared_byzantine_workers,
                                scale.declared_byzantine_servers),
    }
    for name, (declared_workers, declared_servers) in guanyu_variants.items():
        if name not in systems:
            continue
        config = _declared(scale, declared_workers, declared_servers)
        trainer = GuanYuTrainer(config=config, label=name, **common)
        result.histories[name] = trainer.run(
            scale.num_steps, eval_every=scale.eval_every,
            max_eval_samples=scale.max_eval_samples)

    return result
