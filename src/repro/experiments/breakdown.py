"""Empirical breakdown-point search: the resilience boundary as data.

The paper's guarantee is conditional — GuanYu tolerates up to ``f̄``
Byzantine workers *provided* ``n̄ ≥ 3f̄ + 3`` and the GAR is
``(α, f)``-Byzantine-resilient.  This module measures where that boundary
actually sits: for every (GAR, adversary) pair it **bisects the largest
number of attacking workers the rule survives**, where "survives" means the
attacked run's final training loss stays within a tolerance band of an
honest baseline run of the same rule.

The search is fully declarative: every evaluation is a
:class:`~repro.campaign.spec.ScenarioSpec` (so results are cached in an
optional :class:`~repro.campaign.store.ResultStore` under their usual
content addresses and shared with any other campaign), the attacked runs
declare ``f̄`` equal to the actual attacker count (the rule is always
configured for exactly the attack it faces), and for a pinned seed the
produced table is bit-reproducible — the ``breakdown`` CLI subcommand and
the scheduled smoke workflow rely on that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adversary.registry import get_adversary
from repro.aggregation import available_rules, get_rule
from repro.campaign.spec import ScenarioSpec
from repro.campaign.store import ResultStore
from repro.core.config import ClusterConfig
from repro.experiments.common import ExperimentScale, workload_attack_kwargs

#: adversaries the default boundary table sweeps (strongest first)
DEFAULT_ADVERSARIES = ("omniscient_descent", "collusion", "reversed_gradient")
#: GARs the default boundary table sweeps
DEFAULT_GARS = ("mean", "median", "multi_krum")


@dataclass
class BreakdownResult:
    """Outcome of one (GAR, adversary) bisection."""

    gradient_rule: str
    adversary: str
    #: largest attacker count that still converged (the empirical breakdown
    #: point); attacks at ``breakdown_f + 1`` broke training (if admissible)
    breakdown_f: int
    #: largest attacker count the cluster arithmetic admits (``n̄ ≥ 3f̄+3``
    #: intersected with the rule's own minimum-input requirement)
    admissible_f: int
    baseline_loss: float
    #: final loss per evaluated attacker count (sorted by ``f``)
    losses: Dict[int, float] = field(default_factory=dict)
    evaluations: int = 0

    def as_row(self) -> Dict[str, object]:
        return {
            "gradient_rule": self.gradient_rule,
            "adversary": self.adversary,
            "breakdown_f": self.breakdown_f,
            "admissible_f": self.admissible_f,
            "survives_admissible_max": self.breakdown_f >= self.admissible_f,
            "baseline_loss": self.baseline_loss,
            "evaluations": self.evaluations,
        }


def _attack_spec(scale: ExperimentScale, gar: str, adversary: Optional[str],
                 adversary_kwargs: Optional[Dict],
                 num_attackers: int) -> ScenarioSpec:
    """The scenario evaluating ``gar`` against ``num_attackers`` colluders.

    The declared worker budget equals the actual attacker count — the rule
    is configured for exactly the attack it faces — and the gradient quorum
    is widened to the rule's minimum-input requirement where the default
    ``2f̄ + 3`` would be too small (Bulyan needs ``4f̄ + 3`` inputs).
    """
    rule = get_rule(gar, num_byzantine=num_attackers)
    config = ClusterConfig(num_servers=scale.num_servers,
                           num_workers=scale.num_workers,
                           num_byzantine_workers=num_attackers)
    quorum = max(config.gradient_quorum, rule.minimum_inputs())
    spec = ScenarioSpec.from_scale(
        scale,
        name=f"breakdown-{gar}-{adversary or 'honest'}-f{num_attackers}",
        trainer="guanyu",
        gradient_rule=gar,
        declared_byzantine_workers=num_attackers,
        declared_byzantine_servers=0,
        gradient_quorum=quorum,
        adversary=(None if adversary is None or num_attackers == 0
                   else {"name": adversary,
                         "kwargs": dict(adversary_kwargs or {})}),
        num_attacking_workers=num_attackers if adversary else 0,
    )
    return spec


def admissible_max_attackers(scale: ExperimentScale, gar: str) -> int:
    """Largest attacker count for which the evaluation scenario is valid."""
    ceiling = ClusterConfig.max_admissible_byzantine(scale.num_workers)
    best = 0
    for count in range(1, ceiling + 1):
        try:
            _attack_spec(scale, gar, None, None, count).validate()
        except ValueError:
            break
        best = count
    return best


def _final_loss(spec: ScenarioSpec,
                store: Optional[ResultStore]) -> Tuple[float, bool]:
    """``(final training loss, was_cached)`` of one evaluation scenario."""
    from repro.runtime import run as run_scenario  # lazy: import cycle

    result = run_scenario(spec, store=store)
    return (float(result.history.records[-1].train_loss),
            result.status == "cached")


def run_breakdown_search(scale: Optional[ExperimentScale] = None,
                         gars: Sequence[str] = DEFAULT_GARS,
                         adversaries: Sequence[str] = DEFAULT_ADVERSARIES,
                         adversary_kwargs: Optional[Dict[str, Dict]] = None,
                         loss_factor: float = 1.5,
                         loss_slack: float = 0.25,
                         store: Optional[ResultStore] = None
                         ) -> List[BreakdownResult]:
    """Bisect the empirical breakdown point of every (GAR, adversary) pair.

    Parameters
    ----------
    scale:
        Workload knobs (default: :meth:`ExperimentScale.small`).
    gars, adversaries:
        Names to cross.  Unknown GAR names raise ``KeyError``; adversary
        names resolve through the adversary registry (native strategies or
        wrapped legacy attacks).
    adversary_kwargs:
        Optional per-adversary constructor keyword overrides
        (``{"collusion": {"attack": "sign_flip"}}``).
    loss_factor, loss_slack:
        A run *survives* when its final loss ``L`` satisfies
        ``L ≤ loss_factor · baseline + loss_slack`` against the same-rule
        honest baseline — multiplicative band for workloads where the
        baseline is large, additive slack where it is near zero.
    store:
        Optional result store: every evaluation (baseline and attacked) is
        cached under its ordinary scenario content address, so repeated or
        widened searches only run the new cells.

    Returns one :class:`BreakdownResult` per pair, in input order.
    """
    scale = scale if scale is not None else ExperimentScale.small()
    for gar in gars:
        if gar not in available_rules():
            raise KeyError(f"unknown aggregation rule '{gar}'; "
                           f"available: {available_rules()}")
    kwargs_by_adversary = dict(adversary_kwargs or {})
    for adversary in adversaries:
        defaults = workload_attack_kwargs(adversary, scale.dataset)
        if defaults:
            kwargs = {**defaults, **kwargs_by_adversary.get(adversary, {})}
            kwargs_by_adversary[adversary] = kwargs
        # Fail on typos and inapplicable strategies *before* the first
        # baseline trains, not after.
        built = get_adversary(adversary,
                              **kwargs_by_adversary.get(adversary, {}))
        if not built.attacks_workers:
            raise ValueError(
                f"adversary '{adversary}' corrupts only server models; the "
                f"breakdown search probes worker-side resilience (the GAR "
                f"aggregating gradients) — pick a worker-side adversary")

    results: List[BreakdownResult] = []
    for gar in gars:
        admissible = admissible_max_attackers(scale, gar)
        baseline_spec = _attack_spec(scale, gar, None, None, 0)
        baseline_loss, _ = _final_loss(baseline_spec, store)
        threshold = loss_factor * baseline_loss + loss_slack
        for adversary in adversaries:
            losses: Dict[int, float] = {0: baseline_loss}
            evaluations = 0

            def survives(count: int) -> bool:
                nonlocal evaluations
                spec = _attack_spec(scale, gar, adversary,
                                    kwargs_by_adversary.get(adversary),
                                    count)
                loss, _ = _final_loss(spec, store)
                losses[count] = loss
                evaluations += 1
                return loss <= threshold

            # Bisection for the largest surviving f: f = 0 survives by
            # construction (no attackers), and survival is treated as
            # monotone in the attacker count.
            low, high = 0, admissible
            while low < high:
                middle = (low + high + 1) // 2
                if survives(middle):
                    low = middle
                else:
                    high = middle - 1
            results.append(BreakdownResult(
                gradient_rule=gar, adversary=adversary, breakdown_f=low,
                admissible_f=admissible, baseline_loss=baseline_loss,
                losses=dict(sorted(losses.items())),
                evaluations=evaluations))
    return results


def breakdown_table(results: Sequence[BreakdownResult]) -> List[Dict[str, object]]:
    """The resilience-boundary table (one row per (GAR, adversary) pair)."""
    return [result.as_row() for result in results]
