"""Shared configuration for the experiment harnesses.

The paper's testbed (Grid5000, 18 workers + 6 servers, CIFAR-10, the 1.75 M
parameter CNN, thousands of updates) does not fit a CPU-only reproduction
budget, so every experiment is parameterised by an :class:`ExperimentScale`
that controls how far the workload is scaled down while keeping the same
*structure*: the cluster sizes and quorums are the paper's, only the model,
the dataset and the number of steps shrink.  ``EXPERIMENTS.md`` documents the
scale used for the recorded runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.data.datasets import Dataset, SyntheticImageDataset, make_blobs_dataset
from repro.nn import build_model
from repro.nn.module import Module
from repro.nn.schedules import ConstantSchedule, LearningRateSchedule


@dataclass
class ExperimentScale:
    """Knobs controlling how far an experiment is scaled down.

    Attributes
    ----------
    num_workers, num_servers:
        Cluster size.  Defaults follow the paper (18 workers, 6 servers);
        the ``small()`` preset shrinks them for fast benchmark runs while
        keeping the 1/3 Byzantine headroom.
    declared_byzantine_workers, declared_byzantine_servers:
        The ``f̄`` / ``f`` declared to GuanYu (the paper uses 5 and 1).
    num_steps, eval_every:
        Number of model updates and accuracy-evaluation cadence.
    batch_size:
        Per-worker mini-batch size (paper: 128 and 32).
    dataset:
        ``"images"`` for the CIFAR-10-shaped synthetic dataset, ``"blobs"``
        for the fastest workload.
    model:
        ``"paper_cnn"``, ``"small_cnn"``, ``"mlp"`` or ``"softmax"``.
    learning_rate:
        Constant learning rate (paper: 0.001; the scaled-down tasks use a
        larger one so convergence is visible within few steps).
    """

    num_workers: int = 18
    num_servers: int = 6
    declared_byzantine_workers: int = 5
    declared_byzantine_servers: int = 1
    num_steps: int = 120
    eval_every: int = 10
    batch_size: int = 32
    dataset: str = "blobs"
    model: str = "mlp"
    learning_rate: float = 0.05
    dataset_size: int = 1200
    image_size: int = 8
    seed: int = 42
    max_eval_samples: int = 256
    #: parameter count billed to the simulated clock (defaults to the paper's
    #: Table 1 CNN so the time-axis shape matches Figure 3); ``None`` bills
    #: the actual, scaled-down model.
    billed_parameters: Optional[int] = 1_756_426

    @classmethod
    def small(cls) -> "ExperimentScale":
        """A configuration that keeps every benchmark under ~1 minute."""
        return cls(num_workers=9, num_servers=6, declared_byzantine_workers=2,
                   declared_byzantine_servers=1, num_steps=60, eval_every=10,
                   batch_size=16, dataset="blobs", model="softmax",
                   dataset_size=800, learning_rate=0.05)

    @classmethod
    def paper_like(cls) -> "ExperimentScale":
        """The paper's cluster shape with a reduced model/dataset/steps."""
        return cls(num_workers=18, num_servers=6, declared_byzantine_workers=5,
                   declared_byzantine_servers=1, num_steps=120, eval_every=10,
                   batch_size=32, dataset="images", model="mlp",
                   dataset_size=2000, image_size=8, learning_rate=0.05)


def workload_num_classes(dataset: str) -> int:
    """Label-space size of a named workload (shared with the sweep CLI)."""
    if dataset == "images":
        return 10
    if dataset == "blobs":
        return 4
    raise ValueError(f"unknown dataset '{dataset}'")


def workload_attack_kwargs(name: str, dataset: str) -> dict:
    """Workload-dependent constructor defaults for an attack/adversary name.

    The one shared fix-up point for behaviours whose parameters must track
    the workload — today only ``label_flip``, which must flip within the
    dataset's label range rather than its default 10 classes.  Used by the
    sweep CLI's ``--attacks`` and ``--adversaries`` axes and by the
    breakdown search, so the same name always builds the same behaviour.
    """
    if name == "label_flip":
        return {"num_classes": workload_num_classes(dataset)}
    return {}


def build_workload(scale: ExperimentScale) -> Tuple[Dataset, Dataset, int, int]:
    """Build the train/test datasets for a scale.

    Returns ``(train, test, in_features, num_classes)`` where ``in_features``
    is the flattened feature dimension used by MLP/softmax models.
    """
    num_classes = workload_num_classes(scale.dataset)
    if scale.dataset == "images":
        data = SyntheticImageDataset(num_samples=scale.dataset_size,
                                     image_size=scale.image_size, seed=scale.seed)
        in_features = 3 * scale.image_size * scale.image_size
    else:
        data = make_blobs_dataset(num_samples=scale.dataset_size,
                                  num_classes=num_classes,
                                  num_features=8, cluster_std=1.0, seed=scale.seed)
        in_features = 8
    train, test = data.split(0.85, seed=scale.seed)
    return train, test, in_features, num_classes


def make_model_factory(scale: ExperimentScale, in_features: int,
                       num_classes: int) -> Callable[[], Module]:
    """Build the shared model factory for a scale (all nodes use the same seed)."""
    name = scale.model
    if name == "paper_cnn":
        return lambda: build_model("paper_cnn", seed=scale.seed,
                                   image_size=32, num_classes=num_classes)
    if name == "small_cnn":
        return lambda: build_model("small_cnn", seed=scale.seed,
                                   image_size=scale.image_size,
                                   num_classes=num_classes)
    if name == "mlp":
        return lambda: build_model("mlp", seed=scale.seed, in_features=in_features,
                                   hidden=(32,), num_classes=num_classes)
    if name == "softmax":
        return lambda: build_model("softmax", seed=scale.seed,
                                   in_features=in_features, num_classes=num_classes)
    raise ValueError(f"unknown model '{name}'")


def make_schedule(scale: ExperimentScale) -> LearningRateSchedule:
    """The constant learning-rate schedule the paper's experiments use."""
    return ConstantSchedule(scale.learning_rate)


def build_scale_bundle(scale: ExperimentScale):
    """Everything a trainer needs for one scale, built in canonical order.

    Returns ``(train, test, model_fn, schedule)``.  Shared by the campaign
    engine (one bundle per scenario) and the batched multi-replica runtime
    (one bundle per replica seed) so that both construct workloads from a
    seed in exactly the same way.
    """
    train, test, in_features, num_classes = build_workload(scale)
    model_fn = make_model_factory(scale, in_features, num_classes)
    return train, test, model_fn, make_schedule(scale)
