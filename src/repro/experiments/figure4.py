"""Figure 4: impact of Byzantine players on convergence.

Three systems run under attack:

* **vanilla TF** with no Byzantine node (reference);
* **vanilla TF (Byzantine)** — the same deployment with one Byzantine worker
  sending corrupted gradients: convergence collapses;
* **GuanYu (f̄, f)** — Byzantine workers *and* a Byzantine parameter server
  actively attacking: convergence is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.byzantine import RandomGradientAttack, EquivocationAttack
from repro.byzantine.base import ServerAttack, WorkerAttack
from repro.campaign.engine import run_campaign
from repro.campaign.spec import AttackSpec, CampaignSpec, ScenarioSpec
from repro.experiments.common import ExperimentScale
from repro.metrics import TrainingHistory

FIGURE4_SYSTEMS = ("vanilla_tf", "vanilla_tf_byzantine", "guanyu_byzantine")


@dataclass
class Figure4Result:
    """Histories of the three Figure 4 curves."""

    histories: Dict[str, TrainingHistory] = field(default_factory=dict)

    def final_accuracies(self) -> Dict[str, float]:
        return {name: history.final_accuracy()
                for name, history in self.histories.items()}


def run_figure4(scale: Optional[ExperimentScale] = None,
                worker_attack: Optional[WorkerAttack] = None,
                server_attack: Optional[ServerAttack] = None,
                num_attacking_workers: Optional[int] = None,
                num_attacking_servers: int = 1,
                store=None, processes: Optional[int] = None) -> Figure4Result:
    """Run the Figure 4 comparison.

    By default the attacks are the paper's "totally corrupted data" worker
    attack and the "different bad models to different workers" equivocating
    server; both can be swapped for any *registered* attack instance (the
    attack-sweep ablation does exactly that) — the run is expressed as
    campaign scenarios, which must be serialisable.
    """
    scale = scale if scale is not None else ExperimentScale.small()
    worker_attack = worker_attack if worker_attack is not None else \
        RandomGradientAttack(scale=100.0)
    server_attack = server_attack if server_attack is not None else \
        EquivocationAttack(magnitude=50.0)
    if num_attacking_workers is None:
        num_attacking_workers = scale.declared_byzantine_workers
    # The guarantees (and the trainer's validation) only cover attacks within
    # the declared Byzantine counts.
    num_attacking_workers = min(num_attacking_workers,
                                scale.declared_byzantine_workers)
    num_attacking_servers = min(num_attacking_servers,
                                scale.declared_byzantine_servers)

    base = ScenarioSpec.from_scale(scale)
    worker_attack_spec = AttackSpec.from_attack(worker_attack)
    server_attack_spec = AttackSpec.from_attack(server_attack)
    scenarios = [
        # Reference: vanilla TF without any Byzantine node.
        base.replace(name="vanilla_tf", trainer="vanilla",
                     gradient_rule="mean"),
        # Vanilla TF with a single Byzantine worker: averaging has breakdown 0.
        base.replace(name="vanilla_tf_byzantine", trainer="vanilla",
                     gradient_rule="mean", worker_attack=worker_attack_spec,
                     num_attacking_workers=1),
        # GuanYu under simultaneous worker and server attacks.
        base.replace(name="guanyu_byzantine", trainer="guanyu",
                     worker_attack=worker_attack_spec,
                     num_attacking_workers=num_attacking_workers,
                     server_attack=server_attack_spec,
                     num_attacking_servers=num_attacking_servers),
    ]
    campaign_result = run_campaign(CampaignSpec(name="figure4",
                                                scenarios=scenarios),
                                   store=store, processes=processes)
    campaign_result.raise_on_failure()
    return Figure4Result(histories=campaign_result.histories())
