"""Figure 4: impact of Byzantine players on convergence.

Three systems run under attack:

* **vanilla TF** with no Byzantine node (reference);
* **vanilla TF (Byzantine)** — the same deployment with one Byzantine worker
  sending corrupted gradients: convergence collapses;
* **GuanYu (f̄, f)** — Byzantine workers *and* a Byzantine parameter server
  actively attacking: convergence is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.byzantine import RandomGradientAttack, EquivocationAttack
from repro.byzantine.base import ServerAttack, WorkerAttack
from repro.core import ClusterConfig, GuanYuTrainer, VanillaTrainer
from repro.experiments.common import (
    ExperimentScale,
    build_workload,
    make_model_factory,
    make_schedule,
)
from repro.metrics import TrainingHistory

FIGURE4_SYSTEMS = ("vanilla_tf", "vanilla_tf_byzantine", "guanyu_byzantine")


@dataclass
class Figure4Result:
    """Histories of the three Figure 4 curves."""

    histories: Dict[str, TrainingHistory] = field(default_factory=dict)

    def final_accuracies(self) -> Dict[str, float]:
        return {name: history.final_accuracy()
                for name, history in self.histories.items()}


def run_figure4(scale: Optional[ExperimentScale] = None,
                worker_attack: Optional[WorkerAttack] = None,
                server_attack: Optional[ServerAttack] = None,
                num_attacking_workers: Optional[int] = None,
                num_attacking_servers: int = 1) -> Figure4Result:
    """Run the Figure 4 comparison.

    By default the attacks are the paper's "totally corrupted data" worker
    attack and the "different bad models to different workers" equivocating
    server; both can be swapped (the attack-sweep ablation does exactly that).
    """
    scale = scale if scale is not None else ExperimentScale.small()
    worker_attack = worker_attack if worker_attack is not None else \
        RandomGradientAttack(scale=100.0)
    server_attack = server_attack if server_attack is not None else \
        EquivocationAttack(magnitude=50.0)
    if num_attacking_workers is None:
        num_attacking_workers = scale.declared_byzantine_workers
    # The guarantees (and the trainer's validation) only cover attacks within
    # the declared Byzantine counts.
    num_attacking_workers = min(num_attacking_workers,
                                scale.declared_byzantine_workers)
    num_attacking_servers = min(num_attacking_servers,
                                scale.declared_byzantine_servers)

    train, test, in_features, num_classes = build_workload(scale)
    model_fn = make_model_factory(scale, in_features, num_classes)
    schedule = make_schedule(scale)
    common = dict(model_fn=model_fn, train_dataset=train, test_dataset=test,
                  batch_size=scale.batch_size, schedule=schedule, seed=scale.seed,
                  cost_num_parameters=scale.billed_parameters)
    result = Figure4Result()

    # Reference: vanilla TF without any Byzantine node.
    trainer = VanillaTrainer(num_workers=scale.num_workers, label="vanilla_tf",
                             **common)
    result.histories["vanilla_tf"] = trainer.run(
        scale.num_steps, eval_every=scale.eval_every,
        max_eval_samples=scale.max_eval_samples)

    # Vanilla TF with a single Byzantine worker: averaging has breakdown 0.
    trainer = VanillaTrainer(num_workers=scale.num_workers,
                             worker_attack=worker_attack, num_attacking_workers=1,
                             label="vanilla_tf_byzantine", **common)
    result.histories["vanilla_tf_byzantine"] = trainer.run(
        scale.num_steps, eval_every=scale.eval_every,
        max_eval_samples=scale.max_eval_samples)

    # GuanYu under simultaneous worker and server attacks.
    config = ClusterConfig(num_servers=scale.num_servers,
                           num_workers=scale.num_workers,
                           num_byzantine_servers=scale.declared_byzantine_servers,
                           num_byzantine_workers=scale.declared_byzantine_workers)
    trainer = GuanYuTrainer(config=config,
                            worker_attack=worker_attack,
                            num_attacking_workers=num_attacking_workers,
                            server_attack=server_attack,
                            num_attacking_servers=num_attacking_servers,
                            label="guanyu_byzantine", **common)
    result.histories["guanyu_byzantine"] = trainer.run(
        scale.num_steps, eval_every=scale.eval_every,
        max_eval_samples=scale.max_eval_samples)

    return result
