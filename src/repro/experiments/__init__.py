"""Experiment harnesses reproducing every table and figure of the paper.

Each module packages one experiment from Section 5 (or the supplementary
material) as a plain function returning structured results, so that the
benchmark suite (``benchmarks/``) and the example scripts (``examples/``)
share exactly the same code:

=====================  ===========================================================
``table1``             the Table 1 CNN architecture check
``figure3``            overhead in a non-Byzantine environment (Fig. 3a–d)
``figure4``            impact of Byzantine players on convergence (Fig. 4)
``table2``             alignment of parameter-difference vectors (Table 2)
``overhead``           the §5.3 overhead breakdown (65 % / ~30 % numbers)
``ablations``          GAR ablation, attack sweep, cluster-size scaling
``resilience``         crash-vs-quorum and partition-heal fault studies
``breakdown``          empirical breakdown-point search per (GAR, adversary)
``heterogeneity``      accuracy vs. data skew × GAR × adversary (non-i.i.d.)
=====================  ===========================================================

The experiments run on a scaled-down workload (synthetic data, small models,
fewer steps) so that they complete in minutes on a CPU; the
:class:`ExperimentScale` dataclass centralises those knobs, and
``EXPERIMENTS.md`` records how the measured shapes compare with the paper.
"""

from repro.experiments.common import ExperimentScale, build_workload, make_model_factory
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.table1 import table1_report
from repro.experiments.table2 import run_table2
from repro.experiments.overhead import OverheadReport, overhead_report
from repro.experiments.ablations import (
    run_attack_sweep,
    run_gar_ablation,
    run_quorum_ablation,
    run_scaling_study,
)
from repro.experiments.breakdown import (
    BreakdownResult,
    breakdown_table,
    run_breakdown_search,
)
from repro.experiments.resilience import (
    run_crash_quorum_study,
    run_partition_heal_study,
    schedule_for_crashes,
)
from repro.experiments.heterogeneity import (
    HeterogeneityResult,
    heterogeneity_table,
    run_heterogeneity_study,
)

__all__ = [
    "ExperimentScale",
    "build_workload",
    "make_model_factory",
    "table1_report",
    "Figure3Result",
    "run_figure3",
    "Figure4Result",
    "run_figure4",
    "run_table2",
    "OverheadReport",
    "overhead_report",
    "run_gar_ablation",
    "run_attack_sweep",
    "run_quorum_ablation",
    "run_scaling_study",
    "BreakdownResult",
    "breakdown_table",
    "run_breakdown_search",
    "run_crash_quorum_study",
    "run_partition_heal_study",
    "schedule_for_crashes",
    "HeterogeneityResult",
    "heterogeneity_table",
    "run_heterogeneity_study",
]
