"""Table 1: the CNN model architecture (kernel sizes, strides, parameter count)."""

from __future__ import annotations

from typing import Dict, List

from repro.nn.models import PaperCNN


def table1_report() -> Dict[str, object]:
    """Build the Table 1 reproduction: layer inventory and parameter count.

    Returns a dictionary with one entry per layer of the paper's CNN plus the
    total parameter count, which the paper states is roughly 1.75 million.
    """
    model = PaperCNN()
    layers: List[Dict[str, object]] = [
        {"layer": "Input", "shape": "3x32x32"},
        {"layer": "Conv1", "kernel": "5x5x64", "stride": "1x1",
         "parameters": int(model.conv1.num_parameters())},
        {"layer": "Pool1", "kernel": "3x3", "stride": "2x2", "parameters": 0},
        {"layer": "Conv2", "kernel": "5x5x64", "stride": "1x1",
         "parameters": int(model.conv2.num_parameters())},
        {"layer": "Pool2", "kernel": "3x3", "stride": "2x2", "parameters": 0},
        {"layer": "FC1", "units": 384, "parameters": int(model.fc1.num_parameters())},
        {"layer": "FC2", "units": 192, "parameters": int(model.fc2.num_parameters())},
        {"layer": "FC3", "units": 10, "parameters": int(model.fc3.num_parameters())},
    ]
    return {
        "layers": layers,
        "total_parameters": int(model.num_parameters()),
        "paper_total_parameters": 1_750_000,
    }
