"""Table 2: alignment of the correct servers' parameter-difference vectors.

The supplementary material validates Assumption 2 of the proof by recording,
every 20 steps late in training, the two largest norms among parameter
difference vectors and the cosine of the angle between those two difference
vectors; the reported cos(φ) values are close to 1.  This harness performs
the same measurement on a GuanYu run by probing the correct servers'
parameters after every step.
"""

from __future__ import annotations

from typing import List, Optional

from repro.byzantine import CorruptedModelAttack
from repro.core import ClusterConfig, GuanYuTrainer
from repro.experiments.common import (
    ExperimentScale,
    build_workload,
    make_model_factory,
    make_schedule,
)
from repro.theory import AlignmentProbe, AlignmentSample


def run_table2(scale: Optional[ExperimentScale] = None, interval: int = 20,
               warmup_fraction: float = 0.25,
               attack_servers: bool = False) -> List[AlignmentSample]:
    """Run GuanYu and record alignment samples every ``interval`` steps.

    Parameters
    ----------
    scale:
        Workload scale (defaults to :meth:`ExperimentScale.small`).
    interval:
        Sampling interval in steps (the paper uses 20).
    warmup_fraction:
        Fraction of the run discarded before sampling starts — the assumption
        is only expected to hold "after some large step number".
    attack_servers:
        When ``True`` a Byzantine server sends corrupted models throughout,
        checking that the alignment survives an active adversary.
    """
    scale = scale if scale is not None else ExperimentScale.small()
    train, test, in_features, num_classes = build_workload(scale)
    model_fn = make_model_factory(scale, in_features, num_classes)
    schedule = make_schedule(scale)

    config = ClusterConfig(num_servers=scale.num_servers,
                           num_workers=scale.num_workers,
                           num_byzantine_servers=scale.declared_byzantine_servers,
                           num_byzantine_workers=scale.declared_byzantine_workers)
    kwargs = {}
    if attack_servers:
        kwargs.update(server_attack=CorruptedModelAttack(noise_scale=50.0),
                      num_attacking_servers=scale.declared_byzantine_servers)
    trainer = GuanYuTrainer(config=config, model_fn=model_fn, train_dataset=train,
                            test_dataset=test, batch_size=scale.batch_size,
                            schedule=schedule, seed=scale.seed, label="table2",
                            cost_num_parameters=scale.billed_parameters, **kwargs)

    probe = AlignmentProbe(interval=interval)
    warmup_steps = int(warmup_fraction * scale.num_steps)
    for step in range(scale.num_steps):
        trainer.step(step)
        if step >= warmup_steps:
            probe.maybe_record(step, [server.current_parameters()
                                      for server in trainer.correct_servers])
    return probe.samples
