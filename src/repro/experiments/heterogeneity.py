"""Heterogeneity study: accuracy vs. data skew × GAR × adversary.

The paper's convergence guarantees (and the GARs it builds on) assume the
honest workers' gradients are i.i.d. estimates of one true gradient.  As
the honest data distribution fragments — Dirichlet label skew, pathological
shard splits, sample imbalance — the honest gradient spread widens and a
Byzantine vector no longer has to leave the honest cloud to steer the
aggregate: the *empirical* breakdown point of every distance-based rule
degrades.  This harness makes that degradation a reproducible table:

* rows: ``gradient_rule × adversary`` (``adversary=None`` is the honest
  baseline row for the rule);
* columns: heterogeneity levels, from ``iid`` through increasingly skewed
  partitions (``dirichlet=10 … dirichlet=0.1``, ``shards=K``, ...);
* cells: final test accuracy (the companion ``losses`` map carries the
  final training loss for the same cells).

Everything runs through the campaign engine, so the study is
content-addressed: given a ``store`` the table is reproduced from cache,
and seed-replica cells batch onto the vectorised runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.engine import run_campaign
from repro.campaign.spec import AdversarySpec, ScenarioSpec
from repro.campaign.store import ResultStore
from repro.experiments.common import ExperimentScale, workload_attack_kwargs
from repro.hetero import HeteroSpec
from repro.metrics.tracker import TrainingHistory

#: default skew axis: i.i.d. through near-single-class workers
DEFAULT_SKEWS = ("iid", "dirichlet=10", "dirichlet=1", "dirichlet=0.1")


@dataclass
class HeterogeneityResult:
    """Accuracy-vs-skew curve of one ``(gradient_rule, adversary)`` pair."""

    gradient_rule: str
    adversary: Optional[str]
    #: skew label → final test accuracy (``None`` for a failed cell)
    accuracies: Dict[str, Optional[float]] = field(default_factory=dict)
    #: skew label → final training loss (``None`` for a failed cell)
    losses: Dict[str, Optional[float]] = field(default_factory=dict)


def hetero_axis(skews: Sequence[str],
                min_samples: Optional[int] = None
                ) -> List[Tuple[str, Optional[HeteroSpec]]]:
    """Parse skew tokens into ``(label, hetero)`` pairs.

    ``min_samples`` (typically the scenario's batch size) floors every
    worker's shard so extreme skews cannot starve a worker below one full
    mini-batch — which would silently shrink its batches and conflate
    batch-size effects with the label skew under study.
    """
    axis: List[Tuple[str, Optional[HeteroSpec]]] = []
    for token in skews:
        hetero = HeteroSpec.from_token(token)
        if hetero is not None and min_samples is not None \
                and hetero.partition != "shards":
            hetero.min_samples = max(hetero.min_samples, min_samples)
        axis.append((token, hetero))
    if not axis:
        raise ValueError("need at least one skew token")
    return axis


def run_heterogeneity_study(scale: Optional[ExperimentScale] = None,
                            skews: Sequence[str] = DEFAULT_SKEWS,
                            gars: Sequence[str] = ("mean", "median",
                                                   "multi_krum"),
                            adversaries: Sequence[Optional[str]] = (
                                None, "collusion"),
                            seeds: Optional[Sequence[int]] = None,
                            num_steps: Optional[int] = None,
                            store: Optional[ResultStore] = None,
                            processes: Optional[int] = None,
                            batch_seeds: bool = False,
                            ) -> Tuple[List[HeterogeneityResult],
                                       Dict[str, TrainingHistory]]:
    """Sweep skew × GAR × adversary (× seed); returns ``(results, histories)``.

    ``adversaries`` entries are adversary-registry names (legacy attack
    names wrap automatically); ``None`` (or ``"none"``) rows run honestly
    and anchor each rule's skew tolerance before any attack is applied.
    The attacking count is the declared Byzantine worker count, i.e. the
    strongest in-model adversary.

    ``seeds`` replicates every cell and reports the per-cell **mean**
    final accuracy/loss over the completed replicas — with
    ``batch_seeds=True`` the replicas of one cell run as a single
    vectorised multi-replica execution.  Default: the scale's one seed.
    """
    scale = scale if scale is not None else ExperimentScale.small()
    base = ScenarioSpec.from_scale(scale)
    if num_steps is not None:
        base = base.replace(num_steps=num_steps)
    axis = hetero_axis(skews, min_samples=base.batch_size)
    seed_list = list(seeds) if seeds else [base.seed]

    scenarios = []
    cell_labels = []
    for label, hetero in axis:
        for gar in gars:
            for adversary in adversaries:
                adversary = None if adversary in (None, "none") else adversary
                for seed in seed_list:
                    name = f"{label}-{gar}-{adversary or 'honest'}"
                    if len(seed_list) > 1:
                        name += f"-seed={seed}"
                    spec = base.replace(
                        name=name, gradient_rule=gar, hetero=hetero,
                        seed=seed,
                        adversary=(AdversarySpec(
                            name=adversary,
                            kwargs=workload_attack_kwargs(adversary,
                                                          base.dataset))
                                   if adversary else None))
                    scenarios.append(spec)
                    cell_labels.append(label)
    result = run_campaign(scenarios, name="heterogeneity", store=store,
                          processes=processes, batch_seeds=batch_seeds)

    by_pair: Dict[Tuple[str, Optional[str]], HeterogeneityResult] = {}
    accuracy_samples: Dict[Tuple[str, Optional[str], str], List[float]] = {}
    loss_samples: Dict[Tuple[str, Optional[str], str], List[float]] = {}
    histories: Dict[str, TrainingHistory] = {}
    for outcome, label in zip(result.outcomes, cell_labels):
        spec = outcome.spec
        adversary = spec.adversary.name if spec.adversary else None
        pair = by_pair.setdefault(
            (spec.gradient_rule, adversary),
            HeterogeneityResult(gradient_rule=spec.gradient_rule,
                                adversary=adversary))
        cell = (spec.gradient_rule, adversary, label)
        pair.accuracies.setdefault(label, None)
        pair.losses.setdefault(label, None)
        if outcome.history is not None:
            histories[spec.name] = outcome.history
            accuracy = outcome.history.final_accuracy()
            if accuracy == accuracy:  # threaded runs report NaN
                accuracy_samples.setdefault(cell, []).append(accuracy)
            final = outcome.history.records[-1]
            if final.train_loss is not None:
                loss_samples.setdefault(cell, []).append(final.train_loss)
    for (gar, adversary, label), samples in accuracy_samples.items():
        by_pair[(gar, adversary)].accuracies[label] = \
            float(sum(samples) / len(samples))
    for (gar, adversary, label), samples in loss_samples.items():
        by_pair[(gar, adversary)].losses[label] = \
            float(sum(samples) / len(samples))
    return list(by_pair.values()), histories


def heterogeneity_table(results: Sequence[HeterogeneityResult]
                        ) -> List[Dict[str, object]]:
    """Rows for :func:`repro.plotting.format_table`: one per (rule, adversary).

    Skew labels become columns, so the degradation reads left-to-right and
    rules/adversaries compare top-to-bottom.
    """
    rows = []
    for result in results:
        row: Dict[str, object] = {
            "gradient_rule": result.gradient_rule,
            "adversary": result.adversary or "-",
        }
        row.update(result.accuracies)
        rows.append(row)
    return rows
