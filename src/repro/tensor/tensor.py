"""Core :class:`Tensor` type with reverse-mode automatic differentiation.

The implementation follows the classic tape-based design: every operation
creates a new ``Tensor`` that stores references to its parents and a closure
computing the local vector-Jacobian products.  Calling :meth:`Tensor.backward`
performs a topological sort of the graph and accumulates gradients.

Only the operations required by the neural-network layers in
:mod:`repro.nn` are implemented, but they are implemented carefully
(broadcasting-aware, numerically stable where it matters) so the engine can
be used as a general-purpose mini autograd library.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling gradient tracking.

    Used by inference code paths (e.g. accuracy evaluation) to avoid building
    the autograd graph.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether gradient tracking is currently enabled."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that its shape matches ``shape``.

    Numpy broadcasting expands dimensions during the forward pass; the
    corresponding backward pass must sum gradients over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were of size 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(data: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


class Tensor:
    """A multi-dimensional array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like initial value.  Stored as ``float64`` by default.
    requires_grad:
        When ``True`` the tensor participates in gradient computation and
        ``backward`` accumulates into :attr:`grad`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Iterable["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple["Tensor", ...] = tuple(_parents) if self.requires_grad else ()
        self._backward: Optional[Callable[[np.ndarray], None]] = (
            _backward if self.requires_grad else None
        )
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar value held by a single-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a deep copy detached from the graph."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return self.data.shape[0]

    # ------------------------------------------------------------------ #
    # Autograd machinery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate gradients from this tensor through the graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1 for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order of the graph reachable from ``self``.
        order: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            visited.add(id(node))
            while stack:
                current, parents_iter = stack[-1]
                advanced = False
                for parent in parents_iter:
                    if id(parent) not in visited and parent.requires_grad:
                        visited.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self)

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                other._accumulate(self.data.swapaxes(-1, -2) @ grad)

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Reductions and shape manipulation
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            expanded = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(data, axis=axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient equally between ties to keep the op well-defined.
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * g)

        return Tensor._make(data, (self,), backward)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(self.data.dtype)
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: Optional[np.random.Generator] = None,
              requires_grad: bool = False) -> "Tensor":
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            pieces = np.split(grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, pieces):
                if tensor.requires_grad:
                    tensor._accumulate(np.squeeze(piece, axis=axis))

        return Tensor._make(data, tuple(tensors), backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        return Tensor._make(data, tuple(tensors), backward)
