"""Numerical gradient checking for the autograd engine.

Used by the test suite to validate every differentiable operation against
central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Estimate ``d func / d inputs[index]`` with central differences."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = float(func(*inputs).data.sum())
        flat[i] = original - epsilon
        minus = float(func(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad


def gradient_check(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    epsilon: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Compare analytic gradients against finite differences.

    Parameters
    ----------
    func:
        Function mapping the input tensors to an output tensor; the check is
        performed on the sum of the output.
    inputs:
        Tensors, each with ``requires_grad=True``, to differentiate against.

    Returns
    -------
    bool
        ``True`` when all analytic gradients match the numerical estimates
        within the given tolerances.  Raises ``AssertionError`` otherwise so
        that test failures carry the offending values.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = func(*inputs)
    output.sum().backward()

    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        numeric = numerical_gradient(func, inputs, index, epsilon=epsilon)
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            max_err = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs error {max_err:.3e}"
            )
    return True
