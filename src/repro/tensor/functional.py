"""Functional neural-network operations built on :class:`repro.tensor.Tensor`.

The convolution and pooling operators are implemented with an im2col
formulation, which keeps them expressible with dense matrix products (and
therefore fast enough on CPU for the scaled-down experiments of this
reproduction).
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.tensor.tensor import Tensor

IntOrPair = Union[int, Tuple[int, int]]


def _pair(value: IntOrPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (int(value), int(value))


# --------------------------------------------------------------------------- #
# Elementwise activations
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


# --------------------------------------------------------------------------- #
# Softmax / cross-entropy
# --------------------------------------------------------------------------- #
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log-likelihood of integer class targets.

    Parameters
    ----------
    log_probs:
        Tensor of shape ``(batch, classes)`` holding log-probabilities.
    targets:
        Integer array of shape ``(batch,)``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    batch = log_probs.shape[0]
    picked = log_probs[np.arange(batch), targets]
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy between ``logits`` and integer ``targets``."""
    return nll_loss(log_softmax(logits, axis=-1), targets)


# --------------------------------------------------------------------------- #
# im2col helpers
# --------------------------------------------------------------------------- #
def _im2col_indices(x_shape, kernel_h, kernel_w, stride_h, stride_w, pad_h, pad_w):
    batch, channels, height, width = x_shape
    out_h = (height + 2 * pad_h - kernel_h) // stride_h + 1
    out_w = (width + 2 * pad_w - kernel_w) // stride_w + 1

    i0 = np.repeat(np.arange(kernel_h), kernel_w)
    i0 = np.tile(i0, channels)
    i1 = stride_h * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel_w), kernel_h * channels)
    j1 = stride_w * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel_h * kernel_w).reshape(-1, 1)
    return k, i, j, out_h, out_w


def _im2col(x: np.ndarray, kernel_h, kernel_w, stride_h, stride_w, pad_h, pad_w):
    padded = np.pad(
        x, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)), mode="constant"
    )
    k, i, j, out_h, out_w = _im2col_indices(
        x.shape, kernel_h, kernel_w, stride_h, stride_w, pad_h, pad_w
    )
    cols = padded[:, k, i, j]
    channels = x.shape[1]
    cols = cols.transpose(1, 2, 0).reshape(kernel_h * kernel_w * channels, -1)
    return cols, out_h, out_w


def _col2im(cols, x_shape, kernel_h, kernel_w, stride_h, stride_w, pad_h, pad_w):
    batch, channels, height, width = x_shape
    padded = np.zeros(
        (batch, channels, height + 2 * pad_h, width + 2 * pad_w), dtype=cols.dtype
    )
    k, i, j, out_h, out_w = _im2col_indices(
        x_shape, kernel_h, kernel_w, stride_h, stride_w, pad_h, pad_w
    )
    cols_reshaped = cols.reshape(channels * kernel_h * kernel_w, -1, batch)
    cols_reshaped = cols_reshaped.transpose(2, 0, 1)
    np.add.at(padded, (slice(None), k, i, j), cols_reshaped)
    if pad_h == 0 and pad_w == 0:
        return padded
    return padded[:, :, pad_h: pad_h + height, pad_w: pad_w + width]


# --------------------------------------------------------------------------- #
# Convolution and pooling
# --------------------------------------------------------------------------- #
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor = None,
    stride: IntOrPair = 1,
    padding: IntOrPair = 0,
) -> Tensor:
    """2-D convolution over a batch of NCHW inputs.

    Parameters
    ----------
    x:
        Input of shape ``(batch, in_channels, height, width)``.
    weight:
        Filters of shape ``(out_channels, in_channels, kernel_h, kernel_w)``.
    bias:
        Optional bias of shape ``(out_channels,)``.
    stride, padding:
        Integer or ``(h, w)`` pair.
    """
    stride_h, stride_w = _pair(stride)
    pad_h, pad_w = _pair(padding)
    out_channels, in_channels, kernel_h, kernel_w = weight.shape
    batch = x.shape[0]

    cols, out_h, out_w = _im2col(
        x.data, kernel_h, kernel_w, stride_h, stride_w, pad_h, pad_w
    )
    w_flat = weight.data.reshape(out_channels, -1)
    out = w_flat @ cols
    out = out.reshape(out_channels, out_h, out_w, batch).transpose(3, 0, 1, 2)
    if bias is not None:
        out = out + bias.data.reshape(1, out_channels, 1, 1)

    x_shape = x.data.shape

    def backward(grad: np.ndarray) -> None:
        grad_flat = grad.transpose(1, 2, 3, 0).reshape(out_channels, -1)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if weight.requires_grad:
            grad_w = (grad_flat @ cols.T).reshape(weight.data.shape)
            weight._accumulate(grad_w)
        if x.requires_grad:
            grad_cols = w_flat.T @ grad_flat
            grad_x = _col2im(
                grad_cols, x_shape, kernel_h, kernel_w,
                stride_h, stride_w, pad_h, pad_w,
            )
            x._accumulate(grad_x)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out, parents, backward)


def max_pool2d(
    x: Tensor,
    kernel_size: IntOrPair,
    stride: IntOrPair = None,
    padding: IntOrPair = 0,
) -> Tensor:
    """Max pooling over NCHW inputs.

    Padding is applied symmetrically with ``-inf`` so that padded positions
    can never be selected as the maximum (this matches TensorFlow's ``SAME``
    pooling used by the paper's Table 1 model when ``padding`` is chosen
    accordingly).  Inputs whose padded spatial size is not divisible by the
    stride are cropped at the bottom/right edge.
    """
    kernel_h, kernel_w = _pair(kernel_size)
    if stride is None:
        stride = (kernel_h, kernel_w)
    stride_h, stride_w = _pair(stride)
    pad_h, pad_w = _pair(padding)

    batch, channels, height, width = x.shape
    data = x.data
    if pad_h or pad_w:
        data = np.pad(
            data,
            ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)),
            mode="constant",
            constant_values=-np.inf,
        )
    padded_h, padded_w = data.shape[2], data.shape[3]
    out_h = (padded_h - kernel_h) // stride_h + 1
    out_w = (padded_w - kernel_w) // stride_w + 1

    # Build a strided view of all pooling windows: (B, C, out_h, out_w, kh, kw)
    windows = np.lib.stride_tricks.sliding_window_view(
        data, (kernel_h, kernel_w), axis=(2, 3)
    )[:, :, ::stride_h, ::stride_w, :, :]
    windows = windows[:, :, :out_h, :out_w, :, :]
    out = windows.max(axis=(4, 5))

    # Record argmax positions for the backward pass.
    flat_windows = windows.reshape(batch, channels, out_h, out_w, -1)
    argmax = flat_windows.argmax(axis=-1)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_padded = np.zeros_like(data)
        kh_idx, kw_idx = np.unravel_index(argmax, (kernel_h, kernel_w))
        b_idx, c_idx, oh_idx, ow_idx = np.meshgrid(
            np.arange(batch), np.arange(channels),
            np.arange(out_h), np.arange(out_w), indexing="ij",
        )
        h_idx = oh_idx * stride_h + kh_idx
        w_idx = ow_idx * stride_w + kw_idx
        np.add.at(grad_padded, (b_idx, c_idx, h_idx, w_idx), grad)
        if pad_h or pad_w:
            grad_x = grad_padded[:, :, pad_h: pad_h + height, pad_w: pad_w + width]
        else:
            grad_x = grad_padded
        x._accumulate(grad_x)

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size: IntOrPair, stride: IntOrPair = None) -> Tensor:
    """Average pooling over NCHW inputs."""
    kernel_h, kernel_w = _pair(kernel_size)
    if stride is None:
        stride = (kernel_h, kernel_w)
    stride_h, stride_w = _pair(stride)

    batch, channels, height, width = x.shape
    out_h = (height - kernel_h) // stride_h + 1
    out_w = (width - kernel_w) // stride_w + 1

    windows = np.lib.stride_tricks.sliding_window_view(
        x.data, (kernel_h, kernel_w), axis=(2, 3)
    )[:, :, ::stride_h, ::stride_w, :, :]
    windows = windows[:, :, :out_h, :out_w, :, :]
    out = windows.mean(axis=(4, 5))
    scale = 1.0 / (kernel_h * kernel_w)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_x = np.zeros_like(x.data)
        for kh in range(kernel_h):
            for kw in range(kernel_w):
                grad_x[:, :, kh: kh + out_h * stride_h: stride_h,
                       kw: kw + out_w * stride_w: stride_w] += grad * scale
        x._accumulate(grad_x)

    return Tensor._make(out, (x,), backward)


def flatten(x: Tensor) -> Tensor:
    """Flatten all dimensions except the batch dimension."""
    return x.reshape(x.shape[0], -1)
