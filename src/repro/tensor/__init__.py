"""Minimal reverse-mode automatic differentiation engine on top of numpy.

This package is the substrate that replaces the TensorFlow low-level APIs
used by the original GuanYu implementation.  It provides a :class:`Tensor`
type that records the operations applied to it and can back-propagate
gradients through the resulting computation graph.

The engine is intentionally small but complete enough to express the CNN of
the paper's Table 1 (convolutions, pooling, dense layers, ReLU, softmax
cross-entropy) as well as the MLPs used in the fast experiments.

Example
-------
>>> import numpy as np
>>> from repro.tensor import Tensor
>>> x = Tensor(np.ones((2, 3)), requires_grad=True)
>>> y = (x * 2.0).sum()
>>> y.backward()
>>> x.grad.tolist()
[[2.0, 2.0, 2.0], [2.0, 2.0, 2.0]]
"""

from repro.tensor.tensor import Tensor, no_grad
from repro.tensor.functional import (
    conv2d,
    cross_entropy,
    log_softmax,
    max_pool2d,
    nll_loss,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.tensor.gradcheck import gradient_check

__all__ = [
    "Tensor",
    "no_grad",
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "conv2d",
    "max_pool2d",
    "gradient_check",
]
