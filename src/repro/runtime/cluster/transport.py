"""Socket transport of the process cluster runtime.

Each node process owns one listening socket and a :class:`SocketTransport`
around it.  The data plane is **connection-per-message**: a send opens a
connection to the recipient's listener, writes one frame, and closes.  That
trades throughput for fault transparency — a SIGKILLed peer is simply a
refused connection, and a respawned peer re-binds the same address with no
connection state to repair.  Senders retry refused connections briefly
(respawn gap, listener not yet bound) and then treat the peer as dead.

Delivery semantics mirror :class:`repro.runtime.threads.ThreadedTransport`
frame for frame: per-``(kind, step)`` buckets keyed by sender with
first-message deduplication, ``wait_quorum`` blocking until ``quorum``
distinct senders arrived, ``abandon_step`` discarding mail of sat-out
steps, and an optional :class:`~repro.faults.FaultController` consulted on
the *sender* side exactly as the threaded transport does — plus a second,
receiver-side partition check at the socket layer, so a partitioned link
drops frames even if a buggy sender forwarded them.  Both checks are pure
hash functions of ``(seed, link, step)``, so double filtering is idempotent
and the cross-runtime loss-trajectory equivalence is preserved.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.faults import FaultController
from repro.network.message import MessageKind
from repro.runtime.cluster.protocol import Frame, FrameError, recv_frame, send_frame
from repro.runtime.threads import QuorumTimeout

__all__ = ["Address", "SocketTransport", "bind_listener", "connect",
           "unix_sockets_available"]

#: JSON-friendly address: ``{"family": "unix", "path": ...}`` or
#: ``{"family": "tcp", "host": ..., "port": ...}``
Address = Dict[str, object]

#: seconds between connection retries while a peer (re)binds its listener
_RETRY_SLEEP = 0.02


def bind_listener(address: Address, backlog: int = 128) -> socket.socket:
    """Bind and listen on ``address``; raises ``OSError`` when taken."""
    if address["family"] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.bind(str(address["path"]))
            sock.listen(backlog)
        except OSError:
            sock.close()
            raise
        return sock
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((str(address["host"]), int(address["port"])))
        sock.listen(backlog)
    except OSError:
        sock.close()
        raise
    return sock


def connect(address: Address, timeout: Optional[float] = None) -> socket.socket:
    """Open a connection to ``address`` (raises ``OSError`` on refusal)."""
    if address["family"] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        target = str(address["path"])
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        target = (str(address["host"]), int(address["port"]))
    try:
        if timeout is not None:
            sock.settimeout(timeout)
        sock.connect(target)
        sock.settimeout(None)
    except OSError:
        sock.close()
        raise
    return sock


def unix_sockets_available() -> bool:
    """Whether ``AF_UNIX`` sockets work here (the default transport)."""
    return hasattr(socket, "AF_UNIX")


class SocketTransport:
    """Per-process message endpoint with threaded-transport semantics."""

    def __init__(self, node_id: str, listener: socket.socket,
                 jitter: float = 0.0, seed: int = 0,
                 fault_controller: Optional[FaultController] = None,
                 send_deadline: float = 60.0,
                 on_observe: Optional[Callable[[str, int, np.ndarray],
                                               None]] = None) -> None:
        self.node_id = node_id
        self._listener = listener
        self.jitter = jitter
        self.faults = fault_controller
        self.send_deadline = send_deadline
        self.on_observe = on_observe
        self._rng = np.random.default_rng(seed)
        self._addresses: Dict[str, Address] = {}
        self._lock = threading.Lock()
        self._condition = threading.Condition()
        self._buffers: Dict[Tuple[str, int], Dict[str, np.ndarray]] = \
            defaultdict(dict)
        self._abandoned: set = set()
        self._closed = False
        self.messages_sent = 0
        self.messages_suppressed = 0
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True,
                                               name=f"accept-{node_id}")
        self._accept_thread.start()

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #
    def set_addresses(self, addresses: Dict[str, Address]) -> None:
        """Install the supervisor-distributed ``node_id → address`` map."""
        self._addresses = dict(addresses)

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed — shutdown
            thread = threading.Thread(target=self._serve, args=(conn,),
                                      daemon=True)
            thread.start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            with conn:
                while True:
                    frame = recv_frame(conn)
                    if frame is None:
                        return
                    self._dispatch(frame)
        except (FrameError, OSError):
            return  # a torn connection loses its in-flight frame, like UDP

    def _dispatch(self, frame: Frame) -> None:
        if frame.kind == "observe":
            if self.on_observe is not None and frame.payload is not None:
                self.on_observe(frame.sender, frame.step, frame.payload)
            return
        if frame.payload is None:
            return
        # Socket-layer partition enforcement: the receiving endpoint drops
        # frames of a blocked link even if the sender forwarded them.
        if self.faults is not None and self.faults.link_blocked(
                frame.sender, self.node_id, frame.step):
            with self._lock:
                self.messages_suppressed += 1
            return
        with self._condition:
            if frame.step in self._abandoned:
                return  # this node sat the step out; discard late mail
            bucket = self._buffers[(frame.kind, frame.step)]
            # Keep only the first frame per sender (deduplication).
            bucket.setdefault(frame.sender, frame.payload)
            self._condition.notify_all()

    def abandon_step(self, step: int) -> None:
        """Drop (and keep dropping) this node's mail for a sat-out step."""
        with self._condition:
            self._abandoned.add(step)
            for key in [key for key in self._buffers if key[1] == step]:
                del self._buffers[key]

    def wait_quorum(self, kind: MessageKind, step: int, quorum: int,
                    timeout: float = 30.0) -> List[np.ndarray]:
        """Block until ``quorum`` distinct senders delivered, return payloads.

        Payloads are returned in canonical sender order — the threaded
        transport orders by global send sequence instead, but under the
        full quorums and permutation-invariant rules the equivalence gate
        covers, the aggregated multiset (hence the result) is identical.
        """
        deadline = time.monotonic() + timeout
        with self._condition:
            while True:
                bucket = self._buffers[(kind.value, step)]
                if len(bucket) >= quorum:
                    payloads = [bucket[sender]
                                for sender in sorted(bucket)[:quorum]]
                    # Late frames for this (kind, step) are discarded.
                    del self._buffers[(kind.value, step)]
                    return payloads
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise QuorumTimeout(
                        f"{self.node_id} timed out waiting for {quorum} "
                        f"'{kind.value}' frames at step {step} "
                        f"(got {len(bucket)})")
                self._condition.wait(timeout=remaining)

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    def send(self, recipient: str, kind: MessageKind, step: int,
             payload: Optional[np.ndarray]) -> None:
        """Send one data frame; ``payload=None`` models Byzantine silence."""
        if payload is None:
            return
        frame = Frame(kind=kind.value, sender=self.node_id,
                      recipient=recipient, step=step,
                      payload=np.asarray(payload, dtype=np.float64))
        with self._lock:
            self.messages_sent += 1
        delay = 0.0
        duplicate = False
        if self.jitter > 0:
            with self._lock:  # the generator is not thread-safe
                delay = float(self._rng.uniform(0.0, self.jitter))
        if self.faults is not None:
            decision = self.faults.on_send(self.node_id, recipient,
                                           kind.value, step)
            if not decision.deliver:
                with self._lock:
                    self.messages_suppressed += 1
                return
            delay = decision.apply_to_delay(delay)
            duplicate = decision.duplicate
        self._schedule(frame, delay)
        if duplicate:
            # Mirrors the other transports: the copy arrives one delay
            # later and per-sender deduplication at the receiver absorbs it.
            self._schedule(Frame(kind=frame.kind, sender=frame.sender,
                                 recipient=frame.recipient, step=frame.step,
                                 payload=frame.payload), 2 * delay)

    def send_observation(self, recipient: str, step: int,
                         gradient: np.ndarray) -> None:
        """Copy an honest gradient to a Byzantine node's observation board."""
        self._transmit(Frame(kind="observe", sender=self.node_id,
                             recipient=recipient, step=step,
                             payload=np.asarray(gradient, dtype=np.float64)))

    def _schedule(self, frame: Frame, delay: float) -> None:
        if delay > 0:
            timer = threading.Timer(delay, self._transmit, args=(frame,))
            timer.daemon = True
            timer.start()
        else:
            self._transmit(frame)

    def _transmit(self, frame: Frame) -> None:
        """One connection, one frame.  Retries while the peer (re)binds.

        A recipient that stays unreachable past the deadline is treated as
        dead and the frame is dropped — exactly what a crashed peer looks
        like, and quorums are what make that survivable.
        """
        address = self._addresses.get(frame.recipient)
        if address is None:
            raise KeyError(f"unknown recipient '{frame.recipient}'")
        deadline = time.monotonic() + self.send_deadline
        while True:
            try:
                conn = connect(address, timeout=self.send_deadline)
                try:
                    send_frame(conn, frame)
                finally:
                    conn.close()
                return
            except OSError:
                if self._closed or time.monotonic() >= deadline:
                    with self._lock:
                        self.messages_suppressed += 1
                    return
                time.sleep(_RETRY_SLEEP)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        if self._listener.family == getattr(socket, "AF_UNIX", None):
            try:
                os.unlink(self._listener.getsockname())
            except (OSError, TypeError):
                pass
