"""Node process entry point of the cluster runtime.

``python -m repro.runtime.cluster.node`` reads one JSON configuration
object from stdin and runs a single GuanYu node — one parameter server or
one worker — as a real OS process.  The protocol logic is **identical** to
the threaded runtime's node loops (and reuses :mod:`repro.core.nodes`
unmodified); only the transport differs: frames over sockets instead of
in-process queues, and lifecycle/metric frames to the supervising process
over a persistent control connection.

Every node rebuilds the scenario's workload from the spec it receives —
datasets, partitions, model factory, attacks, adversary, fault controller —
using exactly the seed constants the other runtimes use (loader
``seed+1000+i``, worker rng ``seed+2000+i``, server rng ``seed+3000+i``),
which is what makes the cross-runtime loss-trajectory equivalence hold.

Exit codes (collected by the supervisor):

====  ======================================================
0     clean shutdown
11    could not bind the assigned listener address
12    invalid configuration on stdin
13    debug hook ``die_before_ready`` (tests only)
14    unrecoverable run error (details travel in an ERROR frame)
====  ======================================================
"""

from __future__ import annotations

import json
import socket
import sys
import threading
import time
import traceback
from typing import Dict, List, Optional

import numpy as np

EXIT_OK = 0
EXIT_BIND_FAILED = 11
EXIT_CONFIG_INVALID = 12
EXIT_DEBUG_DIED = 13
EXIT_RUN_FAILED = 14

#: wall-clock seconds one unit of profile delay_multiplier excess adds
#: (same constant as the threaded runtime)
HETERO_STRAGGLER_UNIT = 0.002


class _ControlChannel:
    """Persistent frame connection to the supervisor (thread-safe writes)."""

    def __init__(self, sock: socket.socket, node_id: str) -> None:
        from repro.runtime.cluster.protocol import send_frame

        self._sock = sock
        self._node_id = node_id
        self._send_frame = send_frame
        self._lock = threading.Lock()

    def send(self, kind: str, step: int = -1, payload=None,
             **meta) -> None:
        from repro.runtime.cluster.protocol import Frame

        frame = Frame(kind=kind, sender=self._node_id,
                      recipient="supervisor", step=step, payload=payload,
                      meta=meta)
        with self._lock:
            self._send_frame(self._sock, frame)


class ClusterNodeProcess:
    """Shared machinery of :class:`ClusterWorkerProcess` /
    :class:`ClusterServerProcess`: workload construction, the control
    channel, fault bookkeeping, and the readiness handshake."""

    def __init__(self, config: Dict) -> None:
        from repro.campaign.spec import ScenarioSpec

        self.node_id: str = config["node_id"]
        self.role: str = config["role"]
        self.index: int = int(config["index"])
        self.num_steps: int = int(config["num_steps"])
        self.resume_step: int = int(config.get("resume_step", 0))
        self.snapshot = config.get("snapshot")
        self.trace_enabled: bool = bool(config.get("trace", False))
        self.metrics_enabled: bool = bool(config.get("metrics", False))
        self.send_snapshots: bool = bool(config.get("send_snapshots", False))
        self.debug: Dict = config.get("debug") or {}
        self.address = config["address"]
        self.control_address = config["control"]
        self.spec = ScenarioSpec.from_dict(config["spec"])
        self.control: Optional[_ControlChannel] = None
        self.transport = None
        self._started = threading.Event()
        self._shutdown = threading.Event()
        self._addresses: Dict[str, Dict] = {}
        self._start_time = 0.0
        self._build()

    # ------------------------------------------------------------------ #
    # Workload construction (mirrors ThreadedClusterRuntime.__init__)
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        from repro.adversary.engine import wire_attacks
        from repro.aggregation import get_rule
        from repro.core.nodes import ServerNode, WorkerNode
        from repro.data.loader import DataLoader, partition_dataset
        from repro.experiments.common import build_scale_bundle
        from repro.faults import FaultController
        from repro.hetero import DEFAULT_PROFILE

        spec = self.spec
        self.config = spec.cluster_config()
        train, _test, model_fn, schedule = build_scale_bundle(spec.to_scale())
        self.schedule = schedule
        worker_attack = (spec.worker_attack.build()
                         if spec.worker_attack else None)
        server_attack = (spec.server_attack.build()
                         if spec.server_attack else None)
        self.adversary = spec.adversary.build() if spec.adversary else None

        (self.coordinator, worker_attacks, server_attacks,
         self.attacking_workers, self.attacking_servers) = wire_attacks(
            config=self.config, seed=spec.seed,
            worker_attack=worker_attack,
            num_attacking_workers=spec.resolved_num_attacking_workers(),
            server_attack=server_attack,
            num_attacking_servers=spec.resolved_num_attacking_servers(),
            gradient_rule_name=spec.gradient_rule, adversary=self.adversary)

        worker_ids = self.config.worker_ids()
        server_ids = self.config.server_ids()
        self.faults = None
        if spec.faults:
            spec.faults.validate(known_nodes=worker_ids + server_ids)
            self.faults = FaultController(spec.faults, seed=spec.seed)

        hetero = spec.hetero
        profiles = [hetero.profile_for(i) if hetero else DEFAULT_PROFILE
                    for i in range(len(worker_ids))]
        self.straggler_sleep = 0.0

        if self.role == "worker":
            shards = partition_dataset(train, len(worker_ids),
                                       sharding=spec.sharding, hetero=hetero,
                                       seed=spec.seed)
            profile = profiles[self.index]
            if profile.delay_multiplier != 1.0:
                self.straggler_sleep = ((profile.delay_multiplier - 1.0)
                                        * HETERO_STRAGGLER_UNIT)
            loader = DataLoader(shards[self.index],
                                batch_size=profile.batch_size or spec.batch_size,
                                seed=spec.seed + 1000 + self.index)
            self.node = WorkerNode(
                node_id=self.node_id, model=model_fn(), loader=loader,
                model_aggregator=get_rule(
                    spec.model_rule,
                    num_byzantine=self.config.num_byzantine_servers),
                attack=worker_attacks[self.node_id],
                seed=spec.seed + 2000 + self.index,
                local_steps=profile.local_steps, schedule=schedule)
        else:
            self.node = ServerNode(
                node_id=self.node_id, model=model_fn(),
                gradient_aggregator=get_rule(
                    spec.gradient_rule,
                    num_byzantine=self.config.num_byzantine_workers),
                model_aggregator=get_rule(
                    spec.model_rule,
                    num_byzantine=self.config.num_byzantine_servers),
                schedule=schedule, attack=server_attacks[self.node_id],
                seed=spec.seed + 3000 + self.index)

        if self.faults is not None:
            self.node.attack = self.faults.gate_attack(self.node_id,
                                                       self.node.attack)

        # Observation board: only the Byzantine worker processes read
        # plans, so only they pay for one.  Honest workers *feed* the
        # boards with OBSERVE frames instead (see the worker loop).
        self._board = None
        if self.adversary is not None and self.adversary.requires_observation \
                and self.attacking_workers \
                and self.node_id in self.attacking_workers:
            self.coordinator.enable_board(self._expected_publishers,
                                          timeout=spec.quorum_timeout)
            self._board = self.coordinator

    def _expected_publishers(self, step: int) -> List[str]:
        """Honest workers whose gradients are observable at ``step`` —
        the same participation fixpoint the threaded board uses."""
        honest = [worker_id for worker_id in self.config.worker_ids()
                  if worker_id not in self.attacking_workers]
        if self.faults is None:
            return honest
        workers, _ = self.faults.participating_nodes(
            self.config.worker_ids(), self.config.server_ids(),
            self.config.model_quorum, self.config.gradient_quorum, step)
        participating = set(workers)
        return [worker_id for worker_id in honest
                if worker_id in participating]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Bind the listener, handshake with the supervisor, await START."""
        import os

        from repro.runtime.cluster.protocol import recv_frame
        from repro.runtime.cluster.transport import (
            SocketTransport,
            bind_listener,
            connect,
        )

        try:
            listener = bind_listener(self.address)
        except OSError as exc:
            print(f"{self.node_id}: cannot bind {self.address}: {exc}",
                  file=sys.stderr, flush=True)
            sys.exit(EXIT_BIND_FAILED)

        on_observe = None
        if self._board is not None:
            board = self._board

            def on_observe(sender: str, step: int,
                           gradient: np.ndarray) -> None:
                board.publish(sender, step, gradient)

        self.transport = SocketTransport(
            self.node_id, listener, jitter=self.spec.jitter,
            seed=self.spec.seed + 4000 + self.index,
            fault_controller=self.faults,
            send_deadline=self.spec.quorum_timeout, on_observe=on_observe)

        control_sock = connect(self.control_address, timeout=30.0)
        self.control = _ControlChannel(control_sock, self.node_id)
        reader = threading.Thread(target=self._control_loop,
                                  args=(control_sock, recv_frame),
                                  daemon=True, name="control")
        reader.start()
        self.control.send("ready", address=self.address, pid=os.getpid(),
                          role=self.role)
        if self.debug.get("hang_after_ready"):
            while True:  # probe-timeout escalation test: go silent
                time.sleep(3600)
        if not self._started.wait(timeout=120.0):
            raise RuntimeError(f"{self.node_id} never received START")
        self.transport.set_addresses(self._addresses)
        self._start_time = time.perf_counter()

    def _control_loop(self, sock: socket.socket, recv_frame) -> None:
        while True:
            try:
                frame = recv_frame(sock)
            except OSError:
                return
            if frame is None:
                return
            if frame.kind == "start":
                self._addresses = frame.meta["addresses"]
                self._started.set()
            elif frame.kind == "ping":
                if not self.debug.get("hang_after_ready"):
                    self.control.send("pong")
            elif frame.kind == "shutdown":
                self._shutdown.set()

    def _maybe_straggle(self) -> None:
        if self.straggler_sleep > 0:
            time.sleep(self.straggler_sleep)

    def _crashed_now(self, step: int) -> bool:
        return (self.faults is not None
                and not self.faults.node_alive(self.node_id, step))

    def _park_for_kill(self, step: int) -> None:
        """Report the scheduled crash, then wait for the supervisor's
        SIGKILL — the process really dies; a later recover event makes the
        supervisor respawn a fresh incarnation from this step's state.

        The data-plane listener closes *before* the report: between the
        report and the SIGKILL this process is protocol-dead but its
        socket would otherwise keep accepting frames, and a fast peer's
        post-crash-step frame buffered here dies with the process instead
        of being retried into the respawned incarnation's re-bound
        listener."""
        self.transport.close()
        self.control.send("crashed", step=step)
        while True:
            time.sleep(3600)

    def _sits_out(self, step: int) -> bool:
        """Non-crash sit-out: the participation fixpoint leaves this node
        short of a quorum at ``step`` (same rule as the other runtimes)."""
        if self.faults is None:
            return False
        workers, servers = self.faults.participating_nodes(
            self.config.worker_ids(), self.config.server_ids(),
            self.config.model_quorum, self.config.gradient_quorum, step)
        if self.node_id in workers or self.node_id in servers:
            return False
        self.transport.abandon_step(step)
        return True

    def _participated(self, step: int) -> bool:
        """Whether this node took part in an already-elapsed step (used by
        respawned workers to fast-forward their data stream)."""
        if self.faults is None:
            return True
        workers, servers = self.faults.participating_nodes(
            self.config.worker_ids(), self.config.server_ids(),
            self.config.model_quorum, self.config.gradient_quorum, step)
        return self.node_id in workers or self.node_id in servers

    # ------------------------------------------------------------------ #
    def run(self) -> None:
        from contextlib import ExitStack

        from repro.obs.telemetry import MetricsRegistry, use_registry
        from repro.obs.tracer import Tracer, get_tracer, use_tracer

        self._fast_forward()
        tracer = Tracer(capacity=20_000) if self.trace_enabled else None
        registry = MetricsRegistry() if self.metrics_enabled else None
        with ExitStack() as stack:
            if tracer is not None:
                stack.enter_context(use_tracer(tracer))
            if registry is not None:
                stack.enter_context(use_registry(registry))
            self._loop(get_tracer())
        if tracer is not None:
            self.control.send(
                "trace",
                events=[event.to_dict() for event in tracer.events()],
                counters=tracer.counters(), summary=tracer.summary())
        if registry is not None:
            # The node-local registry travels to the supervisor, which
            # merges it into the ambient one tagged with this node's id.
            self.control.send("metrics", snapshot=registry.snapshot())
        self._finish()
        self._shutdown.wait(timeout=30.0)
        self.transport.close()

    def _fast_forward(self) -> None:
        raise NotImplementedError

    def _loop(self, tracer) -> None:
        raise NotImplementedError

    def _finish(self) -> None:
        raise NotImplementedError


class ClusterWorkerProcess(ClusterNodeProcess):
    """One worker as an OS process (phase 1 of every protocol round)."""

    def _fast_forward(self) -> None:
        # A respawned worker replays its data stream: the dead incarnation
        # consumed one batch per local step for every step it participated
        # in, and the loader's shuffling is a pure function of its seed, so
        # skipping the same number of batches restores the exact stream
        # position.  (Workers carry no other per-step state — parameters
        # arrive fresh from the servers each round.)
        for step in range(self.resume_step):
            if self._participated(step):
                for _ in range(self.node.local_steps):
                    self.node.loader.next_batch()

    def _loop(self, tracer) -> None:
        from repro.network.message import MessageKind
        from repro.obs.telemetry import get_registry

        worker = self.node
        registry = get_registry()
        server_ids = self.config.server_ids()
        quorum_timeout = self.spec.quorum_timeout
        for step in range(self.resume_step, self.num_steps):
            if self.faults is not None:
                self.faults.on_step(step)
            if self._crashed_now(step):
                self._park_for_kill(step)
            if self._sits_out(step):
                continue
            with tracer.span("clu.worker.gather", step=step,
                             node=worker.node_id), \
                    registry.timer("repro_step_phase_seconds",
                                   runtime="cluster", phase="gather"):
                models = self.transport.wait_quorum(
                    MessageKind.MODEL_TO_WORKER, step,
                    quorum=self.config.model_quorum, timeout=quorum_timeout)
            with tracer.span("clu.worker.compute", step=step,
                             node=worker.node_id), \
                    registry.timer("repro_step_phase_seconds",
                                   runtime="cluster", phase="compute"):
                result = worker.compute_gradient(models, step)
            if not worker.is_byzantine:
                if self.adversary is not None \
                        and self.adversary.requires_observation \
                        and self.attacking_workers \
                        and self.adversary.observation_needed(step):
                    # The omniscient adversary reads this worker's memory:
                    # copy the honest gradient to every Byzantine worker's
                    # observation board (each controlled process rebuilds
                    # the identical round plan from the same observations).
                    for target in self.attacking_workers:
                        self.transport.send_observation(target, step,
                                                        result.gradient)
                self.control.send("loss", step=step, loss=float(result.loss))
            self._maybe_straggle()
            for server_id in server_ids:
                payload = worker.outgoing_gradient(result, step,
                                                   recipient=server_id)
                self.transport.send(server_id,
                                    MessageKind.GRADIENT_TO_SERVER, step,
                                    payload)

    def _finish(self) -> None:
        self.control.send("done")


class ClusterServerProcess(ClusterNodeProcess):
    """One parameter server as an OS process (phases 1–3 of every round)."""

    def _fast_forward(self) -> None:
        # A respawned server resumes from its own last snapshot — the
        # stale parameters its dead incarnation last held, exactly like a
        # recovering replica in the other runtimes; the phase-3 median
        # re-contracts it toward the live majority.
        if self.snapshot is not None:
            self.node.model.set_flat_parameters(
                np.asarray(self.snapshot, dtype=np.float64))

    def _loop(self, tracer) -> None:
        from repro.network.message import MessageKind
        from repro.obs.telemetry import get_registry

        server = self.node
        registry = get_registry()
        worker_ids = self.config.worker_ids()
        server_ids = self.config.server_ids()
        quorum_timeout = self.spec.quorum_timeout
        for step in range(self.resume_step, self.num_steps):
            if self.faults is not None:
                self.faults.on_step(step)
            if self._crashed_now(step):
                self._park_for_kill(step)
            if self._sits_out(step):
                continue
            self._maybe_straggle()
            # Phase 1: broadcast the current model to the workers.
            with tracer.span("clu.server.broadcast", step=step,
                             node=server.node_id), \
                    registry.timer("repro_step_phase_seconds",
                                   runtime="cluster", phase="broadcast"):
                for worker_id in worker_ids:
                    payload = server.outgoing_model(step, recipient=worker_id)
                    self.transport.send(worker_id,
                                        MessageKind.MODEL_TO_WORKER, step,
                                        payload)
            # Phase 2: gather gradients and update.
            with tracer.span("clu.server.gather", step=step,
                             node=server.node_id), \
                    registry.timer("repro_step_phase_seconds",
                                   runtime="cluster", phase="gather"):
                gradients = self.transport.wait_quorum(
                    MessageKind.GRADIENT_TO_SERVER, step,
                    quorum=self.config.gradient_quorum,
                    timeout=quorum_timeout)
            with tracer.span("clu.server.aggregate", step=step,
                             node=server.node_id), \
                    registry.timer("repro_step_phase_seconds",
                                   runtime="cluster", phase="aggregate"):
                server.apply_gradients(gradients, step)
            # Phase 3: exchange models between servers, take the median.
            with tracer.span("clu.server.apply", step=step,
                             node=server.node_id), \
                    registry.timer("repro_step_phase_seconds",
                                   runtime="cluster", phase="apply"):
                for server_id in server_ids:
                    payload = server.outgoing_model(step, recipient=server_id) \
                        if server_id != server.node_id \
                        else server.current_parameters()
                    self.transport.send(server_id,
                                        MessageKind.MODEL_TO_SERVER, step,
                                        payload)
                models = self.transport.wait_quorum(
                    MessageKind.MODEL_TO_SERVER, step,
                    quorum=self.config.model_quorum, timeout=quorum_timeout)
                server.merge_models(models)
            self.control.send("step_time", step=step,
                              elapsed=time.perf_counter() - self._start_time)
            if self.send_snapshots:
                self.control.send("snapshot", step=step,
                                  payload=server.current_parameters())

    def _finish(self) -> None:
        self.control.send("done", payload=self.node.current_parameters())


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #
def run_node(config: Dict) -> int:
    if config.get("debug", {}).get("die_before_ready"):
        return EXIT_DEBUG_DIED
    try:
        node_class = (ClusterWorkerProcess if config["role"] == "worker"
                      else ClusterServerProcess)
        node = node_class(config)
    except (KeyError, TypeError, ValueError) as exc:
        print(f"invalid node config: {exc}", file=sys.stderr, flush=True)
        traceback.print_exc()
        return EXIT_CONFIG_INVALID
    try:
        node.start()
        node.run()
        return EXIT_OK
    except SystemExit:
        raise
    except BaseException as exc:  # noqa: BLE001 - reported to the supervisor
        try:
            if node.control is not None:
                node.control.send("error",
                                  error=f"{type(exc).__name__}: {exc}",
                                  traceback=traceback.format_exc())
        except OSError:
            pass
        print(f"{config.get('node_id', '?')} failed: {exc}",
              file=sys.stderr, flush=True)
        traceback.print_exc()
        return EXIT_RUN_FAILED


def main() -> int:
    try:
        config = json.load(sys.stdin)
    except json.JSONDecodeError as exc:
        print(f"invalid node config JSON: {exc}", file=sys.stderr, flush=True)
        return EXIT_CONFIG_INVALID
    return run_node(config)


if __name__ == "__main__":
    sys.exit(main())
