"""Process cluster runtime: real node processes over real sockets.

The fourth runtime of the repo (after the sequential simulator, the
threaded cluster and the batched multi-replica engine): the parameter
servers and workers of one GuanYu scenario run as **separate OS
processes** speaking the length-prefixed binary protocol of
:mod:`repro.runtime.cluster.protocol` over Unix-domain or TCP sockets,
under a :class:`~repro.runtime.cluster.supervisor.Supervisor` daemon that
owns lifecycle (spawn, readiness handshake, health probes, SIGKILL on
scheduled crashes, respawn on recovery, graceful shutdown, exit-code
collection) and address wiring.

Node processes reuse :mod:`repro.core.nodes` unmodified, so aggregation
rules, Byzantine attacks, stateful adversaries and heterogeneity profiles
behave exactly as in the other runtimes — the tier-1 equivalence tests
pin the cluster↔threaded loss trajectories per seed.  See
``docs/cluster.md`` for the frame layout and lifecycle, and
``docs/runtimes.md`` for the four-runtime comparison.
"""

from repro.runtime.cluster.protocol import (
    CONTROL_KINDS,
    DATA_KINDS,
    Frame,
    FrameError,
    recv_frame,
    send_frame,
)
from repro.runtime.cluster.supervisor import (
    ClusterOptions,
    ClusterRuntime,
    NodeHandle,
    Supervisor,
    SupervisorError,
    cluster_available,
)
from repro.runtime.cluster.transport import (
    SocketTransport,
    bind_listener,
    connect,
    unix_sockets_available,
)

__all__ = [
    "CONTROL_KINDS",
    "ClusterOptions",
    "ClusterRuntime",
    "DATA_KINDS",
    "Frame",
    "FrameError",
    "NodeHandle",
    "SocketTransport",
    "Supervisor",
    "SupervisorError",
    "bind_listener",
    "cluster_available",
    "connect",
    "recv_frame",
    "send_frame",
    "unix_sockets_available",
]
