"""Supervising daemon of the process cluster runtime.

The :class:`Supervisor` owns the whole lifecycle of one cluster run: it
assigns every node a stable listener address (Unix-domain socket by
default, TCP with supervisor-probed free ports otherwise), spawns one OS
process per parameter server and worker (``python -m
repro.runtime.cluster.node``), completes a READY/START handshake that
distributes the address map, probes health with PING/PONG frames over each
node's persistent control connection, and collects exit codes on the way
out.

Fault semantics are *physical* where the other runtimes merely bookkeep:
a fault-schedule crash event makes the node report CRASHED and park, and
the supervisor SIGKILLs the real process — the PID is observably dead.  A
matching recover event makes the supervisor respawn a fresh incarnation on
the same address: workers fast-forward their deterministic data stream,
servers restart from the last parameter snapshot the dead incarnation
shipped (stale state, exactly like the other runtimes' recovering
replicas).  Partitions are enforced at the socket layer by both endpoints'
transports.

The returned :class:`~repro.obs.history.TrainingHistory` is assembled the
same way the threaded runtime assembles its own — per-step mean worker
loss in canonical worker order, server wall-clock watermarks, final
honest-server spread — which is what the tier-1 cluster↔threaded
loss-trajectory equivalence test checks.
"""

from __future__ import annotations

import json
import os
import queue
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.campaign.spec import ScenarioSpec
from repro.core.nodes import max_pairwise_distance
from repro.faults import FaultController
from repro.obs.history import StepRecord, TrainingHistory
from repro.obs.telemetry import get_registry
from repro.obs.tracer import TraceEvent, get_tracer
from repro.runtime.cluster.protocol import Frame, FrameError, recv_frame, send_frame
from repro.runtime.cluster.transport import (
    Address,
    bind_listener,
    unix_sockets_available,
)

__all__ = [
    "ClusterOptions",
    "ClusterRuntime",
    "NodeHandle",
    "Supervisor",
    "SupervisorError",
    "cluster_available",
]

#: handle states that take no further lifecycle transitions
_TERMINAL_STATES = frozenset({"done", "probe-timeout", "failed"})


class SupervisorError(RuntimeError):
    """The cluster could not complete the run (details in the message)."""


@dataclass
class ClusterOptions:
    """Operational knobs of a cluster run (not part of the scenario spec,
    hence never hashed: two runs differing only in these are the same
    experiment)."""

    #: ``auto`` (unix when available, else tcp) | ``unix`` | ``tcp``
    transport: str = "auto"
    #: seconds between PING probes on each control connection
    probe_interval: float = 1.0
    #: seconds without a PONG before the node is declared hung and killed
    probe_timeout: float = 15.0
    #: seconds every node gets to bind its listener and report READY
    ready_timeout: float = 60.0
    #: seconds nodes get to exit after SHUTDOWN before being killed
    shutdown_timeout: float = 15.0
    #: per-node debug hooks (``{"worker/0": {"die_before_ready": True}}``) —
    #: test seams for the supervisor edge paths, never set in real runs
    debug_hooks: Dict[str, Dict] = field(default_factory=dict)
    #: per-node listener address overrides (test seam: bind conflicts)
    addresses: Dict[str, Address] = field(default_factory=dict)


@dataclass
class Incarnation:
    """One spawned OS process of a node (respawns append new entries)."""

    process: subprocess.Popen
    pid: int
    resume_step: int = 0
    exit_code: Optional[int] = None


@dataclass
class NodeHandle:
    """Supervisor-side bookkeeping for one logical node."""

    node_id: str
    role: str
    index: int
    address: Address
    state: str = "spawned"
    incarnations: List[Incarnation] = field(default_factory=list)
    conn: Optional[socket.socket] = None
    conn_lock: threading.Lock = field(default_factory=threading.Lock)
    last_pong: float = 0.0
    last_ping: float = 0.0
    crashed_steps: List[int] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def current(self) -> Optional[Incarnation]:
        return self.incarnations[-1] if self.incarnations else None

    def send(self, frame: Frame) -> None:
        """Write a control frame to the node (thread-safe, best-effort)."""
        with self.conn_lock:
            if self.conn is None:
                return
            try:
                send_frame(self.conn, frame)
            except OSError:
                pass  # a dying node's health is judged by poll(), not sends


class Supervisor:
    """Spawn, wire, watch and reap one scenario's worth of node processes."""

    def __init__(self, spec: ScenarioSpec, num_steps: Optional[int] = None,
                 options: Optional[ClusterOptions] = None) -> None:
        from repro.adversary.engine import wire_attacks  # heavy import

        spec.validate()
        if spec.trainer != "guanyu_threaded":
            raise ValueError("the cluster runtime runs 'guanyu_threaded' "
                             f"scenarios, not '{spec.trainer}'")
        self.spec = spec
        self.num_steps = num_steps if num_steps is not None else spec.num_steps
        if self.num_steps <= 0:
            raise ValueError("num_steps must be positive")
        self.options = options or ClusterOptions()
        self.config = spec.cluster_config()

        self.faults = (FaultController(spec.faults, seed=spec.seed)
                       if spec.faults else None)
        self._has_recover = bool(spec.faults) and any(
            event.kind == "recover" for event in spec.faults.events)
        # Same placement arithmetic as the node processes (wire_attacks is
        # deterministic in (config, seed)): the supervisor needs the honest
        # server set for the final-spread metric and to refuse respawning a
        # Byzantine node (its attack rng state died with the process).
        _, _, _, self.attacking_workers, self.attacking_servers = wire_attacks(
            config=self.config, seed=spec.seed,
            worker_attack=(spec.worker_attack.build()
                           if spec.worker_attack else None),
            num_attacking_workers=spec.resolved_num_attacking_workers(),
            server_attack=(spec.server_attack.build()
                           if spec.server_attack else None),
            num_attacking_servers=spec.resolved_num_attacking_servers(),
            gradient_rule_name=spec.gradient_rule,
            adversary=spec.adversary.build() if spec.adversary else None)

        if self.options.transport == "auto":
            self._family = "unix" if unix_sockets_available() else "tcp"
        elif self.options.transport in ("unix", "tcp"):
            self._family = self.options.transport
        else:
            raise ValueError(f"unknown transport '{self.options.transport}'")

        self._dir = tempfile.mkdtemp(prefix="repro-cluster-")
        self.handles: Dict[str, NodeHandle] = {}
        for index, node_id in enumerate(self.config.server_ids()):
            self._add_handle(node_id, "server", index)
        for index, node_id in enumerate(self.config.worker_ids()):
            self._add_handle(node_id, "worker", index)
        self.control_address = self._assign_address("control")

        self._events: "queue.Queue" = queue.Queue()
        self._stop = threading.Event()
        self._started = False
        self._listener: Optional[socket.socket] = None
        self._step_losses: Dict[int, Dict[str, float]] = defaultdict(dict)
        self._step_times: Dict[int, float] = {}
        self._snapshots: Dict[str, np.ndarray] = {}
        self._final_params: Dict[str, np.ndarray] = {}
        self._node_traces: List[TraceEvent] = []
        self._trace_counters: Dict[str, float] = defaultdict(float)
        self._node_summaries: Dict[str, Dict] = {}

    # ------------------------------------------------------------------ #
    # Addressing and spawning
    # ------------------------------------------------------------------ #
    def _safe_name(self, node_id: str) -> str:
        return node_id.replace("/", "-")

    def _assign_address(self, name: str) -> Address:
        if self._family == "unix":
            return {"family": "unix",
                    "path": os.path.join(self._dir, f"{name}.sock")}
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        finally:
            probe.close()
        return {"family": "tcp", "host": "127.0.0.1", "port": port}

    def _add_handle(self, node_id: str, role: str, index: int) -> None:
        address = self.options.addresses.get(
            node_id, self._assign_address(self._safe_name(node_id)))
        self.handles[node_id] = NodeHandle(node_id=node_id, role=role,
                                           index=index, address=address)

    def _node_config(self, handle: NodeHandle, resume_step: int) -> Dict:
        snapshot = None
        if handle.role == "server" and resume_step > 0:
            stored = self._snapshots.get(handle.node_id)
            if stored is not None:
                snapshot = stored.tolist()
        return {
            "node_id": handle.node_id,
            "role": handle.role,
            "index": handle.index,
            "spec": self.spec.to_dict(),
            "num_steps": self.num_steps,
            "address": handle.address,
            "control": self.control_address,
            "resume_step": resume_step,
            "snapshot": snapshot,
            "trace": bool(get_tracer().enabled),
            "metrics": bool(get_registry().enabled),
            "send_snapshots": self._has_recover and handle.role == "server",
            "debug": self.options.debug_hooks.get(handle.node_id, {}),
        }

    def _spawn(self, handle: NodeHandle, resume_step: int = 0) -> None:
        import repro

        env = os.environ.copy()
        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        log_path = os.path.join(self._dir,
                                f"{self._safe_name(handle.node_id)}.log")
        config = self._node_config(handle, resume_step)
        with open(log_path, "ab") as log:
            process = subprocess.Popen(
                [sys.executable, "-m", "repro.runtime.cluster.node"],
                stdin=subprocess.PIPE, stdout=log, stderr=log, env=env)
        process.stdin.write(json.dumps(config).encode("utf-8"))
        process.stdin.close()
        handle.incarnations.append(
            Incarnation(process=process, pid=process.pid,
                        resume_step=resume_step))
        handle.state = "spawned"
        with handle.conn_lock:
            handle.conn = None
        self._set_node_gauges(handle)

    def _kill_current(self, handle: NodeHandle) -> Optional[int]:
        """SIGKILL the node's live process and reap its exit code."""
        incarnation = handle.current
        if incarnation is None:
            return None
        process = incarnation.process
        if process.poll() is None:
            try:
                process.send_signal(signal.SIGKILL)
            except OSError:
                pass
        try:
            incarnation.exit_code = process.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            incarnation.exit_code = process.poll()
        with handle.conn_lock:
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:
                    pass
                handle.conn = None
        if handle.address["family"] == "unix":
            # Free the stable address for the next incarnation: a dead
            # process leaves its socket file behind and a rebind would
            # fail with EADDRINUSE.
            try:
                os.unlink(str(handle.address["path"]))
            except OSError:
                pass
        return incarnation.exit_code

    # ------------------------------------------------------------------ #
    # Control plane threads
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed — shutdown
            thread = threading.Thread(target=self._reader, args=(conn,),
                                      daemon=True, name="cluster-reader")
            thread.start()

    def _reader(self, conn: socket.socket) -> None:
        node_id = None
        try:
            while True:
                frame = recv_frame(conn)
                if frame is None:
                    break
                if frame.kind == "ready":
                    node_id = frame.sender
                    self._events.put(("ready", node_id, frame, conn))
                else:
                    self._events.put(("frame", frame.sender, frame, None))
        except (FrameError, OSError):
            pass
        if node_id is not None:
            self._events.put(("eof", node_id, None, None))

    def _monitor_loop(self) -> None:
        """Poll processes for unexpected exits and probe node health."""
        interval = self.options.probe_interval
        while not self._stop.is_set():
            now = time.monotonic()
            for handle in self.handles.values():
                if handle.state in _TERMINAL_STATES or handle.state == "killed":
                    continue
                incarnation = handle.current
                if incarnation is not None and incarnation.exit_code is None \
                        and incarnation.process.poll() is not None:
                    incarnation.exit_code = incarnation.process.returncode
                    self._events.put(("exit", handle.node_id,
                                      incarnation.exit_code, None))
                    continue
                if handle.conn is None:
                    continue
                if now - handle.last_pong > self.options.probe_timeout:
                    self._events.put(("hung", handle.node_id, None, None))
                elif now - handle.last_ping >= interval:
                    handle.last_ping = now
                    handle.send(Frame(kind="ping", sender="supervisor",
                                      recipient=handle.node_id))
            self._stop.wait(min(interval / 4, 0.2))

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    def _set_node_gauges(self, handle: NodeHandle) -> None:
        """Refresh the node's liveness/incarnation gauges (no-op registry
        when telemetry is off)."""
        registry = get_registry()
        if not registry.enabled:
            return
        up = 1.0 if handle.state in ("ready", "running", "done") else 0.0
        registry.set_gauge("repro_cluster_node_up", up, node=handle.node_id)
        registry.set_gauge("repro_cluster_node_incarnations",
                           len(handle.incarnations), node=handle.node_id)

    # ------------------------------------------------------------------ #
    # Fault bookkeeping
    # ------------------------------------------------------------------ #
    def _expects_done(self, handle: NodeHandle) -> bool:
        """Whether the node's loop reaches the final step (a node inside a
        crash window at the last step parks and is killed instead)."""
        if self.faults is None:
            return True
        return self.faults.node_alive(handle.node_id, self.num_steps - 1)

    def _resume_step_after(self, node_id: str, crashed_step: int
                           ) -> Optional[int]:
        """First step at/after the crash where the node is alive again."""
        if self.faults is None:
            return None
        for step in range(crashed_step, self.num_steps):
            if self.faults.node_alive(node_id, step):
                return step
        return None

    def _handle_crash(self, handle: NodeHandle, step: int) -> None:
        """A node reported its scheduled crash: kill it for real, then
        respawn a fresh incarnation iff the schedule recovers it."""
        handle.crashed_steps.append(step)
        handle.state = "killed"
        self._kill_current(handle)
        self._set_node_gauges(handle)
        resume = self._resume_step_after(handle.node_id, step)
        if resume is None:
            return  # crashed forever; quorums carry the run
        if handle.node_id in self.attacking_workers \
                or handle.node_id in self.attacking_servers:
            raise SupervisorError(
                f"cannot respawn Byzantine node {handle.node_id}: its attack "
                f"rng state died with the process (schedule honest crashes, "
                f"or drop the recover event)")
        registry = get_registry()
        if registry.enabled:
            registry.inc("repro_cluster_respawns_total", node=handle.node_id)
        self._spawn(handle, resume_step=resume)

    # ------------------------------------------------------------------ #
    # Event loop
    # ------------------------------------------------------------------ #
    def _fail(self, message: str, handle: Optional[NodeHandle] = None) -> None:
        if handle is not None:
            handle.state = "failed"
            self._set_node_gauges(handle)
            if handle.error is None:
                handle.error = message
            tail = self._log_tail(handle)
            if tail:
                message = f"{message}\n--- {handle.node_id} log tail ---\n{tail}"
        raise SupervisorError(message)

    def _log_tail(self, handle: NodeHandle, lines: int = 15) -> str:
        path = os.path.join(self._dir,
                            f"{self._safe_name(handle.node_id)}.log")
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as log:
                return "\n".join(log.read().splitlines()[-lines:])
        except OSError:
            return ""

    def _broadcast_start(self) -> None:
        addresses = {node_id: handle.address
                     for node_id, handle in self.handles.items()}
        for handle in self.handles.values():
            if handle.state == "ready":
                handle.send(Frame(kind="start", sender="supervisor",
                                  recipient=handle.node_id,
                                  meta={"addresses": addresses}))
                handle.state = "running"
        self._started = True

    def _on_ready(self, handle: NodeHandle, frame: Frame,
                  conn: socket.socket) -> None:
        with handle.conn_lock:
            handle.conn = conn
        now = time.monotonic()
        handle.last_pong = now
        handle.last_ping = now
        handle.state = "ready"
        self._set_node_gauges(handle)
        if self._started:
            # A respawned incarnation: everyone else is already running,
            # so it gets the address map immediately.
            addresses = {node_id: peer.address
                         for node_id, peer in self.handles.items()}
            handle.send(Frame(kind="start", sender="supervisor",
                              recipient=handle.node_id,
                              meta={"addresses": addresses}))
            handle.state = "running"
        elif all(peer.state == "ready" for peer in self.handles.values()):
            self._broadcast_start()

    def _on_frame(self, handle: NodeHandle, frame: Frame) -> None:
        kind = frame.kind
        if kind == "pong":
            now = time.monotonic()
            handle.last_pong = now
            registry = get_registry()
            if registry.enabled:
                # ``last_ping`` is stamped when the probe leaves, so this
                # is the PING→PONG round trip through the node's control
                # thread (plus our event-queue latency).
                registry.observe("repro_cluster_probe_rtt_seconds",
                                 max(now - handle.last_ping, 0.0),
                                 node=handle.node_id)
        elif kind == "loss":
            self._step_losses[frame.step][handle.node_id] = \
                float(frame.meta["loss"])
        elif kind == "step_time":
            elapsed = float(frame.meta["elapsed"])
            self._step_times[frame.step] = max(
                self._step_times.get(frame.step, 0.0), elapsed)
        elif kind == "snapshot":
            if frame.payload is not None:
                self._snapshots[handle.node_id] = frame.payload
        elif kind == "crashed":
            self._handle_crash(handle, frame.step)
        elif kind == "trace":
            self._collect_trace(handle, frame)
        elif kind == "metrics":
            # The node's end-of-run registry snapshot: fold it into the
            # ambient registry with the node id stamped on every series,
            # so per-node byte counts and phase histograms stay apart.
            registry = get_registry()
            snapshot = frame.meta.get("snapshot")
            if registry.enabled and snapshot:
                registry.merge(snapshot,
                               extra_labels={"node": handle.node_id})
        elif kind == "done":
            if handle.role == "server" and frame.payload is not None:
                self._final_params[handle.node_id] = frame.payload
            handle.state = "done"
            self._set_node_gauges(handle)
        elif kind == "error":
            handle.error = frame.meta.get("error", "unknown node error")
            self._fail(f"node {handle.node_id} failed: {handle.error}\n"
                       f"{frame.meta.get('traceback', '')}", handle)

    def _collect_trace(self, handle: NodeHandle, frame: Frame) -> None:
        events = []
        for record in frame.meta.get("events", []):
            event = TraceEvent.from_dict(record)
            event.source = handle.node_id
            events.append(event)
        self._node_traces.extend(events)
        for name, value in (frame.meta.get("counters") or {}).items():
            self._trace_counters[name] += value
        summary = frame.meta.get("summary")
        if summary:
            self._node_summaries[handle.node_id] = summary

    def _on_exit(self, handle: NodeHandle, code: int) -> None:
        """An incarnation exited on its own — never expected before the
        shutdown phase (crash kills are reaped in :meth:`_handle_crash`)."""
        if handle.state in ("done", "killed"):
            return
        from repro.runtime.cluster import node as node_module

        reasons = {
            node_module.EXIT_BIND_FAILED: "could not bind its address",
            node_module.EXIT_CONFIG_INVALID: "rejected its configuration",
            node_module.EXIT_DEBUG_DIED: "died before the readiness "
                                         "handshake (debug hook)",
            node_module.EXIT_RUN_FAILED: "hit an unrecoverable run error",
        }
        reason = reasons.get(code, "exited unexpectedly")
        self._fail(f"node {handle.node_id} {reason} (exit code {code})",
                   handle)

    def _on_hung(self, handle: NodeHandle) -> None:
        if handle.state not in ("ready", "running"):
            return
        handle.state = "probe-timeout"
        self._set_node_gauges(handle)
        code = self._kill_current(handle)
        raise SupervisorError(
            f"node {handle.node_id} missed health probes for "
            f"{self.options.probe_timeout:.1f}s and was killed "
            f"(exit code {code})")

    def _event_loop(self) -> None:
        ready_deadline = time.monotonic() + self.options.ready_timeout
        run_deadline = time.monotonic() + \
            self.spec.quorum_timeout * (self.num_steps + 1)
        while True:
            pending = [handle for handle in self.handles.values()
                       if handle.state != "done"
                       and (self._expects_done(handle)
                            or handle.state != "killed")]
            if not pending:
                return
            now = time.monotonic()
            if not self._started and now > ready_deadline:
                stragglers = sorted(h.node_id for h in self.handles.values()
                                    if h.state == "spawned")
                self._fail(f"nodes {stragglers} never reported READY within "
                           f"{self.options.ready_timeout:.1f}s",
                           self.handles[stragglers[0]] if stragglers else None)
            if now > run_deadline:
                stuck = sorted(handle.node_id for handle in pending)
                self._fail(f"cluster run deadline exceeded; nodes {stuck} "
                           f"never finished")
            try:
                kind, node_id, payload, conn = self._events.get(timeout=0.25)
            except queue.Empty:
                continue
            handle = self.handles.get(node_id)
            if handle is None:
                continue
            if kind == "ready":
                self._on_ready(handle, payload, conn)
            elif kind == "frame":
                self._on_frame(handle, payload)
            elif kind == "exit":
                self._on_exit(handle, payload)
            elif kind == "hung":
                self._on_hung(handle)
            # "eof" alone carries no verdict: a finished or killed node
            # closing its connection is normal, and a dying one is caught
            # by the monitor's poll() with its exit code.

    # ------------------------------------------------------------------ #
    # Run orchestration
    # ------------------------------------------------------------------ #
    def run(self) -> TrainingHistory:
        """Execute the scenario across real processes; returns the history."""
        try:
            try:
                self._listener = bind_listener(self.control_address)
            except OSError as exc:
                raise SupervisorError(
                    f"cannot bind supervisor control address "
                    f"{self.control_address}: {exc}") from exc
            threading.Thread(target=self._accept_loop, daemon=True,
                             name="cluster-accept").start()
            threading.Thread(target=self._monitor_loop, daemon=True,
                             name="cluster-monitor").start()
            for handle in self.handles.values():
                self._spawn(handle)
            self._event_loop()
        finally:
            self._teardown()
        self._merge_traces()
        return self._assemble_history()

    def _teardown(self) -> None:
        self._stop.set()
        for handle in self.handles.values():
            if handle.state == "done":
                handle.send(Frame(kind="shutdown", sender="supervisor",
                                  recipient=handle.node_id))
        deadline = time.monotonic() + self.options.shutdown_timeout
        for handle in self.handles.values():
            incarnation = handle.current
            if incarnation is None or incarnation.exit_code is not None:
                continue
            remaining = max(deadline - time.monotonic(), 0.1)
            try:
                incarnation.exit_code = \
                    incarnation.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                self._kill_current(handle)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for handle in self.handles.values():
            with handle.conn_lock:
                if handle.conn is not None:
                    try:
                        handle.conn.close()
                    except OSError:
                        pass
                    handle.conn = None
        shutil.rmtree(self._dir, ignore_errors=True)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def _merge_traces(self) -> None:
        """Fold per-node trace frames into the ambient tracer as one
        multi-source stream (each record tagged with its origin process)."""
        tracer = get_tracer()
        if not tracer.enabled:
            return
        tracer.extend(self._node_traces)
        for name, value in self._trace_counters.items():
            tracer.count(name, value)
        for node_id in sorted(self._node_summaries):
            tracer.extend([TraceEvent(
                name="cluster.node", kind="event", source=node_id,
                node=node_id,
                attrs={"trace_summary": self._node_summaries[node_id]})])

    def _assemble_history(self) -> TrainingHistory:
        from repro.experiments.common import build_scale_bundle

        _, _, _, schedule = build_scale_bundle(self.spec.to_scale())
        spec = self.spec
        history = TrainingHistory(
            label="guanyu-cluster",
            config={**self.config.as_dict(),
                    "adversary": (spec.adversary.name
                                  if spec.adversary else None),
                    "faults": spec.faults.to_dict() if spec.faults else None,
                    "hetero": spec.hetero.to_dict() if spec.hetero else None})
        vectors = []
        for server_id in self.config.server_ids():
            if server_id in self.attacking_servers:
                continue
            params = self._final_params.get(
                server_id, self._snapshots.get(server_id))
            if params is not None:
                vectors.append(params)
        spread = max_pairwise_distance(vectors) if len(vectors) >= 2 else 0.0
        worker_order = self.config.worker_ids()
        for step in range(self.num_steps):
            by_worker = self._step_losses.get(step, {})
            losses = [by_worker[worker_id] for worker_id in worker_order
                      if worker_id in by_worker]
            history.add(StepRecord(
                step=step,
                simulated_time=self._step_times.get(step, 0.0),
                train_loss=float(np.mean(losses)) if losses else None,
                max_server_spread=(spread if step == self.num_steps - 1
                                   else None),
                learning_rate=schedule(step),
            ))
        return history

    def report(self) -> Dict:
        """Structured lifecycle record (the observability/test surface)."""
        nodes = {}
        for node_id, handle in self.handles.items():
            nodes[node_id] = {
                "role": handle.role,
                "state": handle.state,
                "address": dict(handle.address),
                "pids": [inc.pid for inc in handle.incarnations],
                "exit_codes": [inc.exit_code for inc in handle.incarnations],
                "respawns": max(len(handle.incarnations) - 1, 0),
                "crashed_steps": list(handle.crashed_steps),
                "error": handle.error,
            }
        return {"transport": self._family, "num_steps": self.num_steps,
                "nodes": nodes}


# --------------------------------------------------------------------------- #
# Engine-facing wrapper
# --------------------------------------------------------------------------- #
class ClusterRuntime:
    """Drop-in trainer: ``ClusterRuntime(spec).run(num_steps)``.

    Mirrors the calling convention of
    :class:`~repro.runtime.threads.ThreadedClusterRuntime` so the campaign
    engine dispatches to it with no special casing beyond construction.
    """

    def __init__(self, spec: ScenarioSpec,
                 options: Optional[ClusterOptions] = None) -> None:
        self.spec = spec
        self.options = options
        self.supervisor: Optional[Supervisor] = None

    def run(self, num_steps: int) -> TrainingHistory:
        self.supervisor = Supervisor(self.spec, num_steps=num_steps,
                                     options=self.options)
        return self.supervisor.run()

    def report(self) -> Optional[Dict]:
        return self.supervisor.report() if self.supervisor else None


def cluster_available() -> bool:
    """Whether this host can run the socket cluster (bind + connect work).

    Sandboxes occasionally forbid socket binding altogether; the campaign
    engine falls back to the threaded runtime when this returns ``False``.
    """
    if unix_sockets_available():
        directory = tempfile.mkdtemp(prefix="repro-cluster-probe-")
        try:
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.bind(os.path.join(directory, "probe.sock"))
                probe.listen(1)
                return True
            finally:
                probe.close()
        except OSError:
            pass
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
            probe.listen(1)
            return True
        finally:
            probe.close()
    except OSError:
        return False
