"""Length-prefixed binary frame protocol of the process cluster runtime.

One :class:`Frame` is one unit of communication between cluster processes —
a protocol payload (model vector, gradient), a lifecycle/control message
(READY, START, PING), or a metric/trace record travelling back to the
supervisor.  The wire layout is deliberately trivial::

    [4 bytes  big-endian]  header length H
    [H bytes]              header JSON (UTF-8)
    [8 bytes  big-endian]  payload byte length P  (0 = no payload)
    [P bytes]              raw float64 vector (C order)

The header carries ``kind``/``sender``/``recipient``/``step`` plus a small
JSON ``meta`` mapping; the payload is reserved for the numeric vectors so
they cross the socket without JSON encoding.  Data-plane kinds reuse the
:class:`repro.network.message.MessageKind` values verbatim, so the cluster
runtime speaks the same protocol vocabulary as the simulator and the
threaded runtime.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.network.message import MessageKind
from repro.obs.telemetry import get_registry

__all__ = [
    "CONTROL_KINDS",
    "DATA_KINDS",
    "Frame",
    "FrameError",
    "MAX_FRAME_BYTES",
    "recv_frame",
    "send_frame",
]

#: hard ceiling on one frame (header + payload); a malformed length prefix
#: must not make a reader allocate gigabytes
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER_LEN = struct.Struct("!I")
_PAYLOAD_LEN = struct.Struct("!Q")

#: protocol payloads — the same vocabulary the other runtimes use
DATA_KINDS = frozenset(kind.value for kind in MessageKind)

#: lifecycle / metric frames (node ⇄ supervisor, plus OBSERVE on the data
#: plane: honest gradients copied to the adversary's controlled nodes)
CONTROL_KINDS = frozenset({
    "ready",      # node → supervisor: listener bound, address in meta
    "start",      # supervisor → node: full address map, begin the run
    "ping",       # supervisor → node: health probe
    "pong",       # node → supervisor: probe reply
    "loss",       # worker → supervisor: per-step training loss
    "step_time",  # server → supervisor: per-step wall-clock watermark
    "snapshot",   # server → supervisor: current parameters (respawn seed)
    "crashed",    # node → supervisor: fault schedule says I crash now
    "observe",    # honest worker → Byzantine worker: gradient copy
    "trace",      # node → supervisor: buffered trace records
    "metrics",    # node → supervisor: telemetry registry snapshot
    "done",       # node → supervisor: run finished (servers attach params)
    "error",      # node → supervisor: unrecoverable node failure
    "shutdown",   # supervisor → node: exit cleanly
})


class FrameError(RuntimeError):
    """A frame violated the wire format (bad length, bad kind, truncation)."""


@dataclass
class Frame:
    """One decoded protocol frame."""

    kind: str
    sender: str = ""
    recipient: str = ""
    step: int = -1
    payload: Optional[np.ndarray] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in DATA_KINDS and self.kind not in CONTROL_KINDS:
            raise FrameError(f"unknown frame kind '{self.kind}'")
        if self.payload is not None:
            self.payload = np.ascontiguousarray(self.payload,
                                                dtype=np.float64)

    # ------------------------------------------------------------------ #
    def encode(self) -> bytes:
        """Serialise to the length-prefixed wire form."""
        header = json.dumps(
            {"kind": self.kind, "sender": self.sender,
             "recipient": self.recipient, "step": self.step,
             "meta": self.meta},
            separators=(",", ":")).encode("utf-8")
        payload = b"" if self.payload is None else self.payload.tobytes()
        total = len(header) + len(payload)
        if total > MAX_FRAME_BYTES:
            raise FrameError(f"frame of {total} bytes exceeds the "
                             f"{MAX_FRAME_BYTES}-byte limit")
        return (_HEADER_LEN.pack(len(header)) + header
                + _PAYLOAD_LEN.pack(len(payload)) + payload)

    @classmethod
    def decode(cls, header: bytes, payload: bytes) -> "Frame":
        try:
            fields = json.loads(header.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameError(f"undecodable frame header: {exc}") from exc
        vector = None
        if payload:
            if len(payload) % 8:
                raise FrameError(f"payload of {len(payload)} bytes is not "
                                 f"a whole float64 vector")
            vector = np.frombuffer(payload, dtype=np.float64).copy()
        try:
            return cls(kind=fields["kind"], sender=fields.get("sender", ""),
                       recipient=fields.get("recipient", ""),
                       step=int(fields.get("step", -1)), payload=vector,
                       meta=fields.get("meta") or {})
        except (KeyError, TypeError, ValueError) as exc:
            raise FrameError(f"malformed frame header: {exc}") from exc


# --------------------------------------------------------------------------- #
# Blocking socket I/O
# --------------------------------------------------------------------------- #
def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on a clean EOF at a boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count and not chunks:
                return None  # peer closed between frames — normal shutdown
            raise FrameError(f"connection closed {remaining} byte(s) short "
                             f"of a complete frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, frame: Frame) -> None:
    """Write one frame to a connected socket."""
    wire = frame.encode()
    registry = get_registry()
    if registry.enabled:
        registry.inc("repro_cluster_frames_total",
                     direction="out", kind=frame.kind)
        registry.inc("repro_cluster_bytes_total", len(wire), direction="out")
    sock.sendall(wire)


def recv_frame(sock: socket.socket) -> Optional[Frame]:
    """Read one frame from a connected socket; ``None`` on clean EOF."""
    prefix = _recv_exact(sock, _HEADER_LEN.size)
    if prefix is None:
        return None
    (header_len,) = _HEADER_LEN.unpack(prefix)
    if header_len > MAX_FRAME_BYTES:
        raise FrameError(f"header length {header_len} exceeds the frame limit")
    header = _recv_exact(sock, header_len)
    if header is None:
        raise FrameError("connection closed inside a frame header")
    prefix = _recv_exact(sock, _PAYLOAD_LEN.size)
    if prefix is None:
        raise FrameError("connection closed before the payload length")
    (payload_len,) = _PAYLOAD_LEN.unpack(prefix)
    if header_len + payload_len > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {header_len + payload_len} bytes "
                         f"exceeds the {MAX_FRAME_BYTES}-byte limit")
    payload = _recv_exact(sock, payload_len) if payload_len else b""
    if payload is None:
        raise FrameError("connection closed inside a frame payload")
    frame = Frame.decode(header, payload)
    registry = get_registry()
    if registry.enabled:
        wire_len = (_HEADER_LEN.size + header_len
                    + _PAYLOAD_LEN.size + payload_len)
        registry.inc("repro_cluster_frames_total",
                     direction="in", kind=frame.kind)
        registry.inc("repro_cluster_bytes_total", wire_len, direction="in")
    return frame
