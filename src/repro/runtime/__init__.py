"""Execution runtimes and cost models for the distributed protocol.

Two ways of running GuanYu are provided:

* the **simulated runtime** (driven by :mod:`repro.core.trainer` over
  :class:`repro.network.NetworkSimulator`) — deterministic, seeded, with a
  simulated clock used for the time-axis of the Figure 3 reproduction;
* the **threaded runtime** (:mod:`repro.runtime.threads`) — every node runs
  in its own Python thread and exchanges messages over real queues, which
  exercises genuine concurrency, out-of-order delivery and wall-clock timing.

:class:`repro.runtime.cost.CostModel` accounts for local computation time
(gradient computation, robust aggregation, model updates and the
tensor↔numpy serialisation overhead the paper discusses in Section 4).
"""

from repro.runtime.cost import CostModel, GRID5000_LIKE, INSTANT
from repro.runtime.threads import ThreadedClusterRuntime, ThreadedNodeHandle

__all__ = [
    "CostModel",
    "GRID5000_LIKE",
    "INSTANT",
    "ThreadedClusterRuntime",
    "ThreadedNodeHandle",
]
