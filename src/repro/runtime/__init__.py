"""Execution runtimes and cost models for the distributed protocol.

:func:`repro.runtime.run` is the front door: it validates a
:class:`~repro.campaign.spec.ScenarioSpec`, resolves the runtime the spec
describes and executes it, returning a :class:`ScenarioResult`.  Four
runtimes sit behind it:

* the **simulated runtime** (driven by :mod:`repro.core.trainer` over
  :class:`repro.network.NetworkSimulator`) — deterministic, seeded, with a
  simulated clock used for the time-axis of the Figure 3 reproduction;
* the **batched runtime** (:mod:`repro.batch`) — replica lanes stacked and
  vectorised in one process, bit-identical per seed to the simulator;
* the **threaded runtime** (:mod:`repro.runtime.threads`) — every node runs
  in its own Python thread and exchanges messages over real queues, which
  exercises genuine concurrency, out-of-order delivery and wall-clock timing;
* the **cluster runtime** (:mod:`repro.runtime.cluster`) — one OS process
  per node over real sockets, under a supervising daemon.

:class:`repro.runtime.cost.CostModel` accounts for local computation time
(gradient computation, robust aggregation, model updates and the
tensor↔numpy serialisation overhead the paper discusses in Section 4).
"""

from repro.runtime.cost import CostModel, GRID5000_LIKE, INSTANT
from repro.runtime.facade import (
    RUNTIME_KINDS,
    ScenarioResult,
    resolve_runtime,
    run,
)
from repro.runtime.threads import ThreadedClusterRuntime, ThreadedNodeHandle

__all__ = [
    "CostModel",
    "GRID5000_LIKE",
    "INSTANT",
    "RUNTIME_KINDS",
    "ScenarioResult",
    "ThreadedClusterRuntime",
    "ThreadedNodeHandle",
    "resolve_runtime",
    "run",
]
